//! Applying scenario events to a live fleet.
//!
//! [`ScenarioRuntime`] owns one expanded schedule plus the perturbation
//! state it implies: per-module aging and entropy skews (composed into
//! one [`DriftSkew`] pushed into the simulator), the sensor-fault plane
//! (which corrupts *readings*, never the physics), the global cap-shock
//! scale, and the failed set. The same runtime drives both fleet
//! layouts — [`Cluster`] and [`FleetState`] — through the shared
//! `skewed()` kernel, so a scenario replay is bit-identical across
//! layouts and thread counts.

use vap_model::variability::DriftSkew;
use vap_sim::cluster::Cluster;
use vap_sim::fleet::FleetState;

use crate::rng::SplitMix64;
use crate::stream::{FaultKind, PerturbationKind, Scenario, ScenarioEvent};

/// What a consumer must do after one event is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// A module's silicon response changed (drift or entropy): plans
    /// computed from a stale PVT are now wrong on it.
    Module(usize),
    /// The campaign cap must be recomputed as `scale ×` base.
    Cap,
    /// Only the sensor plane changed; physics are untouched.
    Sensor(usize),
    /// The module left the pool: preempt its jobs and stop allocating.
    Failed(usize),
    /// The module rejoined with fresh silicon.
    Replaced(usize),
}

/// Scenario schedule + perturbation state for one campaign replay.
#[derive(Debug, Clone)]
pub struct ScenarioRuntime {
    events: Vec<ScenarioEvent>,
    cursor: usize,
    n: usize,
    /// Salt for the sensor-noise streams (per module, per reading).
    seed: u64,
    /// Cumulative aging skew per module.
    aging: Vec<DriftSkew>,
    /// Current input-entropy skew per module (replaced, not composed).
    entropy: Vec<DriftSkew>,
    /// Active sensor fault per module.
    fault: Vec<Option<FaultKind>>,
    /// The frozen reading of a stuck sensor, once captured.
    stuck: Vec<Option<f64>>,
    /// Readings taken per module — the noise stream position.
    noise_ctr: Vec<u64>,
    /// Modules currently failed out of the pool.
    failed: Vec<bool>,
    /// Modules whose silicon changed since the last [`Self::take_dirty`].
    dirty: Vec<bool>,
    shock_scale: f64,
}

impl ScenarioRuntime {
    /// Expand `scenario` for a fleet of `modules` over `horizon_s` and
    /// wrap it. Deterministic in `seed`.
    pub fn new(scenario: Scenario, modules: usize, horizon_s: f64, seed: u64) -> Self {
        Self::from_events(scenario.events(modules, horizon_s, seed), modules, seed)
    }

    /// Wrap a pre-built schedule (events must be `(at_s, seq)`-sorted).
    pub fn from_events(events: Vec<ScenarioEvent>, modules: usize, seed: u64) -> Self {
        ScenarioRuntime {
            events,
            cursor: 0,
            n: modules,
            seed,
            aging: vec![DriftSkew::IDENTITY; modules],
            entropy: vec![DriftSkew::IDENTITY; modules],
            fault: vec![None; modules],
            stuck: vec![None; modules],
            noise_ctr: vec![0; modules],
            failed: vec![false; modules],
            dirty: vec![false; modules],
            shock_scale: 1.0,
        }
    }

    /// The full schedule.
    pub fn events(&self) -> &[ScenarioEvent] {
        &self.events
    }

    /// Events not yet popped.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// Timestamp of the next unapplied event, if any.
    pub fn peek_next_at(&self) -> Option<f64> {
        self.events.get(self.cursor).map(|e| e.at_s)
    }

    /// Pop the next event due at or before `t`.
    pub fn pop_due(&mut self, t: f64) -> Option<ScenarioEvent> {
        let e = self.events.get(self.cursor)?;
        if e.at_s <= t {
            self.cursor += 1;
            Some(*e)
        } else {
            None
        }
    }

    /// The cap multiplier currently in force (1.0 = no shock).
    pub fn shock_scale(&self) -> f64 {
        self.shock_scale
    }

    /// Whether the module is currently failed out of the pool.
    pub fn is_failed(&self, module: usize) -> bool {
        self.failed.get(module).copied().unwrap_or(false)
    }

    /// The module's active sensor fault, if any.
    pub fn active_fault(&self, module: usize) -> Option<FaultKind> {
        self.fault.get(module).copied().flatten()
    }

    /// The module's combined (aging ∘ entropy) skew.
    pub fn combined_skew(&self, module: usize) -> DriftSkew {
        match (self.aging.get(module), self.entropy.get(module)) {
            (Some(a), Some(e)) => a.compose(e),
            _ => DriftSkew::IDENTITY,
        }
    }

    /// Modules whose silicon changed since the last call, sorted; clears
    /// the flags. This is the re-calibration work list.
    pub fn take_dirty(&mut self) -> Vec<usize> {
        let ids: Vec<usize> =
            (0..self.n).filter(|&i| self.dirty[i]).collect();
        for &i in &ids {
            self.dirty[i] = false;
        }
        ids
    }

    /// Pass a true power reading through the sensor-fault plane. The
    /// noise stream is positional per module — reading `k` of module `m`
    /// is the same value no matter who asks — so observers stay
    /// deterministic.
    pub fn read_power(&mut self, module: usize, true_w: f64) -> f64 {
        let Some(fault) = self.fault.get(module).copied().flatten() else {
            return true_w;
        };
        match fault {
            FaultKind::Stuck => match self.stuck[module] {
                Some(frozen) => frozen,
                None => {
                    self.stuck[module] = Some(true_w);
                    true_w
                }
            },
            FaultKind::Noisy { sigma_w } => {
                let k = self.noise_ctr[module];
                self.noise_ctr[module] += 1;
                let mut rng = SplitMix64::new(
                    self.seed
                        ^ (module as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ k.wrapping_mul(0xBF58_476D_1CE4_E5B9),
                );
                true_w + sigma_w * (2.0 * rng.next_f64() - 1.0)
            }
            FaultKind::Offset { offset_w } => true_w + offset_w,
            FaultKind::Clear => true_w,
        }
    }

    /// Bookkeep one event into the perturbation state and classify it.
    fn note(&mut self, ev: &ScenarioEvent) -> Effect {
        match ev.kind {
            PerturbationKind::Drift { module, step } => {
                if let Some(a) = self.aging.get_mut(module) {
                    *a = a.compose(&step);
                    self.dirty[module] = true;
                }
                Effect::Module(module)
            }
            PerturbationKind::EntropyShift { module, skew } => {
                if let Some(e) = self.entropy.get_mut(module) {
                    *e = skew;
                    self.dirty[module] = true;
                }
                Effect::Module(module)
            }
            PerturbationKind::SensorFault { module, fault } => {
                if let Some(f) = self.fault.get_mut(module) {
                    *f = match fault {
                        FaultKind::Clear => None,
                        other => Some(other),
                    };
                    self.stuck[module] = None;
                }
                Effect::Sensor(module)
            }
            PerturbationKind::CapShock { scale } => {
                self.shock_scale = scale;
                Effect::Cap
            }
            PerturbationKind::Fail { module } => {
                if let Some(f) = self.failed.get_mut(module) {
                    *f = true;
                }
                Effect::Failed(module)
            }
            PerturbationKind::Replace { module, .. } => {
                if module < self.n {
                    self.failed[module] = false;
                    self.aging[module] = DriftSkew::IDENTITY;
                    self.entropy[module] = DriftSkew::IDENTITY;
                    self.fault[module] = None;
                    self.stuck[module] = None;
                    self.dirty[module] = true;
                }
                Effect::Replaced(module)
            }
        }
    }

    /// Journal the event (zero cost without a live obs session).
    fn emit(&self, ev: &ScenarioEvent) {
        let fleet = self.n as u64;
        vap_obs::scenario_event(|| vap_obs::ScenarioRecord {
            t_s: ev.at_s,
            fleet,
            kind: match ev.kind {
                PerturbationKind::Drift { module, step } => vap_obs::ScenarioKind::Drift {
                    module: module as u64,
                    dynamic: step.dynamic,
                    leakage: step.leakage,
                    dram: step.dram,
                },
                PerturbationKind::EntropyShift { module, skew } => {
                    vap_obs::ScenarioKind::EntropyShift {
                        module: module as u64,
                        dynamic: skew.dynamic,
                        leakage: skew.leakage,
                        dram: skew.dram,
                    }
                }
                PerturbationKind::SensorFault { module, fault } => {
                    vap_obs::ScenarioKind::SensorFault {
                        module: module as u64,
                        fault: fault.label().to_string(),
                    }
                }
                PerturbationKind::CapShock { scale } => vap_obs::ScenarioKind::CapShock { scale },
                PerturbationKind::Fail { module } => {
                    vap_obs::ScenarioKind::Fail { module: module as u64 }
                }
                PerturbationKind::Replace { module, .. } => {
                    vap_obs::ScenarioKind::Replace { module: module as u64 }
                }
            },
        });
    }

    /// Apply one event to a [`Cluster`].
    pub fn apply_to_cluster(&mut self, ev: &ScenarioEvent, cluster: &mut Cluster) -> Effect {
        let effect = self.note(ev);
        vap_obs::incr("scenario.events_applied");
        self.emit(ev);
        match ev.kind {
            PerturbationKind::Drift { module, .. }
            | PerturbationKind::EntropyShift { module, .. } => {
                if module < cluster.len() {
                    cluster.set_drift_skew(module, self.combined_skew(module));
                }
            }
            PerturbationKind::Replace { module, seed } => {
                if module < cluster.len() {
                    let v = {
                        let spec = cluster.spec();
                        spec.variability.sample_replacement(module, spec.cores_per_proc, seed)
                    };
                    cluster.replace_silicon(module, v);
                }
            }
            _ => {}
        }
        effect
    }

    /// Apply one event to a [`FleetState`] — bit-identical to the
    /// [`Cluster`] path (both go through the same `skewed()` kernel).
    pub fn apply_to_fleet(&mut self, ev: &ScenarioEvent, fleet: &mut FleetState) -> Effect {
        let effect = self.note(ev);
        vap_obs::incr("scenario.events_applied");
        self.emit(ev);
        match ev.kind {
            PerturbationKind::Drift { module, .. }
            | PerturbationKind::EntropyShift { module, .. } => {
                if module < fleet.len() {
                    fleet.set_drift_skew(module, self.combined_skew(module));
                }
            }
            PerturbationKind::Replace { module, seed } => {
                if module < fleet.len() {
                    let v = {
                        let spec = fleet.spec();
                        spec.variability.sample_replacement(module, spec.cores_per_proc, seed)
                    };
                    fleet.replace_silicon(module, v);
                }
            }
            _ => {}
        }
        effect
    }

    /// Apply every event due at or before `t` to a [`Cluster`],
    /// returning the effects in schedule order.
    pub fn advance_cluster(&mut self, t: f64, cluster: &mut Cluster) -> Vec<Effect> {
        let mut effects = Vec::new();
        while let Some(ev) = self.pop_due(t) {
            effects.push(self.apply_to_cluster(&ev, cluster));
        }
        effects
    }

    /// Apply every event due at or before `t` to a [`FleetState`].
    pub fn advance_fleet(&mut self, t: f64, fleet: &mut FleetState) -> Vec<Effect> {
        let mut effects = Vec::new();
        while let Some(ev) = self.pop_due(t) {
            effects.push(self.apply_to_fleet(&ev, fleet));
        }
        effects
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vap_model::systems::SystemSpec;
    use vap_model::units::Watts;

    const SEED: u64 = 2015;

    fn fleet_pair(n: usize) -> (Cluster, FleetState) {
        let cluster = Cluster::with_size(SystemSpec::ha8k(), n, SEED);
        let fleet = FleetState::from_cluster(&cluster);
        (cluster, fleet)
    }

    #[test]
    fn cluster_and_fleet_replay_bitwise_identically() {
        let (mut cluster, mut fleet) = fleet_pair(16);
        cluster.set_activity_all(vap_model::power::PowerActivity::busy());
        fleet.set_activity_all(vap_model::power::PowerActivity::busy());
        let mut a = ScenarioRuntime::new(Scenario::Mixed, 16, 3600.0, SEED);
        let mut b = a.clone();
        a.advance_cluster(3600.0, &mut cluster);
        b.advance_fleet(3600.0, &mut fleet);
        assert_eq!(a.remaining(), 0);
        assert_eq!(b.remaining(), 0);
        assert_eq!(a.shock_scale().to_bits(), b.shock_scale().to_bits());
        for i in 0..16 {
            let c = cluster.module(i);
            assert_eq!(
                c.module_power().value().to_bits(),
                fleet.module_power(i).value().to_bits(),
                "module {i}: layouts diverged"
            );
            assert_eq!(c.drift_skew(), fleet.drift_skew(i), "module {i}: skews diverged");
            assert_eq!(a.is_failed(i), b.is_failed(i), "module {i}: failed sets diverged");
        }
    }

    #[test]
    fn drift_events_open_a_pvt_residual() {
        let (mut cluster, _) = fleet_pair(8);
        cluster.set_activity_all(vap_model::power::PowerActivity::busy());
        let before: Vec<f64> =
            (0..8).map(|i| cluster.module(i).module_power().value()).collect();
        let mut rt = ScenarioRuntime::new(Scenario::Heatwave, 8, 3600.0, SEED);
        rt.advance_cluster(3600.0, &mut cluster);
        let mut worst = Watts::ZERO;
        for i in 0..8 {
            let m = cluster.module(i);
            let residual = m.module_power() - m.pvt_predicted_power();
            if residual > worst {
                worst = residual;
            }
            if !m.drift_skew().is_identity() {
                assert!(
                    m.module_power().value() > before[i],
                    "module {i}: a heatwave must raise actual power"
                );
            }
        }
        assert!(worst > Watts(1.0), "stale PVT must under-predict, worst residual {worst:?}");
        let dirty = rt.take_dirty();
        assert!(!dirty.is_empty(), "drift marks modules dirty");
        assert!(dirty.windows(2).all(|w| w[0] < w[1]), "dirty list is sorted");
        assert!(rt.take_dirty().is_empty(), "take_dirty clears");
    }

    #[test]
    fn cap_shocks_track_scale_and_release() {
        let (mut cluster, _) = fleet_pair(4);
        let mut rt = ScenarioRuntime::new(Scenario::Shocks, 4, 1000.0, SEED);
        assert_eq!(rt.shock_scale(), 1.0);
        let effects = rt.advance_cluster(500.0, &mut cluster);
        assert!(effects.contains(&Effect::Cap));
        assert!(rt.shock_scale() < 1.0, "mid-dip scale: {}", rt.shock_scale());
        rt.advance_cluster(1000.0, &mut cluster);
        assert_eq!(rt.shock_scale(), 1.0, "final shock releases the cap");
    }

    #[test]
    fn fail_then_replace_cycles_the_pool_and_resets_drift() {
        let (mut cluster, _) = fleet_pair(8);
        let events = vec![
            ScenarioEvent {
                at_s: 10.0,
                seq: 0,
                kind: PerturbationKind::Drift {
                    module: 3,
                    step: DriftSkew { dynamic: 1.05, leakage: 1.2, dram: 1.0 },
                },
            },
            ScenarioEvent { at_s: 20.0, seq: 1, kind: PerturbationKind::Fail { module: 3 } },
            ScenarioEvent {
                at_s: 30.0,
                seq: 2,
                kind: PerturbationKind::Replace { module: 3, seed: 99 },
            },
        ];
        let mut rt = ScenarioRuntime::from_events(events, 8, SEED);
        rt.advance_cluster(20.0, &mut cluster);
        assert!(rt.is_failed(3));
        assert!(!cluster.module(3).drift_skew().is_identity());
        rt.advance_cluster(30.0, &mut cluster);
        assert!(!rt.is_failed(3));
        assert!(cluster.module(3).drift_skew().is_identity(), "fresh part has no drift");
        assert!(rt.combined_skew(3).is_identity());
        let dirty = rt.take_dirty();
        assert_eq!(dirty, vec![3], "replacement needs re-calibration");
    }

    #[test]
    fn sensor_faults_corrupt_readings_deterministically() {
        let mk = |fault| {
            let events = vec![ScenarioEvent {
                at_s: 0.0,
                seq: 0,
                kind: PerturbationKind::SensorFault { module: 1, fault },
            }];
            let mut rt = ScenarioRuntime::from_events(events, 4, SEED);
            let (mut cluster, _) = fleet_pair(4);
            rt.advance_cluster(0.0, &mut cluster);
            rt
        };
        // healthy sensors pass truth through
        let mut clean = ScenarioRuntime::from_events(Vec::new(), 4, SEED);
        assert_eq!(clean.read_power(0, 80.0), 80.0);

        let mut stuck = mk(FaultKind::Stuck);
        assert_eq!(stuck.read_power(1, 75.0), 75.0, "stuck captures the first reading");
        assert_eq!(stuck.read_power(1, 90.0), 75.0, "…and freezes there");
        assert_eq!(stuck.read_power(0, 90.0), 90.0, "other modules unaffected");

        let mut offset = mk(FaultKind::Offset { offset_w: -5.0 });
        assert_eq!(offset.read_power(1, 80.0), 75.0);

        let mut na = mk(FaultKind::Noisy { sigma_w: 3.0 });
        let mut nb = mk(FaultKind::Noisy { sigma_w: 3.0 });
        for k in 0..50 {
            let a = na.read_power(1, 80.0);
            let b = nb.read_power(1, 80.0);
            assert_eq!(a.to_bits(), b.to_bits(), "reading {k}: noise must be positional");
            assert!((a - 80.0).abs() <= 3.0, "reading {k}: noise is bounded, got {a}");
        }

        let mut cleared = mk(FaultKind::Stuck);
        let (mut cluster, _) = fleet_pair(4);
        assert_eq!(cleared.read_power(1, 70.0), 70.0);
        let repair = ScenarioEvent {
            at_s: 1.0,
            seq: 1,
            kind: PerturbationKind::SensorFault { module: 1, fault: FaultKind::Clear },
        };
        cleared.apply_to_cluster(&repair, &mut cluster);
        assert_eq!(cleared.read_power(1, 88.0), 88.0, "cleared sensors read truth again");
    }
}
