//! The discrete-event scheduling runtime.
//!
//! Replays a [`Trace`] against a [`Cluster`]: jobs arrive, get placed by
//! a [`vap_sim::scheduler::AllocationPolicy`] over the *free* modules,
//! receive a variation-aware power plan (PMT calibration + α solve via
//! `vap-core`, VaPc flavor), and progress as fluid work under the
//! boundedness-weighted frequency model. On **every** arrival,
//! completion, and cap-change event the global power partition is
//! re-solved per the configured [`ReallocPolicy`], so freed watts flow to
//! running jobs; completion predictions scheduled under an older
//! partition are invalidated by an epoch counter.
//!
//! # Determinism contract
//!
//! The runtime is single-threaded and its outputs are a pure function of
//! `(cluster seed, trace, config)`: the event queue breaks timestamp ties
//! by push order, all randomness comes from SplitMix64 streams derived
//! from the campaign seed, and per-(workload, probe) test runs are cached
//! in a `BTreeMap`. `vap-exec` fans independent runtimes across threads;
//! no state is shared between cells.

use std::collections::BTreeMap;

use vap_core::alpha::{allocations, raw_alpha};
use vap_core::multijob::{Budgeter, JobRequest, PartitionPolicy};
use vap_core::pmt::PowerModelTable;
use vap_core::pvt::PowerVariationTable;
use vap_core::schemes::{apply_plan, ControlKind, PowerPlan, SchemeId};
use vap_core::testrun::{single_module_test_run, TestRunResult};
use vap_model::linear::Alpha;
use vap_model::power::PowerActivity;
use vap_model::units::Watts;
use vap_obs::{
    BudgetDelta, Category, DecisionKind, DecisionRecord, Domain, DriftAlert, DriftConfig,
    DriftDetector, Histogram, LedgerEntry, LedgerTick, WidthProbe,
};
use vap_scenario::{Effect, ScenarioRuntime};
use vap_sim::cluster::Cluster;
use vap_sim::cpufreq::Governor;
use vap_sim::scheduler::AllocationPolicy;
use vap_workloads::catalog;
use vap_workloads::spec::{WorkloadId, WorkloadSpec};

use crate::event::{Event, EventQueue};
use crate::job::{Job, JobState};
use crate::report::{JobRecord, PowerSample, SchedReport};
use crate::trace::{SplitMix64, Trace};

/// What happens to already-awarded budgets when the job mix changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ReallocPolicy {
    /// A job's budget is fixed at admission; watts freed by completions
    /// become available to *future* arrivals only (what a static,
    /// reservation-style resource manager does).
    Frozen,
    /// Re-partition on every event with
    /// [`PartitionPolicy::FairFloorPlusUniformAlpha`]: floors first, then
    /// a common α across all running jobs.
    UniformRebalance,
    /// Re-partition on every event with
    /// [`PartitionPolicy::ThroughputGreedy`]: spare watts go where they
    /// buy the most system progress.
    ThroughputGreedy,
}

impl ReallocPolicy {
    /// All policies, in display order.
    pub const ALL: [ReallocPolicy; 3] =
        [ReallocPolicy::Frozen, ReallocPolicy::UniformRebalance, ReallocPolicy::ThroughputGreedy];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            ReallocPolicy::Frozen => "Frozen",
            ReallocPolicy::UniformRebalance => "Rebalance",
            ReallocPolicy::ThroughputGreedy => "Greedy",
        }
    }
}

impl std::fmt::Display for ReallocPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How the admission loop walks the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum QueueDiscipline {
    /// Strict FIFO: the head of the queue blocks everything behind it.
    Fifo,
    /// Power-aware backfill: when the head does not fit (modules *or*
    /// watts), later jobs that do fit may start ahead of it.
    Backfill,
}

/// Runtime configuration for one replay.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// How modules are picked from the free pool.
    pub allocation: AllocationPolicy,
    /// What happens to budgets on job churn.
    pub realloc: ReallocPolicy,
    /// Queue walk order at admission.
    pub queue: QueueDiscipline,
    /// Initial cluster-level power cap (cap-change events override it).
    pub cap: Watts,
}

/// Why [`SchedRuntime::try_place`] did not admit a job.
enum Placement {
    Placed,
    Deferred,
    Impossible,
}

/// The discrete-event runtime for one `(cluster, trace, config)` cell.
pub struct SchedRuntime {
    cluster: Cluster,
    pvt: PowerVariationTable,
    seed: u64,
    config: SchedConfig,
    now: f64,
    cap: Watts,
    /// Σ budgets held by running jobs — the frozen policy's ledger.
    committed: Watts,
    events: EventQueue,
    jobs: Vec<Job>,
    /// Queued job ids in admission-scan order.
    pending: Vec<usize>,
    /// Running job ids in admission order.
    running: Vec<usize>,
    /// The running jobs' partition ledger, keyed by job id in admission
    /// order (mirrors `running`): cached [`JobRequest`]s plus their PMT
    /// extrema, so re-partitions touch no PMT.
    budgeter: Budgeter,
    /// Free module ids, sorted.
    free: Vec<usize>,
    /// Single-module test runs, cached per (workload, probe module).
    test_cache: BTreeMap<(u64, usize), TestRunResult>,
    samples: Vec<PowerSample>,
    pending_cap_changes: usize,
    /// Optional non-stationary perturbation schedule (drift, faults,
    /// shocks, churn) replayed alongside the trace.
    scenario: Option<ScenarioRuntime>,
    /// Scenario events still scheduled — like `pending_cap_changes`,
    /// part of the "can this admission ever improve?" check.
    pending_scenario: usize,
    /// The trace-level cap (shock-free): cap shocks scale this, and a
    /// shock release restores it.
    base_cap: Watts,
    /// Simulated time of the previous [`Self::sample`] call — the width
    /// of the next watt-provenance ledger tick.
    last_sample_t: f64,
    /// Online drift detector over measured − PVT-predicted residuals.
    drift: DriftDetector,
    /// The most recent drift alerts (bounded), for the telemetry plane.
    recent_alerts: Vec<DriftAlert>,
    /// Job completion times (s).
    hist_jct: Histogram,
    /// Queue wait before admission (s).
    hist_wait: Histogram,
    /// Gap between consecutive processed events (s) — the event-queue
    /// latency profile.
    hist_event_gap: Histogram,
    /// Calibration probes per admission (the width binary search's
    /// iteration count — the α-solve work per placement).
    hist_width_probes: Histogram,
}

/// How many drift alerts the live telemetry snapshot carries.
const RECENT_ALERTS: usize = 8;

impl SchedRuntime {
    /// Build a runtime over a pristine (post-PVT) cluster clone. The PVT
    /// must cover the cluster's modules.
    pub fn new(mut cluster: Cluster, pvt: PowerVariationTable, seed: u64, config: SchedConfig) -> Self {
        // The whole fleet starts idle, uncapped, on the performance
        // governor — whatever the PVT sweep left behind.
        for m in cluster.modules_mut() {
            m.clear_cap();
            m.set_governor(Governor::Performance);
            m.set_workload_variation(None);
            m.set_activity(PowerActivity::IDLE);
        }
        let free: Vec<usize> = (0..cluster.len()).collect();
        let cap = config.cap;
        let drift = DriftDetector::new(cluster.len(), DriftConfig::default());
        SchedRuntime {
            cluster,
            pvt,
            seed,
            config,
            now: 0.0,
            cap,
            committed: Watts::ZERO,
            events: EventQueue::new(),
            jobs: Vec::new(),
            pending: Vec::new(),
            running: Vec::new(),
            budgeter: Budgeter::new(),
            free,
            test_cache: BTreeMap::new(),
            samples: Vec::new(),
            pending_cap_changes: 0,
            scenario: None,
            pending_scenario: 0,
            base_cap: cap,
            last_sample_t: 0.0,
            drift,
            recent_alerts: Vec::new(),
            hist_jct: Histogram::default(),
            hist_wait: Histogram::default(),
            hist_event_gap: Histogram::default(),
            hist_width_probes: Histogram::default(),
        }
    }

    /// Install a non-stationary perturbation schedule. Its events are
    /// merged into the replay's `(time, push-order)` event queue at
    /// [`Self::run_with`], so the replay stays a pure function of
    /// `(cluster seed, trace, config, scenario)`.
    pub fn with_scenario(mut self, scenario: ScenarioRuntime) -> Self {
        self.scenario = Some(scenario);
        self
    }

    /// The installed scenario runtime, if any.
    pub fn scenario(&self) -> Option<&ScenarioRuntime> {
        self.scenario.as_ref()
    }

    /// Replay `trace` to completion and report.
    pub fn run(self, trace: &Trace) -> SchedReport {
        self.run_with(trace, |_| std::ops::ControlFlow::Continue(()))
    }

    /// Replay `trace`, calling `tick` with the post-event runtime state
    /// after every processed event. `tick` observing the runtime must not
    /// influence the replay — it gets `&SchedRuntime`, so the journal
    /// stays a pure function of `(cluster seed, trace, config)` whether
    /// or not anyone is watching. Returning `ControlFlow::Break` stops
    /// the replay early (the daemon's shutdown path); the report then
    /// covers the events processed so far.
    pub fn run_with(
        mut self,
        trace: &Trace,
        mut tick: impl FnMut(&SchedRuntime) -> std::ops::ControlFlow<()>,
    ) -> SchedReport {
        self.jobs = trace
            .jobs
            .iter()
            .map(|a| Job::new(a.clone(), catalog::get(a.workload).cpu_fraction))
            .collect();
        for (idx, a) in trace.jobs.iter().enumerate() {
            self.events.push(a.at_s, Event::Arrival { job: idx });
        }
        for c in &trace.cap_changes {
            self.events.push(c.at_s, Event::CapChange { cap: c.cap });
            self.pending_cap_changes += 1;
        }
        if let Some(sc) = self.scenario.as_ref() {
            let times: Vec<f64> = sc.events().iter().map(|e| e.at_s).collect();
            self.pending_scenario = times.len();
            for (idx, at_s) in times.into_iter().enumerate() {
                self.events.push(at_s, Event::Scenario { idx });
            }
        }

        while let Some((t, event)) = self.events.pop() {
            self.hist_event_gap.observe((t - self.now).max(0.0));
            self.advance(t);
            vap_obs::incr("sched.events");
            match event {
                Event::Arrival { job } => {
                    vap_obs::incr("sched.arrivals");
                    self.pending.push(job);
                    self.try_admit();
                    self.resolve();
                }
                Event::Completion { job, epoch } => {
                    let stale = self.jobs[job].state != JobState::Running
                        || self.jobs[job].epoch != epoch;
                    if stale {
                        vap_obs::incr("sched.stale_completions");
                    } else {
                        self.complete(job);
                        self.try_admit();
                        self.resolve();
                    }
                }
                Event::CapChange { cap } => {
                    vap_obs::incr("sched.cap_changes");
                    let old = self.cap;
                    // An active cap shock scales the new trace cap too
                    // (scale 1.0 is exact: the no-scenario replay is
                    // bit-identical to before scenarios existed).
                    let scale = self.scenario.as_ref().map_or(1.0, |s| s.shock_scale());
                    self.base_cap = cap;
                    let cap = Watts(cap.value() * scale);
                    self.cap = cap;
                    self.pending_cap_changes = self.pending_cap_changes.saturating_sub(1);
                    vap_obs::decision(|| DecisionRecord {
                        t_s: self.now,
                        job: None,
                        cap_w: cap.value(),
                        avail_w: self.available().value(),
                        kind: DecisionKind::CapChange { old_w: old.value(), new_w: cap.value() },
                    });
                    self.enforce_cap();
                    self.try_admit();
                    self.resolve();
                }
                Event::Scenario { idx } => {
                    vap_obs::incr("sched.scenario_events");
                    self.pending_scenario = self.pending_scenario.saturating_sub(1);
                    self.apply_scenario(idx);
                }
            }
            self.sample();
            if tick(&self).is_break() {
                break;
            }
        }

        let fleet = self.cluster.len();
        let horizon_s = self.now;
        let jobs = self.jobs.iter().map(JobRecord::from_job).collect();
        SchedReport { jobs, horizon_s, fleet, power: self.samples }
    }

    /// Integrate fluid progress of running jobs up to `t`.
    fn advance(&mut self, t: f64) {
        let dt = t - self.now;
        if dt > 0.0 {
            for &id in &self.running {
                let j = &mut self.jobs[id];
                j.remaining_s = (j.remaining_s - j.rate * dt).max(0.0);
                j.busy_module_s += j.placement.len() as f64 * dt;
            }
        }
        self.now = t;
    }

    /// Finish a running job and free its resources.
    fn complete(&mut self, id: usize) {
        let j = &mut self.jobs[id];
        j.state = JobState::Completed;
        j.completed_at_s = Some(self.now);
        j.remaining_s = 0.0;
        j.rate = 0.0;
        let placement = std::mem::take(&mut j.placement);
        let budget = j.budget;
        if self.config.realloc == ReallocPolicy::Frozen {
            self.committed = (self.committed - budget).max(Watts::ZERO);
        }
        self.release_modules(&placement);
        self.running.retain(|&r| r != id);
        self.budgeter.remove(id as u64);
        vap_obs::incr("sched.completions");
        if let Some(jct) = self.jobs[id].jct_s() {
            vap_obs::observe("sched.jct_s", jct);
            self.hist_jct.observe(jct);
        }
    }

    /// Watts not yet spoken for under the current policy's ledger.
    fn available(&self) -> Watts {
        match self.config.realloc {
            ReallocPolicy::Frozen => self.cap - self.committed,
            _ => self.cap - self.running_floors(),
        }
    }

    /// Preempt the most recently admitted jobs until the cap is feasible
    /// again (graceful degradation on a mid-run cap tightening).
    fn enforce_cap(&mut self) {
        loop {
            let overload = match self.config.realloc {
                ReallocPolicy::Frozen => self.committed > self.cap,
                _ => self.running_floors() > self.cap,
            };
            if !overload {
                break;
            }
            let Some(&victim) = self.running.last() else {
                break;
            };
            self.preempt(victim);
        }
    }

    /// Push a running job back to the head of the queue, freeing its
    /// modules and watts. Its remaining work is preserved.
    fn preempt(&mut self, id: usize) {
        let j = &mut self.jobs[id];
        j.state = JobState::Queued;
        j.epoch += 1;
        j.rate = 0.0;
        j.preemptions += 1;
        j.alpha = Alpha::MIN;
        j.pmt = None;
        let placement = std::mem::take(&mut j.placement);
        let budget = j.budget;
        j.budget = Watts::ZERO;
        if self.config.realloc == ReallocPolicy::Frozen {
            self.committed = (self.committed - budget).max(Watts::ZERO);
        }
        self.release_modules(&placement);
        self.running.retain(|&r| r != id);
        self.budgeter.remove(id as u64);
        self.pending.insert(0, id);
        vap_obs::incr("sched.preemptions");
        vap_obs::decision(|| DecisionRecord {
            t_s: self.now,
            job: Some(id as u64),
            cap_w: self.cap.value(),
            avail_w: self.available().value(),
            kind: DecisionKind::Preempt {
                freed_w: budget.value(),
                width: placement.len() as u64,
            },
        });
    }

    /// Return modules to the free pool: uncap, performance governor, idle
    /// activity. Modules currently failed out by the scenario are idled
    /// but *not* re-listed — they rejoin on replacement.
    fn release_modules(&mut self, ids: &[usize]) {
        for &m in ids {
            if let Some(module) = self.cluster.get_mut(m) {
                module.clear_cap();
                module.set_governor(Governor::Performance);
                module.set_workload_variation(None);
                module.set_activity(PowerActivity::IDLE);
            }
        }
        self.free.extend_from_slice(ids);
        if let Some(sc) = self.scenario.as_ref() {
            self.free.retain(|&m| !sc.is_failed(m));
        }
        self.free.sort_unstable();
    }

    /// Replay the `idx`-th scenario event against the cluster and react:
    /// cap shocks flow through the cap-change path, failures preempt and
    /// shrink the pool, replacements rejoin it. Drift/entropy/sensor
    /// events mutate only the physics (and the sensor plane) — the
    /// scheduler deliberately keeps planning from its stale PVT until a
    /// re-calibration policy intervenes.
    fn apply_scenario(&mut self, idx: usize) {
        let Some(ev) = self.scenario.as_ref().and_then(|sc| sc.events().get(idx)).copied()
        else {
            return;
        };
        let effect = match self.scenario.as_mut() {
            Some(sc) => sc.apply_to_cluster(&ev, &mut self.cluster),
            None => return,
        };
        match effect {
            Effect::Module(_) | Effect::Sensor(_) => {}
            Effect::Cap => self.shock_cap(),
            Effect::Failed(m) => self.fail_module(m),
            Effect::Replaced(m) => self.rejoin_module(m),
        }
    }

    /// Re-derive the effective cap as `shock scale × base cap` and push
    /// the change through the same machinery a trace cap change uses.
    fn shock_cap(&mut self) {
        let scale = self.scenario.as_ref().map_or(1.0, |s| s.shock_scale());
        let old = self.cap;
        let cap = Watts(self.base_cap.value() * scale);
        self.cap = cap;
        vap_obs::decision(|| DecisionRecord {
            t_s: self.now,
            job: None,
            cap_w: cap.value(),
            avail_w: self.available().value(),
            kind: DecisionKind::CapChange { old_w: old.value(), new_w: cap.value() },
        });
        self.enforce_cap();
        self.try_admit();
        self.resolve();
    }

    /// A module failed out of the pool: preempt every job placed on it
    /// (their work is preserved; they re-queue at the head), then drop it
    /// from the free list until a replacement arrives.
    fn fail_module(&mut self, m: usize) {
        vap_obs::incr("sched.module_failures");
        let victims: Vec<usize> = self
            .running
            .iter()
            .copied()
            .filter(|&id| self.jobs[id].placement.contains(&m))
            .collect();
        for v in victims {
            self.preempt(v);
        }
        self.free.retain(|&f| f != m);
        self.try_admit();
        self.resolve();
    }

    /// A replacement part rejoined the pool with fresh silicon (already
    /// swapped in by the scenario runtime): list it free again and give
    /// the queue a chance at the recovered capacity.
    fn rejoin_module(&mut self, m: usize) {
        vap_obs::incr("sched.module_replacements");
        let held = self.running.iter().any(|&id| self.jobs[id].placement.contains(&m));
        if m < self.cluster.len() && !held && !self.free.contains(&m) {
            self.free.push(m);
            self.free.sort_unstable();
        }
        self.try_admit();
        self.resolve();
    }

    /// Σ PMT floors of the running jobs (the rebalance policies' ledger).
    ///
    /// Served from the [`Budgeter`]'s cached extrema: the sum visits the
    /// same floors in the same (admission) order the old per-call PMT
    /// rescan did, so the value is bit-identical.
    fn running_floors(&self) -> Watts {
        self.budgeter.floor_total()
    }

    /// Walk the queue admitting whatever fits under the discipline.
    fn try_admit(&mut self) {
        let mut i = 0;
        while i < self.pending.len() {
            let id = self.pending[i];
            match self.try_place(id) {
                Placement::Placed => {
                    self.pending.remove(i);
                }
                Placement::Deferred => {
                    if self.config.queue == QueueDiscipline::Fifo {
                        break;
                    }
                    i += 1;
                }
                Placement::Impossible => {
                    self.pending.remove(i);
                    self.jobs[id].state = JobState::Killed;
                    vap_obs::incr("sched.kills");
                }
            }
        }
        vap_obs::observe("sched.queue_depth", self.pending.len() as f64);
    }

    /// Attempt to place one queued job: pick modules from the free pool,
    /// calibrate its PMT, shrink its width down to `min_width` if the
    /// watts are tight, and admit if (and only if) its floor fits.
    fn try_place(&mut self, id: usize) -> Placement {
        let arrival = self.jobs[id].spec.clone();
        if arrival.min_width > self.cluster.len() {
            self.defer_or_kill_decision(id, "min_width_exceeds_fleet", true);
            return Placement::Impossible;
        }
        // Can the job's admission ever improve without our intervention?
        // Only if something is running (will free modules/watts), a cap
        // change is still scheduled, or a scenario event (shock release,
        // module replacement) is still pending.
        let idle_system = self.running.is_empty()
            && self.pending_cap_changes == 0
            && self.pending_scenario == 0;
        if self.free.len() < arrival.min_width {
            self.defer_or_kill_decision(id, "insufficient_modules", false);
            return Placement::Deferred;
        }
        let spec = catalog::get(arrival.workload);
        let w_max = arrival.width.min(self.free.len());
        let pref = self.pick_modules(w_max, &spec, id);
        let Some(&probe) = pref.first() else {
            self.defer_or_kill_decision(id, "insufficient_modules", false);
            return Placement::Deferred;
        };
        let test = self.cached_test(arrival.workload, probe, &spec);

        let avail = self.available();
        // Width probes feed the decision trace only: recording them must
        // not perturb the replay, and without a live session they must
        // cost nothing.
        let tracing = vap_obs::enabled();
        let mut probes: Vec<WidthProbe> = Vec::new();
        let calibrate =
            |w: usize| PowerModelTable::calibrate(&self.pvt, &test, &pref[..w]).ok();
        // Feasibility floor is monotone in width: check the narrowest
        // shape first, then binary-search the widest feasible width.
        let Some(pmt_min) = calibrate(arrival.min_width) else {
            self.defer_or_kill_decision(id, "no_feasible_width", false);
            return Placement::Deferred;
        };
        if tracing {
            probes.push(WidthProbe {
                width: arrival.min_width as u64,
                floor_w: pmt_min.fleet_minimum().value(),
                feasible: pmt_min.fleet_minimum() <= avail,
            });
        }
        if pmt_min.fleet_minimum() > avail {
            self.defer_or_kill_decision(id, "insufficient_power", idle_system);
            return if idle_system { Placement::Impossible } else { Placement::Deferred };
        }
        let mut lo = arrival.min_width;
        let mut hi = w_max;
        let mut pmt = pmt_min;
        let mut calibrations = 1u64;
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            calibrations += 1;
            match calibrate(mid) {
                Some(p) if p.fleet_minimum() <= avail => {
                    if tracing {
                        probes.push(WidthProbe {
                            width: mid as u64,
                            floor_w: p.fleet_minimum().value(),
                            feasible: true,
                        });
                    }
                    lo = mid;
                    pmt = p;
                }
                other => {
                    if tracing {
                        if let Some(p) = other {
                            probes.push(WidthProbe {
                                width: mid as u64,
                                floor_w: p.fleet_minimum().value(),
                                feasible: false,
                            });
                        }
                    }
                    hi = mid - 1;
                }
            }
        }
        let width = lo;
        self.hist_width_probes.observe(calibrations as f64);
        let ids: Vec<usize> = pref[..width].to_vec();

        // Admit: occupy the modules and (frozen policy) lock the budget.
        let budget = match self.config.realloc {
            ReallocPolicy::Frozen => {
                let b = avail.min(pmt.fleet_maximum()).max(pmt.fleet_minimum());
                self.committed += b;
                b
            }
            // rebalance policies award budgets in resolve()
            _ => pmt.fleet_minimum(),
        };
        vap_obs::decision(|| DecisionRecord {
            t_s: self.now,
            job: Some(id as u64),
            cap_w: self.cap.value(),
            avail_w: avail.value(),
            kind: DecisionKind::Admit {
                width_requested: arrival.width as u64,
                width_granted: width as u64,
                budget_w: budget.value(),
                alpha: Alpha::saturating(raw_alpha(budget, &pmt)).value(),
                alternatives: probes,
            },
        });
        self.free.retain(|m| !ids.contains(m));
        spec.apply_to_modules(&mut self.cluster, &ids, self.seed);
        self.budgeter.admit(
            id as u64,
            JobRequest {
                workload: arrival.workload,
                module_ids: ids.clone(),
                pmt: pmt.clone(),
                cpu_fraction: self.jobs[id].cpu_fraction,
            },
        );
        let j = &mut self.jobs[id];
        j.placement = ids;
        j.last_width = width;
        j.pmt = Some(pmt);
        j.state = JobState::Running;
        j.budget = budget;
        if j.started_at_s.is_none() {
            j.started_at_s = Some(self.now);
        }
        self.running.push(id);
        vap_obs::incr("sched.admissions");
        if width < arrival.width {
            vap_obs::incr("sched.shrunk_admissions");
        }
        vap_obs::observe("sched.wait_s", self.now - arrival.at_s);
        vap_obs::observe("sched.width_granted", width as f64);
        self.hist_wait.observe(self.now - arrival.at_s);
        Placement::Placed
    }

    /// Trace a placement failure as a [`DecisionKind::Defer`] (or
    /// [`DecisionKind::Kill`] when the job can never run). Trace only —
    /// no replay effect, no cost without a live session.
    fn defer_or_kill_decision(&self, id: usize, reason: &str, kill: bool) {
        vap_obs::decision(|| DecisionRecord {
            t_s: self.now,
            job: Some(id as u64),
            cap_w: self.cap.value(),
            avail_w: self.available().value(),
            kind: if kill {
                DecisionKind::Kill { reason: reason.to_string() }
            } else {
                DecisionKind::Defer { reason: reason.to_string() }
            },
        });
    }

    /// Pick up to `n` modules from the free pool in *preference order*
    /// (the width-shrink path takes prefixes). The four policies mirror
    /// [`vap_sim::scheduler::Scheduler::allocate`] restricted to the free
    /// subset.
    fn pick_modules(&self, n: usize, spec: &WorkloadSpec, job_id: usize) -> Vec<usize> {
        let n = n.min(self.free.len());
        match self.config.allocation {
            AllocationPolicy::Contiguous => self.free.iter().copied().take(n).collect(),
            AllocationPolicy::Strided { stride } => {
                let stride = stride.max(1);
                let total = self.free.len();
                // An empty free list must yield an empty allocation like
                // the other policies — entering the walk below with
                // `total == 0` would index `seen[0]` and divide by zero
                // in `% total`.
                if total == 0 {
                    return Vec::new();
                }
                let mut picked = Vec::with_capacity(n);
                let mut seen = vec![false; total];
                let mut i = 0usize;
                while picked.len() < n {
                    if !seen[i] {
                        seen[i] = true;
                        picked.push(self.free[i]);
                    }
                    i = (i + stride) % total;
                    if seen[i] {
                        if let Some(j) = seen.iter().position(|&s| !s) {
                            i = j;
                        } else {
                            break;
                        }
                    }
                }
                picked
            }
            AllocationPolicy::Random => {
                // Fisher–Yates over the free list, seeded per job so a
                // replay is exact at any thread count.
                let mut ids = self.free.clone();
                let mut rng = SplitMix64::new(
                    self.seed ^ (job_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                for k in (1..ids.len()).rev() {
                    ids.swap(k, rng.next_index(k + 1));
                }
                ids.truncate(n);
                ids
            }
            AllocationPolicy::LowestPowerFirst => {
                let f_max = self.cluster.spec().pstates.f_max();
                let mut ranked: Vec<(usize, f64)> = self
                    .free
                    .iter()
                    .filter_map(|&m| self.cluster.get(m).map(|module| (m, module)))
                    .map(|(m, module)| {
                        let p = module.power_model().module_power(
                            f_max,
                            spec.activity,
                            module.variation(),
                            module.thermal().factor(),
                        );
                        (m, p.value())
                    })
                    .collect();
                ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                ranked.into_iter().take(n).map(|(m, _)| m).collect()
            }
        }
    }

    /// The job's single-module test run, cached per (workload, probe).
    fn cached_test(&mut self, w: WorkloadId, probe: usize, spec: &WorkloadSpec) -> TestRunResult {
        if let Some(t) = self.test_cache.get(&(w.index(), probe)) {
            return *t;
        }
        let t = single_module_test_run(&mut self.cluster, probe, spec, self.seed);
        self.test_cache.insert((w.index(), probe), t);
        t
    }

    /// Re-solve the global power partition over the running jobs, apply
    /// the per-module plans, and reschedule completion predictions under
    /// a fresh epoch.
    fn resolve(&mut self) {
        if self.running.is_empty() {
            return;
        }
        vap_obs::incr("sched.resolves");
        match self.config.realloc {
            ReallocPolicy::Frozen => {
                // budgets fixed at admission: only the per-job α/plan is
                // (re)derived, idempotently
            }
            ReallocPolicy::UniformRebalance | ReallocPolicy::ThroughputGreedy => {
                let policy = match self.config.realloc {
                    ReallocPolicy::ThroughputGreedy => PartitionPolicy::ThroughputGreedy,
                    _ => PartitionPolicy::FairFloorPlusUniformAlpha,
                };
                // The budgeter mirrors `running` (admit in try_place,
                // remove in complete/preempt), so partitioning its cached
                // requests is bit-identical to rebuilding them here.
                // Admission control keeps Σ floors ≤ cap, so the partition
                // is feasible; if it ever is not (float dust on the
                // boundary), keep the previous budgets rather than abort.
                if let Ok(parts) = self.budgeter.partition(self.cap, policy) {
                    let before: Vec<f64> = if vap_obs::enabled() {
                        self.budgeter
                            .keys()
                            .iter()
                            .map(|&k| self.jobs[k as usize].budget.value())
                            .collect()
                    } else {
                        Vec::new()
                    };
                    for (&key, part) in self.budgeter.keys().iter().zip(&parts) {
                        self.jobs[key as usize].budget = part.budget;
                    }
                    vap_obs::decision(|| DecisionRecord {
                        t_s: self.now,
                        job: None,
                        cap_w: self.cap.value(),
                        avail_w: self.available().value(),
                        kind: DecisionKind::Rebalance {
                            policy: self.config.realloc.name().to_string(),
                            deltas: self
                                .budgeter
                                .keys()
                                .iter()
                                .enumerate()
                                .map(|(i, &k)| {
                                    let j = &self.jobs[k as usize];
                                    BudgetDelta {
                                        job: k,
                                        before_w: before
                                            .get(i)
                                            .copied()
                                            .unwrap_or_else(|| j.budget.value()),
                                        after_w: j.budget.value(),
                                        alpha: j
                                            .pmt
                                            .as_ref()
                                            .map(|p| {
                                                Alpha::saturating(raw_alpha(j.budget, p)).value()
                                            })
                                            .unwrap_or(0.0),
                                    }
                                })
                                .collect(),
                        },
                    });
                }
            }
        }

        // Common tail: derive α from the budget, apply the VaPc plan,
        // reset the rate, and schedule a fresh completion prediction.
        let ids: Vec<usize> = self.running.clone();
        for &id in &ids {
            let Some(pmt) = self.jobs[id].pmt.clone() else {
                continue;
            };
            let budget = self.jobs[id].budget;
            let alpha = Alpha::saturating(raw_alpha(budget, &pmt));
            let plan = PowerPlan {
                scheme: SchemeId::VaPc,
                alpha,
                allocations: allocations(&pmt, alpha),
                control: ControlKind::PowerCapping,
                budget,
            };
            apply_plan(&plan, &mut self.cluster);
            let rate = Job::progress_rate(&pmt, self.jobs[id].cpu_fraction, alpha);
            let j = &mut self.jobs[id];
            j.alpha = alpha;
            j.rate = rate;
            j.epoch += 1;
            if rate > 0.0 && j.remaining_s.is_finite() {
                let eta = self.now + j.remaining_s / rate;
                self.events.push(eta, Event::Completion { job: id, epoch: j.epoch });
            }
        }
    }

    /// Current simulated time (seconds since replay start).
    pub fn now_s(&self) -> f64 {
        self.now
    }

    /// The cluster-level power cap currently in effect.
    pub fn cap(&self) -> Watts {
        self.cap
    }

    /// Jobs currently running.
    pub fn running_count(&self) -> usize {
        self.running.len()
    }

    /// Jobs currently queued.
    pub fn queued_count(&self) -> usize {
        self.pending.len()
    }

    /// Total drift alerts fired so far.
    pub fn drift_alerts(&self) -> u64 {
        self.drift.alerts_total()
    }

    /// The most recent drift alerts (bounded to the last
    /// [`RECENT_ALERTS`]), oldest first.
    pub fn recent_drift_alerts(&self) -> &[DriftAlert] {
        &self.recent_alerts
    }

    /// The runtime's live telemetry as an unsealed snapshot (the daemon's
    /// sensor view; the registry stamps epoch + checksum at publish).
    pub fn telemetry(&self) -> vap_obs::TelemetrySnapshot {
        vap_obs::TelemetrySnapshot {
            sim_time_s: self.now,
            total_power_w: self.cluster.total_power().value(),
            cap_w: self.cap.value(),
            running_jobs: self.running.len() as u64,
            queued_jobs: self.pending.len() as u64,
            drift_alerts: self.drift.alerts_total(),
            alerts: self
                .recent_alerts
                .iter()
                .map(|a| vap_obs::DriftAlertSample {
                    module: a.module,
                    residual_w: a.residual_w,
                    z: a.z,
                })
                .collect(),
            hists: vec![
                vap_obs::HistogramSample::from_histogram("sched_jct_s", &self.hist_jct),
                vap_obs::HistogramSample::from_histogram("sched_wait_s", &self.hist_wait),
                vap_obs::HistogramSample::from_histogram(
                    "sched_event_gap_s",
                    &self.hist_event_gap,
                ),
                vap_obs::HistogramSample::from_histogram(
                    "sched_width_probes",
                    &self.hist_width_probes,
                ),
            ],
            modules: self.cluster.telemetry(),
            ..vap_obs::TelemetrySnapshot::default()
        }
    }

    /// Record the power/queue snapshot after an event, feed the drift
    /// detector, and emit the watt-provenance ledger tick.
    fn sample(&mut self) {
        let allocated: Watts = self.running.iter().map(|&id| self.jobs[id].budget).sum();
        self.samples.push(PowerSample {
            at_s: self.now,
            allocated_w: allocated.value(),
            measured_w: self.cluster.total_power().value(),
            running: self.running.len(),
            queued: self.pending.len(),
        });

        // Drift: every module's measured − PVT-predicted residual. Part
        // of the deterministic replay state (the daemon serves it), so
        // it runs whether or not a journal session is live. The measured
        // side goes through the scenario's sensor-fault plane when one is
        // installed — a stuck or offset sensor corrupts what the detector
        // sees, never the physics.
        for idx in 0..self.cluster.len() {
            let Some(m) = self.cluster.get(idx) else {
                continue;
            };
            let true_w = m.module_power().value();
            let predicted = m.pvt_predicted_power().value();
            let measured = match self.scenario.as_mut() {
                Some(sc) => sc.read_power(idx, true_w),
                None => true_w,
            };
            let residual = measured - predicted;
            if let Some(alert) = self.drift.observe(idx, self.now, residual) {
                vap_obs::incr("sched.drift_alerts");
                self.recent_alerts.push(alert);
                if self.recent_alerts.len() > RECENT_ALERTS {
                    let excess = self.recent_alerts.len() - RECENT_ALERTS;
                    self.recent_alerts.drain(..excess);
                }
            }
        }

        let dt = self.now - self.last_sample_t;
        self.last_sample_t = self.now;
        vap_obs::ledger_tick(|| self.provenance_tick(dt));
    }

    /// Attribute the current cap to `(job, module, domain)` watt bins.
    ///
    /// Telescoping keeps the bins summing to the cap exactly: per-domain
    /// `useful + loss` recovers each module grant (`useful =
    /// min(measured, granted)`, the loss classified as throttle when
    /// RAPL is actively limiting, headroom otherwise), each job-residue
    /// row absorbs `budget − Σ grants`, and the system-stranded row
    /// absorbs `cap − Σ budgets` — so conservation holds by
    /// construction for every trace (`tests/ledger_props.rs`). Public so
    /// observers hooked via [`Self::run_with`] can audit the attribution
    /// directly; the journal path calls it through
    /// [`vap_obs::ledger_tick`] after every event.
    pub fn provenance_tick(&self, dt_s: f64) -> LedgerTick {
        let mut entries = Vec::new();
        let mut budgets_total = 0.0;
        for &id in &self.running {
            let j = &self.jobs[id];
            budgets_total += j.budget.value();
            let mut granted_total = 0.0;
            if let Some(pmt) = &j.pmt {
                for a in allocations(pmt, j.alpha) {
                    let Some(m) = self.cluster.get(a.module_id) else {
                        continue;
                    };
                    let module = a.module_id as u64;
                    let throttled = m.rapl_throttled();
                    for (domain, granted, measured) in [
                        (Domain::Cpu, a.p_cpu.value(), m.cpu_power().value()),
                        (Domain::Dram, a.p_dram.value(), m.dram_power().value()),
                    ] {
                        let useful = measured.min(granted);
                        entries.push(LedgerEntry::module(
                            id as u64,
                            module,
                            domain,
                            Category::Useful,
                            useful,
                        ));
                        let cat =
                            if throttled { Category::Throttle } else { Category::Headroom };
                        entries.push(LedgerEntry::module(
                            id as u64,
                            module,
                            domain,
                            cat,
                            granted - useful,
                        ));
                        granted_total += granted;
                    }
                }
            }
            entries.push(LedgerEntry::job_residue(id as u64, j.budget.value() - granted_total));
        }
        entries.push(LedgerEntry::system_stranded(self.cap.value() - budgets_total));
        LedgerTick { t_s: self.now, dt_s, cap_w: self.cap.value(), entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vap_model::systems::SystemSpec;

    const SEED: u64 = 2015;

    fn runtime(n: usize, allocation: AllocationPolicy) -> SchedRuntime {
        let mut cluster = Cluster::with_size(SystemSpec::ha8k(), n, SEED);
        let stream = catalog::get(WorkloadId::Stream);
        let pvt = PowerVariationTable::generate(&mut cluster, &stream, SEED);
        let config = SchedConfig {
            allocation,
            realloc: ReallocPolicy::Frozen,
            queue: QueueDiscipline::Fifo,
            cap: Watts(95.0 * n as f64),
        };
        SchedRuntime::new(cluster, pvt, SEED, config)
    }

    const POLICIES: [AllocationPolicy; 4] = [
        AllocationPolicy::Contiguous,
        AllocationPolicy::Strided { stride: 3 },
        AllocationPolicy::Random,
        AllocationPolicy::LowestPowerFirst,
    ];

    #[test]
    fn oversized_requests_short_allocate_under_every_policy() {
        let spec = catalog::get(WorkloadId::Stream);
        for allocation in POLICIES {
            let rt = runtime(6, allocation);
            let picked = rt.pick_modules(64, &spec, 0);
            assert_eq!(picked.len(), 6, "{allocation:?}: short allocation expected");
            let mut sorted = picked.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 6, "{allocation:?}: duplicate module ids");
            assert!(sorted.iter().all(|m| rt.free.contains(m)), "{allocation:?}: picked a busy module");
        }
    }

    #[test]
    fn empty_free_list_yields_empty_allocation_under_every_policy() {
        // Regression guard: the strided walk used to be one `n > 0` away
        // from `seen[0]` / `% 0` panics on an empty free list.
        let spec = catalog::get(WorkloadId::Stream);
        for allocation in POLICIES {
            let mut rt = runtime(4, allocation);
            rt.free.clear();
            for n in [0, 1, 7] {
                assert!(
                    rt.pick_modules(n, &spec, 0).is_empty(),
                    "{allocation:?}: n={n} on empty free list"
                );
            }
        }
    }

    #[test]
    fn strided_allocation_spreads_and_covers() {
        let spec = catalog::get(WorkloadId::Stream);
        let rt = runtime(8, AllocationPolicy::Strided { stride: 3 });
        // a partial request strides across the free list...
        assert_eq!(rt.pick_modules(3, &spec, 0), vec![0, 3, 6]);
        // ...and a full-width request still covers every module exactly once
        let mut all = rt.pick_modules(8, &spec, 0);
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<_>>());
    }
}
