//! # vap-sched — deterministic discrete-event cluster runtime
//!
//! This crate closes the loop the static studies leave open: the paper's
//! variation-aware power schemes decide *how* to run a fixed job set, but
//! a production machine-room takes jobs as they arrive, under a cluster
//! cap that can change mid-run. `vap-sched` replays a seeded arrival
//! trace ([`trace::TraceGen`]) against a [`vap_sim::cluster::Cluster`],
//! placing each job with a pluggable allocation policy, solving a
//! variation-aware (VaPc) power plan for the job's module set at
//! admission, and — under the online policies — re-partitioning the
//! global power budget across *all* running jobs on every arrival and
//! completion via [`vap_core::multijob`].
//!
//! ## Event model
//!
//! The runtime is a textbook discrete-event simulation: a min-heap of
//! `(time, seq)`-ordered events ([`event::EventQueue`]) drives a fluid
//! job-progress model. Completion times are *predicted* from each job's
//! current rate and invalidated by epoch counters whenever a re-solve
//! changes the rate, so stale predictions are simply skipped.
//!
//! ## Determinism contract
//!
//! A replay is a pure function of `(trace, cluster, seed, config)` —
//! plus the installed `vap_scenario::ScenarioRuntime`, when one is
//! present: byte-identical reports at any thread count and across
//! repeated runs.
//! Three rules make that hold: event ties break by push sequence (never
//! heap internals), all randomness flows from seeded SplitMix64 streams
//! (never ambient RNG or clocks), and iteration is over sorted `Vec`s and
//! `BTreeMap`s (never hash order).

pub mod event;
pub mod job;
pub mod report;
pub mod runtime;
pub mod trace;

pub use event::{Event, EventQueue};
pub use job::{Job, JobState};
pub use report::{JobRecord, PowerSample, SchedReport};
pub use runtime::{QueueDiscipline, ReallocPolicy, SchedConfig, SchedRuntime};
pub use trace::{CapChange, JobArrival, SplitMix64, Trace, TraceGen};
