//! Job lifecycle state.
//!
//! queued → placed/running → completed, with two degradation edges: a
//! running job can be preempted back to the queue when the cluster cap
//! tightens, and a queued job that can never fit (even alone, at its
//! minimum width, on an otherwise idle cluster) is killed rather than
//! left to starve the drain.

use serde::{Deserialize, Serialize};
use vap_core::pmt::PowerModelTable;
use vap_model::linear::Alpha;
use vap_model::units::Watts;
use vap_workloads::spec::WorkloadId;

use crate::trace::JobArrival;

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Waiting for modules and watts.
    Queued,
    /// Placed and progressing.
    Running,
    /// All work done.
    Completed,
    /// Can never be admitted (infeasible even on an idle cluster).
    Killed,
}

/// The runtime's mutable view of one job.
#[derive(Debug, Clone)]
pub struct Job {
    /// The immutable arrival record.
    pub spec: JobArrival,
    /// Lifecycle state.
    pub state: JobState,
    /// Modules currently held (empty unless running).
    pub placement: Vec<usize>,
    /// PMT calibrated over the current placement (present while running).
    pub pmt: Option<PowerModelTable>,
    /// CPU-bound fraction χ from the workload catalog.
    pub cpu_fraction: f64,
    /// Full-speed work remaining (seconds).
    pub remaining_s: f64,
    /// Current progress rate (full-speed seconds per simulated second;
    /// 1.0 at α = 1, lower under a tight budget, 0 when not running).
    pub rate: f64,
    /// Power budget currently awarded.
    pub budget: Watts,
    /// α solved for the current budget.
    pub alpha: Alpha,
    /// First admission time, if ever admitted.
    pub started_at_s: Option<f64>,
    /// Completion time, if completed.
    pub completed_at_s: Option<f64>,
    /// Times the job was preempted back to the queue.
    pub preemptions: u32,
    /// Bumped on every re-solve and preemption: completion events carry
    /// the epoch they were predicted under, and stale ones are ignored.
    pub epoch: u64,
    /// Accumulated module·seconds of occupancy (utilization accounting).
    pub busy_module_s: f64,
    /// Width of the most recent placement (survives module release at
    /// completion, so reports can show the granted width).
    pub last_width: usize,
}

impl Job {
    /// A fresh queued job for an arrival record.
    pub fn new(spec: JobArrival, cpu_fraction: f64) -> Self {
        let remaining_s = spec.work_s;
        Job {
            spec,
            state: JobState::Queued,
            placement: Vec::new(),
            pmt: None,
            cpu_fraction,
            remaining_s,
            rate: 0.0,
            budget: Watts::ZERO,
            alpha: Alpha::MIN,
            started_at_s: None,
            completed_at_s: None,
            preemptions: 0,
            epoch: 0,
            busy_module_s: 0.0,
            last_width: 0,
        }
    }

    /// The application.
    pub fn workload(&self) -> WorkloadId {
        self.spec.workload
    }

    /// Progress rate under `alpha`: the boundedness-weighted frequency
    /// ratio `1 / (χ·f_max/f + (1−χ))` — the same fluid model
    /// `vap_core::multijob` scores partitions with, here integrated over
    /// simulated time.
    // vap:allow(unit-flow): progress rate relative to f_max is dimensionless
    pub fn progress_rate(pmt: &PowerModelTable, cpu_fraction: f64, alpha: Alpha) -> f64 {
        let Some(entry) = pmt.entries().first() else {
            return 0.0;
        };
        let f = entry.cpu.frequency(alpha).value();
        let f_max = entry.cpu.f_max.value();
        if f <= 0.0 {
            return 0.0;
        }
        1.0 / (cpu_fraction * (f_max / f) + (1.0 - cpu_fraction))
    }

    /// Queue wait: first admission minus arrival.
    pub fn wait_s(&self) -> Option<f64> {
        self.started_at_s.map(|s| s - self.spec.at_s)
    }

    /// Job completion time: completion minus arrival.
    pub fn jct_s(&self) -> Option<f64> {
        self.completed_at_s.map(|c| c - self.spec.at_s)
    }

    /// Stretch: completion time over ideal full-speed runtime.
    pub fn stretch(&self) -> Option<f64> {
        let jct = self.jct_s()?;
        if self.spec.work_s > 0.0 {
            Some(jct / self.spec.work_s)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vap_model::units::GigaHertz;

    fn job() -> Job {
        Job::new(
            JobArrival {
                id: 0,
                at_s: 10.0,
                workload: WorkloadId::Dgemm,
                width: 8,
                min_width: 4,
                work_s: 100.0,
            },
            0.9,
        )
    }

    fn pmt() -> PowerModelTable {
        PowerModelTable::naive(
            &[0, 1],
            GigaHertz(2.7),
            GigaHertz(1.2),
            Watts(130.0),
            Watts(62.0),
            Watts(40.0),
            Watts(10.0),
        )
    }

    #[test]
    fn fresh_jobs_are_queued_with_full_work() {
        let j = job();
        assert_eq!(j.state, JobState::Queued);
        assert_eq!(j.remaining_s, 100.0);
        assert!(j.wait_s().is_none());
        assert!(j.jct_s().is_none());
        assert!(j.stretch().is_none());
    }

    #[test]
    fn progress_rate_is_one_at_full_alpha_and_lower_below() {
        let p = pmt();
        let full = Job::progress_rate(&p, 0.9, Alpha::MAX);
        assert!((full - 1.0).abs() < 1e-12);
        let low = Job::progress_rate(&p, 0.9, Alpha::MIN);
        assert!(low > 0.0 && low < full);
        // a memory-bound job barely notices α
        let insensitive = Job::progress_rate(&p, 0.1, Alpha::MIN);
        assert!(insensitive > low);
    }

    #[test]
    fn timing_accessors_derive_from_timestamps() {
        let mut j = job();
        j.started_at_s = Some(25.0);
        j.completed_at_s = Some(210.0);
        assert_eq!(j.wait_s(), Some(15.0));
        assert_eq!(j.jct_s(), Some(200.0));
        assert_eq!(j.stretch(), Some(2.0));
    }
}
