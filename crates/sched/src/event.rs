//! The deterministic event queue at the heart of the runtime.
//!
//! A discrete-event simulation is only as reproducible as its event
//! ordering. Two events at the *same* simulated time are ordered by a
//! monotonically increasing sequence number assigned at push time, so the
//! ordering is a pure function of the (deterministic) push order — never
//! of heap internals, float rounding in comparisons, or thread timing.
//! `f64::total_cmp` gives the time comparison a total order, so the queue
//! never has to answer "are these floats equal?".

use std::cmp::Ordering;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use vap_model::units::Watts;

/// What happens at an event's timestamp.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A job from the trace arrives in the queue.
    Arrival {
        /// Index into the runtime's job table.
        job: usize,
    },
    /// A running job's fluid work reaches zero — valid only if the job's
    /// epoch still matches (every re-solve bumps the epoch and schedules a
    /// fresh completion, orphaning this one).
    Completion {
        /// Index into the runtime's job table.
        job: usize,
        /// The job epoch this prediction was made under.
        epoch: u64,
    },
    /// The cluster-level power cap changes mid-run.
    CapChange {
        /// The new system cap.
        cap: Watts,
    },
    /// A scenario perturbation (drift step, sensor fault, cap shock,
    /// module failure/replacement) fires.
    Scenario {
        /// Index into the installed scenario runtime's event list.
        idx: usize,
    },
}

/// An event with its position in simulated time and in push order.
#[derive(Debug, Clone)]
struct QueuedEvent {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for QueuedEvent {}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time.total_cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

/// A min-heap of events ordered by `(time, push sequence)`.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<QueuedEvent>>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedule `event` at simulated time `time` (seconds). Events pushed
    /// later sort after events pushed earlier at the same timestamp.
    pub fn push(&mut self, time: f64, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(QueuedEvent { time, seq, event }));
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<(f64, Event)> {
        self.heap.pop().map(|Reverse(q)| (q.time, q.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is drained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, Event::Arrival { job: 3 });
        q.push(1.0, Event::Arrival { job: 1 });
        q.push(2.0, Event::Arrival { job: 2 });
        let order: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_break_by_push_order() {
        let mut q = EventQueue::new();
        for job in 0..10 {
            q.push(5.0, Event::Arrival { job });
        }
        let order: Vec<usize> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::Arrival { job } => job,
                _ => usize::MAX,
            })
        })
        .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_pushes_stay_deterministic() {
        // same inputs → same pop order, regardless of interleaving with pops
        let mut q = EventQueue::new();
        q.push(2.0, Event::Arrival { job: 0 });
        q.push(1.0, Event::CapChange { cap: Watts(10.0) });
        assert!(matches!(q.pop(), Some((_, Event::CapChange { .. }))));
        q.push(1.5, Event::Completion { job: 0, epoch: 0 });
        assert!(matches!(q.pop(), Some((t, Event::Completion { .. })) if t == 1.5));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        let _ = q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn total_cmp_handles_denormal_times() {
        let mut q = EventQueue::new();
        q.push(0.0, Event::Arrival { job: 0 });
        q.push(-0.0, Event::Arrival { job: 1 });
        // -0.0 < 0.0 under total_cmp: job 1 pops first
        assert!(matches!(q.pop(), Some((_, Event::Arrival { job: 1 }))));
        assert!(matches!(q.pop(), Some((_, Event::Arrival { job: 0 }))));
    }
}
