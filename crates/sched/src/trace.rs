//! Seeded job-arrival traces.
//!
//! A [`TraceGen`] draws a Poisson-like arrival process (exponential
//! interarrival gaps), job widths, and workloads from the evaluated
//! catalog — all from a single SplitMix64 stream, so a trace is a pure
//! function of its seed and parameters and replays byte-identically on
//! any platform.

use serde::{Deserialize, Serialize};
use vap_model::units::Watts;
use vap_workloads::catalog;
use vap_workloads::spec::WorkloadId;

// The canonical SplitMix64 now lives with the scenario engine (which
// needs it without depending on vap-sched); re-exported here so the
// historical `vap_sched::SplitMix64` path keeps working.
pub use vap_scenario::rng::SplitMix64;

/// One job in a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobArrival {
    /// Stable job id (index in arrival order).
    pub id: usize,
    /// Arrival time (simulated seconds).
    pub at_s: f64,
    /// The application.
    pub workload: WorkloadId,
    /// Requested module count.
    pub width: usize,
    /// The narrowest allocation the job accepts (graceful degradation
    /// floor — below this it queues rather than shrinks).
    pub min_width: usize,
    /// Compute work at full speed (α = 1), in simulated seconds.
    pub work_s: f64,
}

/// A scheduled change of the cluster-level power cap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapChange {
    /// When the cap changes (simulated seconds).
    pub at_s: f64,
    /// The new system cap.
    pub cap: Watts,
}

/// A complete input to one runtime replay.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Jobs in arrival order (`at_s` non-decreasing).
    pub jobs: Vec<JobArrival>,
    /// Cap changes in time order.
    pub cap_changes: Vec<CapChange>,
}

impl Trace {
    /// Append a cap change (kept in time order by the caller).
    pub fn with_cap_change(mut self, at_s: f64, cap: Watts) -> Self {
        self.cap_changes.push(CapChange { at_s, cap });
        self
    }
}

/// Seeded trace generator.
#[derive(Debug, Clone)]
pub struct TraceGen {
    /// Number of jobs to generate.
    pub jobs: usize,
    /// Fleet size the widths are drawn against.
    pub fleet: usize,
    /// Mean exponential interarrival gap (seconds).
    pub mean_interarrival_s: f64,
    /// Smallest requested width.
    pub min_width: usize,
    /// Largest requested width.
    pub max_width: usize,
    /// Multiplier on each workload's catalog reference time.
    pub work_scale: f64,
}

impl TraceGen {
    /// Defaults sized for `fleet`: widths between fleet/8 and fleet/3,
    /// paper-scale work, one arrival per minute.
    pub fn new(jobs: usize, fleet: usize) -> Self {
        let min_width = (fleet / 8).max(1);
        TraceGen {
            jobs,
            fleet,
            mean_interarrival_s: 60.0,
            min_width,
            max_width: (fleet / 3).max(min_width),
            work_scale: 1.0,
        }
    }

    /// Generate the trace for `seed`.
    pub fn generate(&self, seed: u64) -> Trace {
        let mut rng = SplitMix64::new(seed);
        let lo = self.min_width.clamp(1, self.fleet.max(1));
        let hi = self.max_width.clamp(lo, self.fleet.max(1));
        let mut t = 0.0;
        let jobs = (0..self.jobs)
            .map(|id| {
                t += rng.next_exp(self.mean_interarrival_s);
                let workload = WorkloadId::EVALUATED[rng.next_index(WorkloadId::EVALUATED.len())];
                let width = lo + rng.next_index(hi - lo + 1);
                let reference = catalog::get(workload).reference_time.value();
                JobArrival {
                    id,
                    at_s: t,
                    workload,
                    width,
                    min_width: (width / 2).max(1),
                    work_s: reference * self.work_scale * rng.next_range(0.5, 1.5),
                }
            })
            .collect();
        Trace { jobs, cap_changes: Vec::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_replay_byte_identically() {
        let gen = TraceGen::new(50, 128);
        let a = gen.generate(2015);
        let b = gen.generate(2015);
        assert_eq!(a, b);
        assert_ne!(a, gen.generate(2016));
    }

    #[test]
    fn trace_shape_respects_parameters() {
        let gen = TraceGen { work_scale: 0.1, ..TraceGen::new(200, 96) };
        let t = gen.generate(42);
        assert_eq!(t.jobs.len(), 200);
        let mut last = 0.0;
        for j in &t.jobs {
            assert!(j.at_s >= last, "arrivals must be time-ordered");
            last = j.at_s;
            assert!(j.width >= gen.min_width && j.width <= gen.max_width);
            assert!(j.min_width >= 1 && j.min_width <= j.width);
            assert!(j.work_s > 0.0);
            assert!(WorkloadId::EVALUATED.contains(&j.workload));
        }
        // the exponential gaps should average near the configured mean
        let mean = last / 200.0;
        assert!((mean - 60.0).abs() < 15.0, "observed mean gap {mean}");
    }

    #[test]
    fn cap_changes_attach() {
        let t = TraceGen::new(1, 8).generate(1).with_cap_change(100.0, Watts(500.0));
        assert_eq!(t.cap_changes.len(), 1);
        assert_eq!(t.cap_changes[0].cap, Watts(500.0));
    }

    #[test]
    fn tiny_fleets_still_generate() {
        let t = TraceGen::new(10, 2).generate(3);
        for j in &t.jobs {
            assert!(j.width >= 1 && j.width <= 2);
        }
    }
}
