//! The watt-provenance conservation invariant, attacked from two sides:
//! a deterministic sweep over every policy combination, and a proptest
//! over random caps, policies and traces. In every replayed state the
//! ledger bins must sum to the applied cluster cap within the ULP-scaled
//! epsilon — conservation is by construction (telescoping), so any
//! violation is an attribution bug, not noise.

use proptest::prelude::*;
use vap_core::pvt::PowerVariationTable;
use vap_model::systems::SystemSpec;
use vap_model::units::Watts;
use vap_obs::LedgerTable;
use vap_sched::{QueueDiscipline, ReallocPolicy, SchedConfig, SchedRuntime, Trace, TraceGen};
use vap_sim::cluster::Cluster;
use vap_sim::scheduler::AllocationPolicy;
use vap_workloads::catalog;
use vap_workloads::spec::WorkloadId;

/// A post-PVT fleet plus its PVT.
fn fleet(n: usize, seed: u64) -> (Cluster, PowerVariationTable) {
    let mut cluster = Cluster::with_size(SystemSpec::ha8k(), n, seed);
    let stream = catalog::get(WorkloadId::Stream);
    let pvt = PowerVariationTable::generate(&mut cluster, &stream, seed);
    (cluster, pvt)
}

/// Replay `trace`, auditing the provenance tick after every event.
/// Returns the accumulated ledger.
fn audit(cluster: &Cluster, pvt: &PowerVariationTable, trace: &Trace, cfg: SchedConfig, seed: u64) -> LedgerTable {
    let mut table = LedgerTable::new();
    let mut last_t = 0.0_f64;
    let rt = SchedRuntime::new(cluster.clone(), pvt.clone(), seed, cfg);
    rt.run_with(trace, |state| {
        let dt = state.now_s() - last_t;
        last_t = state.now_s();
        table.record(state.provenance_tick(dt));
        std::ops::ControlFlow::Continue(())
    });
    table
}

fn assert_conserved(table: &LedgerTable, label: &str) {
    assert!(
        table.violations == 0,
        "{label}: {} conservation violations (worst residual {} W)",
        table.violations,
        table.worst_residual_w
    );
    let [useful, throttle, headroom, _stranded] = table.energy_by_category();
    assert!(useful >= 0.0, "{label}: negative useful energy {useful}");
    assert!(throttle >= 0.0, "{label}: negative throttle energy {throttle}");
    assert!(headroom >= 0.0, "{label}: negative headroom energy {headroom}");
}

#[test]
fn every_policy_combination_conserves_the_cap() {
    let seed = 2015;
    let n = 16;
    let (cluster, pvt) = fleet(n, seed);
    let trace = TraceGen { mean_interarrival_s: 20.0, ..TraceGen::new(8, n) }
        .generate(seed)
        .with_cap_change(120.0, Watts(45.0 * n as f64));
    for realloc in ReallocPolicy::ALL {
        for queue in [QueueDiscipline::Fifo, QueueDiscipline::Backfill] {
            let cfg = SchedConfig {
                allocation: AllocationPolicy::LowestPowerFirst,
                realloc,
                queue,
                cap: Watts(70.0 * n as f64),
            };
            let table = audit(&cluster, &pvt, &trace, cfg, seed);
            assert!(!table.is_empty(), "{realloc}/{queue:?}: no ticks audited");
            assert_conserved(&table, &format!("{realloc}/{queue:?}"));
        }
    }
}

#[test]
fn a_busy_fleet_attributes_useful_watts() {
    let seed = 7;
    let n = 12;
    let (cluster, pvt) = fleet(n, seed);
    let trace = TraceGen::new(6, n).generate(seed);
    let cfg = SchedConfig {
        allocation: AllocationPolicy::Contiguous,
        realloc: ReallocPolicy::UniformRebalance,
        queue: QueueDiscipline::Backfill,
        cap: Watts(95.0 * n as f64),
    };
    let table = audit(&cluster, &pvt, &trace, cfg, seed);
    assert_conserved(&table, "busy fleet");
    let [useful, ..] = table.energy_by_category();
    assert!(useful > 0.0, "running jobs must burn useful watt-seconds");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Random caps, policies, trace shapes and cap changes: the bins
    /// always sum to the applied cap, at every tick of every replay.
    #[test]
    fn conservation_holds_for_random_caps_and_traces(
        seed in 0_u64..1_000,
        n in 8_usize..17,
        jobs in 1_usize..9,
        cap_per_module in 40.0_f64..120.0,
        interarrival in 10.0_f64..90.0,
        realloc_ix in 0_usize..3,
        backfill in any::<bool>(),
        drop_cap in any::<bool>(),
        dropped_per_module in 30.0_f64..80.0,
    ) {
        let (cluster, pvt) = fleet(n, seed);
        let mut trace = TraceGen {
            mean_interarrival_s: interarrival,
            ..TraceGen::new(jobs, n)
        }
        .generate(seed);
        if drop_cap {
            trace = trace.with_cap_change(60.0, Watts(dropped_per_module * n as f64));
        }
        let cfg = SchedConfig {
            allocation: AllocationPolicy::LowestPowerFirst,
            realloc: ReallocPolicy::ALL[realloc_ix],
            queue: if backfill { QueueDiscipline::Backfill } else { QueueDiscipline::Fifo },
            cap: Watts(cap_per_module * n as f64),
        };
        let table = audit(&cluster, &pvt, &trace, cfg, seed);
        prop_assert_eq!(table.violations, 0, "worst residual {} W", table.worst_residual_w);
        let [useful, throttle, headroom, _] = table.energy_by_category();
        prop_assert!(useful >= 0.0 && throttle >= 0.0 && headroom >= 0.0);
    }
}
