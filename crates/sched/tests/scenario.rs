//! Non-stationary replays: scenario events merged into the scheduler's
//! event queue. Determinism with a scenario installed, cap shocks
//! flowing through the cap-change path, failure/replacement churn
//! cycling the pool, and injected drift raising detector alerts that a
//! null scenario does not.

use vap_core::pvt::PowerVariationTable;
use vap_model::systems::SystemSpec;
use vap_model::units::Watts;
use vap_model::variability::DriftSkew;
use vap_scenario::{PerturbationKind, Scenario, ScenarioEvent, ScenarioRuntime};
use vap_sched::{
    JobArrival, JobState, QueueDiscipline, ReallocPolicy, SchedConfig, SchedReport, SchedRuntime,
    Trace, TraceGen,
};
use vap_sim::cluster::Cluster;
use vap_sim::scheduler::AllocationPolicy;
use vap_workloads::catalog;
use vap_workloads::spec::WorkloadId;

const SEED: u64 = 2015;

fn fleet(n: usize) -> (Cluster, PowerVariationTable) {
    let mut cluster = Cluster::with_size(SystemSpec::ha8k(), n, SEED);
    let stream = catalog::get(WorkloadId::Stream);
    let pvt = PowerVariationTable::generate(&mut cluster, &stream, SEED);
    (cluster, pvt)
}

fn config(realloc: ReallocPolicy, cap_per_module_w: f64, n: usize) -> SchedConfig {
    SchedConfig {
        allocation: AllocationPolicy::LowestPowerFirst,
        realloc,
        queue: QueueDiscipline::Backfill,
        cap: Watts(cap_per_module_w * n as f64),
    }
}

fn replay(
    cluster: &Cluster,
    pvt: &PowerVariationTable,
    trace: &Trace,
    cfg: SchedConfig,
    scenario: Option<ScenarioRuntime>,
) -> SchedReport {
    let mut rt = SchedRuntime::new(cluster.clone(), pvt.clone(), SEED, cfg);
    if let Some(sc) = scenario {
        rt = rt.with_scenario(sc);
    }
    rt.run(trace)
}

#[test]
fn scenario_replays_are_deterministic_and_diverge_from_null() {
    let n = 16;
    let (cluster, pvt) = fleet(n);
    let trace = TraceGen { mean_interarrival_s: 20.0, ..TraceGen::new(12, n) }.generate(SEED);
    let sc = || Some(ScenarioRuntime::new(Scenario::Mixed, n, 3600.0, SEED));
    let a = replay(&cluster, &pvt, &trace, config(ReallocPolicy::UniformRebalance, 80.0, n), sc());
    let b = replay(&cluster, &pvt, &trace, config(ReallocPolicy::UniformRebalance, 80.0, n), sc());
    assert_eq!(a, b, "same (trace, scenario, seed) must replay identically");
    let null =
        replay(&cluster, &pvt, &trace, config(ReallocPolicy::UniformRebalance, 80.0, n), None);
    assert_ne!(a, null, "a mixed scenario must perturb the replay");
    for j in &a.jobs {
        assert!(
            matches!(j.state, JobState::Completed | JobState::Killed | JobState::Queued),
            "job {} ended mid-flight: {:?}",
            j.id,
            j.state
        );
    }
}

#[test]
fn module_failure_preempts_and_replacement_recovers() {
    let n = 8;
    let (cluster, pvt) = fleet(n);
    // One fleet-wide job: any module failure must preempt it, and it can
    // only resume once the replacement part rejoins the pool.
    let trace = Trace {
        jobs: vec![JobArrival {
            id: 0,
            at_s: 0.0,
            workload: WorkloadId::Dgemm,
            width: n,
            min_width: n,
            work_s: 400.0,
        }],
        cap_changes: vec![],
    };
    let events = vec![
        ScenarioEvent { at_s: 50.0, seq: 0, kind: PerturbationKind::Fail { module: 2 } },
        ScenarioEvent {
            at_s: 150.0,
            seq: 1,
            kind: PerturbationKind::Replace { module: 2, seed: 99 },
        },
    ];
    let sc = ScenarioRuntime::from_events(events, n, SEED);
    let r = replay(
        &cluster,
        &pvt,
        &trace,
        config(ReallocPolicy::UniformRebalance, 110.0, n),
        Some(sc),
    );
    assert_eq!(r.jobs[0].state, JobState::Completed, "job must finish after the repair");
    assert!(r.preemption_count() >= 1, "the failure must preempt the placed job");
    assert!(
        r.horizon_s > 150.0,
        "completion can only happen after the replacement at t=150, got {}",
        r.horizon_s
    );
}

#[test]
fn cap_shocks_flow_through_the_cap_change_path_and_release() {
    let n = 8;
    let (cluster, pvt) = fleet(n);
    let trace = Trace {
        jobs: vec![JobArrival {
            id: 0,
            at_s: 0.0,
            workload: WorkloadId::Stream,
            width: n,
            min_width: 2,
            work_s: 500.0,
        }],
        cap_changes: vec![],
    };
    let events = vec![
        ScenarioEvent { at_s: 50.0, seq: 0, kind: PerturbationKind::CapShock { scale: 0.4 } },
        ScenarioEvent { at_s: 150.0, seq: 1, kind: PerturbationKind::CapShock { scale: 1.0 } },
    ];
    let base_w = 95.0 * n as f64;
    let cfg = SchedConfig {
        allocation: AllocationPolicy::LowestPowerFirst,
        realloc: ReallocPolicy::Frozen,
        queue: QueueDiscipline::Backfill,
        cap: Watts(base_w),
    };
    let mut min_cap = f64::INFINITY;
    let mut last_cap = 0.0;
    let rt = SchedRuntime::new(cluster.clone(), pvt.clone(), SEED, cfg)
        .with_scenario(ScenarioRuntime::from_events(events, n, SEED));
    let r = rt.run_with(&trace, |rt| {
        min_cap = min_cap.min(rt.cap().value());
        last_cap = rt.cap().value();
        std::ops::ControlFlow::Continue(())
    });
    assert!(
        (min_cap - 0.4 * base_w).abs() < 1e-9,
        "mid-shock cap must be scale × base: {min_cap} vs {}",
        0.4 * base_w
    );
    assert!(
        (last_cap - base_w).abs() < 1e-9,
        "the release must restore the base cap, got {last_cap}"
    );
    // the ledger must respect the shocked cap while it is in force
    for s in r.power.iter().filter(|s| s.at_s >= 50.0 && s.at_s < 150.0) {
        assert!(
            s.allocated_w <= 0.4 * base_w + 1e-6,
            "{} W allocated under a {} W shocked cap at t={}",
            s.allocated_w,
            0.4 * base_w,
            s.at_s
        );
    }
}

#[test]
fn injected_drift_raises_more_alerts_than_the_stationary_replay() {
    let n = 8;
    let (cluster, pvt) = fleet(n);
    // Enough pre-drift events for the detector's per-module warmup.
    let trace = TraceGen { mean_interarrival_s: 20.0, ..TraceGen::new(24, n) }.generate(SEED);
    let run = |scenario: Option<ScenarioRuntime>| {
        let mut rt = SchedRuntime::new(
            cluster.clone(),
            pvt.clone(),
            SEED,
            config(ReallocPolicy::UniformRebalance, 95.0, n),
        );
        if let Some(sc) = scenario {
            rt = rt.with_scenario(sc);
        }
        let mut alerts = 0;
        let mut module0_alerted = false;
        rt.run_with(&trace, |rt| {
            alerts = rt.drift_alerts();
            module0_alerted |= rt.recent_drift_alerts().iter().any(|a| a.module == 0);
            std::ops::ControlFlow::Continue(())
        });
        (alerts, module0_alerted)
    };
    // A stationary replay may see small workload-fingerprint residual
    // steps at admissions; a genuine step drift must alert strictly
    // more, and specifically on the drifted module.
    let (null_alerts, _) = run(None);
    let step = DriftSkew { dynamic: 1.2, leakage: 1.5, dram: 1.05 };
    let events = vec![ScenarioEvent {
        at_s: 600.0,
        seq: 0,
        kind: PerturbationKind::Drift { module: 0, step },
    }];
    let (drift_alerts, module0_alerted) = run(Some(ScenarioRuntime::from_events(events, n, SEED)));
    assert!(
        drift_alerts > null_alerts,
        "injected drift must trip the detector: {drift_alerts} vs {null_alerts} stationary"
    );
    assert!(module0_alerted, "the alert must land on the drifted module");
}
