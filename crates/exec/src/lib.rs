//! Deterministic parallel execution for fleet sweeps and campaign grids.
//!
//! The paper's experiments are embarrassingly parallel twice over: the
//! once-per-system PVT sweep visits every module independently (§5), and
//! the evaluation campaign walks independent workload × Cm × scheme cells
//! (§6). This crate fans that work over OS threads while keeping one hard
//! promise: **the result is a pure function of the inputs, never of the
//! thread count or scheduling order**.
//!
//! The contract that makes this work:
//!
//! 1. every work item receives an *index* and derives all randomness from
//!    a per-item seed ([`module_seed`]) or from cell-local state cloned
//!    from a pristine template — never from shared mutable state;
//! 2. results land in pre-allocated per-index slots and are reduced in
//!    index order, so the output vector is identical whether one thread
//!    or sixteen executed the items.
//!
//! `threads = 1` short-circuits to a plain serial loop over the *same*
//! closure, so serial and parallel runs share one code path and are
//! bit-for-bit identical by construction — the property the workspace
//! `determinism` lint (PR 1) promises and `tests/determinism.rs` checks.
//!
//! # Observability
//!
//! When a `vap_obs` session is live on the calling thread, every fan-out
//! registers a grid and brackets each item with
//! [`vap_obs::SessionRef::run_item`]: metrics recorded inside the item
//! accumulate into its `(grid, index)` cell, and the item's wall time
//! lands on the worker's timeline lane. The serial short-circuit runs
//! through the identical bracket (on lane 0), so the deterministic
//! journal is byte-identical at any thread count. With no session the
//! only cost is one relaxed atomic load per fan-out.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use vap_sim::cluster::Cluster;
use vap_sim::module::SimModule;

/// Number of hardware threads available, with a serial fallback when the
/// platform cannot say.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Resolve a user-facing thread request: `None` means "use the hardware",
/// `Some(0)` is treated as `Some(1)` (serial), anything else is taken
/// as-is.
pub fn resolve_threads(requested: Option<usize>) -> usize {
    match requested {
        None => available_parallelism(),
        Some(n) => n.max(1),
    }
}

/// Map `f` over `items` on up to `threads` OS threads, returning results
/// in item order.
///
/// `f(i, &items[i])` must be a pure function of its arguments (plus any
/// captured *shared immutable* state). Items are claimed from an atomic
/// counter, so thread scheduling decides only *who* computes an item,
/// never *what* is computed or *where* the result lands. With
/// `threads <= 1` the items run serially through the identical closure.
pub fn par_map<I, T, F>(items: &[I], threads: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    par_map_kind(items, threads, "item", f)
}

/// [`par_map`] with an observability item kind (`"item"`, `"cell"`,
/// `"module"`) — the label under which the fan-out's grid and cells
/// appear in a `vap_obs` journal.
fn par_map_kind<I, T, F>(items: &[I], threads: usize, kind: &'static str, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    // Capture the driver thread's session (if any) before fanning out;
    // worker threads have no session of their own.
    let obs = vap_obs::grid_session().map(|s| {
        let grid = s.begin_grid(kind, items.len());
        (s, grid)
    });

    if threads == 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| match &obs {
                Some((s, grid)) => s.run_item(*grid, kind, i, 0, || f(i, item)),
                None => f(i, item),
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    // Mutex<Option<T>> rather than OnceLock<T>: sharing &OnceLock<T>
    // across workers demands T: Sync, while a Mutex slot only needs
    // T: Send. Each index is claimed exactly once, so every lock is
    // uncontended.
    let slots: Vec<Mutex<Option<T>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..threads {
            let (next, slots, f, obs) = (&next, &slots, &f, &obs);
            scope.spawn(move || {
                let lane = (w + 1) as u32;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let out = match obs {
                        Some((s, grid)) => s.run_item(*grid, kind, i, lane, || f(i, &items[i])),
                        None => f(i, &items[i]),
                    };
                    if let Ok(mut slot) = slots[i].lock() {
                        *slot = Some(out);
                    }
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            let slot = slot.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
            // vap:allow(no-panic-in-lib): every index in [0, len) is claimed
            // exactly once by the atomic counter, no worker holds a lock
            // across a panic, and a worker panic would already have
            // propagated out of the scope above.
            slot.expect("every work item produced a result")
        })
        .collect()
}

/// Fan `f` over the cells of a campaign grid (workload × Cm × scheme, or
/// any other enumeration of independent experiment cells), collecting
/// results in deterministic cell order.
///
/// Each cell must build its own state — typically by cloning a pristine
/// template fleet — from the same `(seed, cell)` derivation the serial
/// code uses, so a 1-thread and an N-thread run are bit-for-bit
/// identical.
pub fn par_grid<C, T, F>(cells: &[C], threads: usize, f: F) -> Vec<T>
where
    C: Sync,
    T: Send,
    F: Fn(&C) -> T + Sync,
{
    par_map_kind(cells, threads, "cell", |_, cell| f(cell))
}

/// Derive a per-module seed from a campaign seed and a module index.
///
/// SplitMix64 finalization over `seed ⊕ (id · φ64)`: statistically
/// independent streams per module, stable across thread counts and
/// platforms.
pub fn module_seed(seed: u64, module_id: usize) -> u64 {
    let mut z = seed ^ (module_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fan a read-only closure over a cluster's modules with per-module
/// seeds, reducing in module-index order.
///
/// This is the shape of the once-per-system PVT sweep: each module is
/// measured independently (the paper runs them "simultaneously on all
/// modules", §5), and the table is assembled in module order. The
/// closure receives a `&SimModule` snapshot reference — clone it if the
/// measurement needs to advance module state.
pub fn par_map_modules<T, F>(cluster: &Cluster, seed: u64, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&SimModule, u64) -> T + Sync,
{
    par_map_kind(cluster.modules(), threads, "module", |i, m| f(m, module_seed(seed, i)))
}

/// [`par_map_modules`] for a struct-of-arrays fleet: fan a read-only
/// closure over `n` module indices with per-module seeds, reducing in
/// module-index order.
///
/// The closure receives `(module_index, module_seed)` and typically reads
/// a captured `&FleetState` column set. The fan-out registers the same
/// `"module"` grid of length `n` as [`par_map_modules`], so a journal
/// recorded over the columnar path is byte-identical to one recorded over
/// the array-of-structs path for the same sweep. The work items are
/// zero-sized (`n` is the only input), so the fan-out itself allocates
/// nothing per module beyond the result slots.
pub fn par_map_fleet<T, F>(n: usize, seed: u64, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, u64) -> T + Sync,
{
    let units = vec![(); n];
    par_map_kind(&units, threads, "module", |i, ()| f(i, module_seed(seed, i)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vap_model::power::PowerActivity;
    use vap_model::systems::SystemSpec;

    #[test]
    fn par_map_preserves_item_order() {
        let items: Vec<usize> = (0..97).collect();
        let out = par_map(&items, 4, |i, &x| {
            assert_eq!(i, x);
            x * 3
        });
        assert_eq!(out, (0..97).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree_exactly() {
        let items: Vec<u64> = (0..64).collect();
        let f = |_: usize, &x: &u64| module_seed(x, 17) as f64 / u64::MAX as f64;
        let serial = par_map(&items, 1, f);
        for threads in [2, 3, 8, 64] {
            let parallel = par_map(&items, threads, f);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(par_map(&[5u32], 8, |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn par_grid_matches_serial_enumeration() {
        let cells: Vec<(usize, usize)> =
            (0..6).flat_map(|w| (0..7).map(move |c| (w, c))).collect();
        let serial = par_grid(&cells, 1, |&(w, c)| w * 100 + c);
        let parallel = par_grid(&cells, 5, |&(w, c)| w * 100 + c);
        assert_eq!(serial, parallel);
        assert_eq!(serial[0], 0);
        assert_eq!(serial[41], 506);
    }

    #[test]
    fn module_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..1000).map(|i| module_seed(42, i)).collect();
        let unique: std::collections::BTreeSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len(), "per-module seeds must not collide");
        // stable across calls (and, by construction, across platforms)
        assert_eq!(module_seed(42, 7), module_seed(42, 7));
        assert_ne!(module_seed(42, 7), module_seed(43, 7));
    }

    #[test]
    fn par_map_modules_is_thread_count_invariant() {
        let mut cluster = Cluster::with_size(SystemSpec::ha8k(), 32, 9);
        for m in cluster.modules_mut() {
            m.set_activity(PowerActivity { cpu: 1.0, dram: 0.25 });
        }
        let measure = |m: &SimModule, seed: u64| {
            (m.module_power().value(), seed)
        };
        let serial = par_map_modules(&cluster, 5, 1, measure);
        let parallel = par_map_modules(&cluster, 5, 4, measure);
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 32);
    }

    #[test]
    fn fleet_fanout_matches_module_fanout_results_and_journal() {
        let cluster = Cluster::with_size(SystemSpec::ha8k(), 16, 3);
        let sweep_modules = || {
            let session = vap_obs::Session::install();
            let out = par_map_modules(&cluster, 7, 3, |m, seed| {
                vap_obs::incr("test.sweep");
                (m.id, seed)
            });
            (out, session.finish().journal_jsonl)
        };
        let sweep_fleet = || {
            let session = vap_obs::Session::install();
            let out = par_map_fleet(cluster.len(), 7, 3, |i, seed| {
                vap_obs::incr("test.sweep");
                (i, seed)
            });
            (out, session.finish().journal_jsonl)
        };
        let (a, ja) = sweep_modules();
        let (b, jb) = sweep_fleet();
        assert_eq!(a, b, "same indices, same per-module seeds");
        assert_eq!(ja, jb, "same grid kind, length and cells — byte-identical journal");
    }

    #[test]
    fn resolve_threads_contract() {
        assert_eq!(resolve_threads(Some(1)), 1);
        assert_eq!(resolve_threads(Some(0)), 1, "0 means serial, not 'no threads'");
        assert_eq!(resolve_threads(Some(6)), 6);
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn observed_fanouts_record_cells_per_item() {
        let session = vap_obs::Session::install();
        let items: Vec<u32> = (0..5).collect();
        let out = par_map(&items, 3, |_, &x| {
            vap_obs::incr("test.work");
            x * 2
        });
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
        let report = session.finish();
        assert!(report.journal_jsonl.contains("\"exec.items\":5"));
        assert!(report.journal_jsonl.contains("\"test.work\":5"));
    }

    #[test]
    fn observed_journal_is_thread_count_invariant() {
        let journal = |threads: usize| {
            let session = vap_obs::Session::install();
            let items: Vec<u64> = (0..40).collect();
            let _ = par_map(&items, threads, |i, &x| {
                vap_obs::incr("test.items");
                vap_obs::observe("test.values", (x * 3) as f64);
                vap_obs::label_item(|| format!("item-{i}"));
                x
            });
            session.finish().journal_jsonl
        };
        let serial = journal(1);
        for threads in [2, 4, 8] {
            assert_eq!(serial, journal(threads), "journal differs at threads = {threads}");
        }
    }
}
