//! The session recorder: TLS-scoped, thread-aware, zero-cost when off.
//!
//! # Architecture
//!
//! * A [`Session`] is installed on the driver thread (by `run_main` when
//!   `--metrics`/`--trace-out` is given, or by a test). Installation is
//!   **thread-local**: concurrent sessions on other threads — `cargo
//!   test` runs tests in parallel in one process — never cross-talk.
//! * `vap-exec` captures the installing thread's [`SessionRef`] before
//!   spawning workers and brackets every work item with
//!   [`SessionRef::run_item`], which gives the worker an *item context*:
//!   a thread-local [`Metrics`] buffer plus the item's `(grid, index)`
//!   identity and worker lane.
//! * Instrumentation sites ([`incr`], [`observe`], [`label_item`]) write
//!   into the item buffer lock-free; the buffer is committed into the
//!   session's per-cell record when the item completes. Outside an item
//!   the calls fall through to the session's direct registry.
//!
//! # Determinism contract
//!
//! The deterministic journal is a pure function of the work executed:
//! cell records are keyed `(grid, index)` where grid ids are assigned in
//! driver-thread call order and indices are the item indices `par_map`
//! already guarantees; counter/histogram merges are commutative. Thread
//! scheduling decides only *which lane* wall-clock spans land on — and
//! spans live exclusively in the Chrome-trace side channel, never in the
//! journal.
//!
//! # Cost when disabled
//!
//! Every public entry point first reads one relaxed atomic ([`enabled`]).
//! With no live session in the process that load is the entire cost: no
//! TLS access, no allocation (covered by `tests/no_alloc.rs`).

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use crate::decision::DecisionRecord;
use crate::export::ObsReport;
use crate::ledger::{LedgerTable, LedgerTick};
use crate::metrics::Metrics;
use crate::scenario::ScenarioRecord;

/// Number of live sessions in the process — the fast-path gate.
// vap:allow(shared-state-in-par): deliberately process-wide; a relaxed counter is race-safe and never feeds results
static LIVE: AtomicUsize = AtomicUsize::new(0);

/// Number of live sessions with the watt-provenance ledger armed. A
/// separate gate from [`LIVE`] so `--metrics` runs don't pay ledger
/// construction, and the ledger-off hot path stays one relaxed load
/// (asserted by `crates/bench/tests/alloc_regression.rs`).
// vap:allow(shared-state-in-par): deliberately process-wide; a relaxed counter is race-safe and never feeds results
static LEDGER: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// The session installed on (or propagated to) this thread.
    // vap:allow(shared-state-in-par): thread-local by construction; propagation into workers is explicit
    static CURRENT: RefCell<Option<SessionRef>> = const { RefCell::new(None) };
    /// The work item this thread is currently executing, if any.
    // vap:allow(shared-state-in-par): thread-local by construction; never shared across workers
    static ITEM: RefCell<Option<ItemCtx>> = const { RefCell::new(None) };
}

/// Whether any session is live in the process (one relaxed atomic load).
#[inline]
pub fn enabled() -> bool {
    LIVE.load(Ordering::Relaxed) != 0
}

/// Whether any ledger-armed session is live (one relaxed atomic load).
#[inline]
pub fn ledger_enabled() -> bool {
    LEDGER.load(Ordering::Relaxed) != 0
}

/// One grid registered by a `par_map`/`par_grid`/`par_map_modules` call.
#[derive(Debug, Clone)]
pub(crate) struct GridRecord {
    /// Item kind: `"item"`, `"cell"` or `"module"`.
    pub kind: &'static str,
    /// Number of items in the grid.
    pub items: u64,
}

/// Deterministic per-item record: what one work item counted.
#[derive(Debug, Clone)]
pub(crate) struct CellRecord {
    /// Item kind (same vocabulary as [`GridRecord::kind`]).
    pub kind: &'static str,
    /// Human label set via [`label_item`] (e.g. `dgemm@110W`).
    pub label: Option<String>,
    /// Metrics recorded while the item ran.
    pub metrics: Metrics,
    /// Watt-provenance ledger recorded while the item ran.
    pub ledger: LedgerTable,
    /// Scheduler decisions recorded while the item ran, in record order.
    pub decisions: Vec<DecisionRecord>,
    /// Scenario perturbations applied while the item ran, in record
    /// order.
    pub scenarios: Vec<ScenarioRecord>,
}

/// Wall-clock span for the Chrome-trace side channel.
#[derive(Debug, Clone)]
pub(crate) struct SpanRecord {
    /// Span name (item label, or phase name for driver spans).
    pub name: String,
    /// Trace category (`"phase"` for driver spans, item kind otherwise).
    pub cat: &'static str,
    /// Timeline lane: 0 = driver, `w + 1` = worker slot `w`.
    pub lane: u32,
    /// Microseconds since session install.
    pub ts_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
}

#[derive(Debug, Default)]
pub(crate) struct Inner {
    /// Metrics recorded outside any item (driver-thread bookkeeping).
    pub direct: Metrics,
    /// Per-item records, keyed `(grid id, item index)`.
    pub cells: std::collections::BTreeMap<(u64, u64), CellRecord>,
    /// Registered grids, in driver call order (the vec index is the id).
    pub grids: Vec<GridRecord>,
    /// Wall-clock spans (side channel — excluded from the journal).
    pub spans: Vec<SpanRecord>,
    /// Ledger ticks recorded outside any item (driver-thread runs).
    pub ledger: LedgerTable,
    /// Decisions recorded outside any item, in record order.
    pub decisions: Vec<DecisionRecord>,
    /// Scenario perturbations recorded outside any item, in record
    /// order.
    pub scenarios: Vec<ScenarioRecord>,
}

#[derive(Debug)]
pub(crate) struct Shared {
    /// Wall-clock zero of the trace timeline.
    pub epoch: Instant,
    /// Whether this session records the watt-provenance ledger. The
    /// global [`LEDGER`] count is only the fast gate; the per-session
    /// bit keeps concurrent sessions (parallel tests in one process)
    /// from arming each other.
    pub ledger: bool,
    pub inner: Mutex<Inner>,
}

/// A cheap, cloneable handle to a live session.
#[derive(Debug, Clone)]
pub struct SessionRef(Arc<Shared>);

/// A thread's in-flight work item.
struct ItemCtx {
    session: SessionRef,
    grid: u64,
    kind: &'static str,
    index: u64,
    lane: u32,
    label: Option<String>,
    metrics: Metrics,
    ledger: LedgerTable,
    decisions: Vec<DecisionRecord>,
    scenarios: Vec<ScenarioRecord>,
    start: Instant,
}

fn lock(shared: &Shared) -> MutexGuard<'_, Inner> {
    // A poisoned lock means a worker panicked mid-item; the partial data
    // is still worth exporting for the post-mortem.
    shared.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl SessionRef {
    /// Register a fan-out of `items` work items of `kind`, returning the
    /// grid id. Must be called from outside any item (grid ids are
    /// deterministic because drivers register grids in program order).
    pub fn begin_grid(&self, kind: &'static str, items: usize) -> u64 {
        let mut inner = lock(&self.0);
        let id = inner.grids.len() as u64;
        inner.grids.push(GridRecord { kind, items: items as u64 });
        id
    }

    /// Execute one work item under this session: metrics recorded inside
    /// `f` accumulate into the `(grid, index)` cell, and the item's wall
    /// time lands on timeline lane `lane`.
    pub fn run_item<T>(
        &self,
        grid: u64,
        kind: &'static str,
        index: usize,
        lane: u32,
        f: impl FnOnce() -> T,
    ) -> T {
        let ctx = ItemCtx {
            session: self.clone(),
            grid,
            kind,
            index: index as u64,
            lane,
            label: None,
            metrics: Metrics::new(),
            ledger: LedgerTable::new(),
            decisions: Vec::new(),
            scenarios: Vec::new(),
            start: Instant::now(),
        };
        // Stack the previous item (nested instrumented grids on the same
        // thread) and propagate the session to this thread so code inside
        // the item sees it as current.
        let prev_item = ITEM.with(|slot| slot.borrow_mut().replace(ctx));
        let prev_current = CURRENT.with(|slot| slot.borrow_mut().replace(self.clone()));
        let out = f();
        CURRENT.with(|slot| *slot.borrow_mut() = prev_current);
        let ctx = ITEM.with(|slot| {
            let mut slot = slot.borrow_mut();
            let ctx = slot.take();
            *slot = prev_item;
            ctx
        });
        if let Some(ctx) = ctx {
            self.commit(ctx);
        }
        out
    }

    fn commit(&self, ctx: ItemCtx) {
        let dur = ctx.start.elapsed();
        let ts = ctx.start.duration_since(self.0.epoch);
        let name = match &ctx.label {
            Some(l) => l.clone(),
            None => format!("{}[{}]", ctx.kind, ctx.index),
        };
        let mut inner = lock(&self.0);
        inner.spans.push(SpanRecord {
            name,
            cat: ctx.kind,
            lane: ctx.lane,
            ts_us: ts.as_micros() as u64,
            dur_us: dur.as_micros() as u64,
        });
        let items_counter = match ctx.kind {
            "cell" => "exec.cells",
            "module" => "exec.modules",
            _ => "exec.items",
        };
        inner.direct.incr_by(items_counter, 1);
        let cell = inner.cells.entry((ctx.grid, ctx.index)).or_insert_with(|| CellRecord {
            kind: ctx.kind,
            label: None,
            metrics: Metrics::new(),
            ledger: LedgerTable::new(),
            decisions: Vec::new(),
            scenarios: Vec::new(),
        });
        if ctx.label.is_some() {
            cell.label = ctx.label;
        }
        cell.metrics.merge(&ctx.metrics);
        cell.ledger.merge(&ctx.ledger);
        cell.decisions.extend(ctx.decisions);
        cell.scenarios.extend(ctx.scenarios);
    }

    pub(crate) fn record_span(&self, span: SpanRecord) {
        lock(&self.0).spans.push(span);
    }

    pub(crate) fn epoch(&self) -> Instant {
        self.0.epoch
    }

    fn record_direct(&self, f: impl FnOnce(&mut Metrics)) {
        f(&mut lock(&self.0).direct);
    }
}

/// The session the calling thread should hand to a *new* fan-out: its
/// current session, unless the thread is already inside a work item — a
/// nested grid's workers would register grids in racy order, so nested
/// parallelism runs unobserved (its metrics still accumulate into the
/// enclosing item via the item context).
pub fn grid_session() -> Option<SessionRef> {
    if !enabled() {
        return None;
    }
    let inside_item = ITEM.with(|slot| slot.borrow().is_some());
    if inside_item {
        return None;
    }
    CURRENT.with(|slot| slot.borrow().clone())
}

/// The session current on this thread, if any.
pub(crate) fn current_session() -> Option<SessionRef> {
    if !enabled() {
        return None;
    }
    CURRENT.with(|slot| slot.borrow().clone())
}

/// `(session, lane)` a wall-clock span on this thread should target.
pub(crate) fn span_target() -> Option<(SessionRef, u32)> {
    if !enabled() {
        return None;
    }
    let from_item =
        ITEM.with(|slot| slot.borrow().as_ref().map(|c| (c.session.clone(), c.lane)));
    if from_item.is_some() {
        return from_item;
    }
    CURRENT.with(|slot| slot.borrow().as_ref().map(|s| (s.clone(), 0)))
}

/// Add 1 to counter `name` in the current scope (item if inside one,
/// session otherwise; no-op without a session).
#[inline]
pub fn incr(name: &'static str) {
    incr_by(name, 1);
}

/// Add `by` to counter `name` in the current scope.
#[inline]
pub fn incr_by(name: &'static str, by: u64) {
    if !enabled() {
        return;
    }
    let buffered = ITEM.with(|slot| {
        if let Some(ctx) = slot.borrow_mut().as_mut() {
            ctx.metrics.incr_by(name, by);
            true
        } else {
            false
        }
    });
    if buffered {
        return;
    }
    if let Some(s) = current_session() {
        s.record_direct(|m| m.incr_by(name, by));
    }
}

/// Record `v` into histogram `name` in the current scope.
#[inline]
pub fn observe(name: &'static str, v: f64) {
    if !enabled() {
        return;
    }
    let buffered = ITEM.with(|slot| {
        if let Some(ctx) = slot.borrow_mut().as_mut() {
            ctx.metrics.observe(name, v);
            true
        } else {
            false
        }
    });
    if buffered {
        return;
    }
    if let Some(s) = current_session() {
        s.record_direct(|m| m.observe(name, v));
    }
}

/// Record one watt-provenance ledger tick in the current scope. The
/// closure builds the tick only when the scope's session is ledger-armed
/// ([`Session::install_with_ledger`]); with no armed session in the
/// process the entire cost is one relaxed atomic load — the closure
/// never runs, so producers can allocate entry vectors inside it freely.
#[inline]
pub fn ledger_tick(f: impl FnOnce() -> LedgerTick) {
    if !ledger_enabled() {
        return;
    }
    // Resolve the scope (and its armed bit) *before* building the tick:
    // a plain session sharing the process with an armed one must not pay.
    let item_armed = ITEM.with(|slot| slot.borrow().as_ref().map(|c| c.session.0.ledger));
    match item_armed {
        Some(true) => {
            let tick = f();
            ITEM.with(|slot| {
                if let Some(ctx) = slot.borrow_mut().as_mut() {
                    ctx.ledger.record(tick);
                }
            });
        }
        Some(false) => {}
        None => {
            if let Some(s) = current_session() {
                if s.0.ledger {
                    let tick = f();
                    lock(&s.0).ledger.record(tick);
                }
            }
        }
    }
}

/// Record one scheduler decision in the current scope. Gated on
/// [`enabled`] (decisions ride with `--metrics`/`--trace-out`, no
/// separate flag): when no session is live the closure never runs.
#[inline]
pub fn decision(f: impl FnOnce() -> DecisionRecord) {
    if !enabled() {
        return;
    }
    let mut rec = Some(f());
    let buffered = ITEM.with(|slot| {
        if let Some(ctx) = slot.borrow_mut().as_mut() {
            if let Some(r) = rec.take() {
                ctx.decisions.push(r);
            }
            true
        } else {
            false
        }
    });
    if buffered {
        return;
    }
    if let (Some(s), Some(r)) = (current_session(), rec.take()) {
        lock(&s.0).decisions.push(r);
    }
}

/// Record one applied scenario perturbation in the current scope. Gated
/// on [`enabled`] like [`decision`]: when no session is live the closure
/// never runs, so producers pay one relaxed atomic load.
#[inline]
pub fn scenario_event(f: impl FnOnce() -> ScenarioRecord) {
    if !enabled() {
        return;
    }
    let mut rec = Some(f());
    let buffered = ITEM.with(|slot| {
        if let Some(ctx) = slot.borrow_mut().as_mut() {
            if let Some(r) = rec.take() {
                ctx.scenarios.push(r);
            }
            true
        } else {
            false
        }
    });
    if buffered {
        return;
    }
    if let (Some(s), Some(r)) = (current_session(), rec.take()) {
        lock(&s.0).scenarios.push(r);
    }
}

/// Label the current work item (e.g. `dgemm@110W`). The closure only
/// runs when a session is live and the thread is inside an item, so the
/// format cost is never paid on unobserved runs.
pub fn label_item(f: impl FnOnce() -> String) {
    if !enabled() {
        return;
    }
    ITEM.with(|slot| {
        if let Some(ctx) = slot.borrow_mut().as_mut() {
            ctx.label = Some(f());
        }
    });
}

/// A live recording session (RAII).
///
/// Installing makes the calling thread's `vap-exec` fan-outs and
/// instrumentation calls record into this session; dropping or
/// [`Session::finish`]ing uninstalls it.
#[derive(Debug)]
pub struct Session {
    shared: Option<SessionRef>,
    prev: Option<SessionRef>,
    ledger: bool,
}

impl Session {
    /// Install a new session on the calling thread.
    pub fn install() -> Session {
        Session::install_inner(false)
    }

    /// Install a new session with the watt-provenance ledger armed:
    /// [`ledger_tick`] calls record (and pay) only under such a session.
    pub fn install_with_ledger() -> Session {
        Session::install_inner(true)
    }

    fn install_inner(ledger: bool) -> Session {
        let shared = SessionRef(Arc::new(Shared {
            epoch: Instant::now(),
            ledger,
            inner: Mutex::new(Inner::default()),
        }));
        let prev = CURRENT.with(|slot| slot.borrow_mut().replace(shared.clone()));
        LIVE.fetch_add(1, Ordering::Relaxed);
        if ledger {
            LEDGER.fetch_add(1, Ordering::Relaxed);
        }
        Session { shared: Some(shared), prev, ledger }
    }

    /// A handle other threads (or nested scopes) can record through.
    pub fn handle(&self) -> Option<SessionRef> {
        self.shared.clone()
    }

    fn uninstall(&mut self) -> Option<SessionRef> {
        let shared = self.shared.take()?;
        CURRENT.with(|slot| *slot.borrow_mut() = self.prev.take());
        if self.ledger {
            LEDGER.fetch_sub(1, Ordering::Relaxed);
        }
        LIVE.fetch_sub(1, Ordering::Relaxed);
        Some(shared)
    }

    /// Uninstall and export everything recorded.
    pub fn finish(mut self) -> ObsReport {
        match self.uninstall() {
            Some(shared) => crate::export::build_report(&lock(&shared.0)),
            // uninstall can only miss if finish ran after a manual drop,
            // which the ownership model prevents; report empty data.
            None => crate::export::build_report(&Inner::default()),
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        let _ = self.uninstall();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_session_means_noop() {
        incr("orphan");
        observe("orphan.h", 1.0);
        label_item(|| panic!("label closure must not run outside an item"));
        assert!(grid_session().is_none() || enabled(), "no session on this thread");
    }

    #[test]
    fn direct_metrics_land_in_the_session() {
        let s = Session::install();
        incr("a");
        incr_by("a", 2);
        observe("h", 2.5);
        let report = s.finish();
        assert!(report.journal_jsonl.contains("\"a\":3"));
        assert!(report.journal_jsonl.contains("\"h\""));
    }

    #[test]
    fn run_item_routes_metrics_to_cells() {
        let s = Session::install();
        let r = s.handle().expect("live session");
        let grid = r.begin_grid("cell", 2);
        for i in 0..2usize {
            r.run_item(grid, "cell", i, 1, || {
                label_item(|| format!("cell-{i}"));
                incr("work");
                observe("w.h", i as f64);
            });
        }
        let report = s.finish();
        assert!(report.journal_jsonl.contains("cell-0"));
        assert!(report.journal_jsonl.contains("cell-1"));
        assert!(report.journal_jsonl.contains("\"exec.cells\":2"));
    }

    #[test]
    fn sessions_are_thread_scoped() {
        let _s = Session::install();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                assert!(grid_session().is_none(), "other threads see no session");
            });
        });
        assert!(grid_session().is_some());
    }

    #[test]
    fn dropping_uninstalls() {
        {
            let _s = Session::install();
            assert!(grid_session().is_some());
        }
        assert!(grid_session().is_none());
    }

    #[test]
    fn nested_fanout_is_unobserved_but_counted_in_parent() {
        let s = Session::install();
        let r = s.handle().expect("live session");
        let grid = r.begin_grid("cell", 1);
        r.run_item(grid, "cell", 0, 1, || {
            assert!(grid_session().is_none(), "no nested grids inside an item");
            incr("inner.work");
        });
        let report = s.finish();
        assert!(report.journal_jsonl.contains("\"inner.work\":1"));
    }
}
