//! Schema validator for vap-obs artifacts (the CI smoke check).
//!
//! ```text
//! obs-check <journal.jsonl> [trace.json] [metrics.csv]
//! ```
//!
//! Each artifact is parsed into the `vap_obs::export` schema types and —
//! for the journal — re-serialized and compared byte-for-byte (serde
//! round-trip). Exit code 0 on success, 1 on validation failure, 2 on
//! usage/IO errors.

use vap_obs::{validate_journal, validate_metrics_csv, validate_trace};

fn read(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("obs-check: cannot read {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.len() > 3 {
        eprintln!("usage: obs-check <journal.jsonl> [trace.json] [metrics.csv]");
        std::process::exit(2);
    }

    let journal = read(&args[0]);
    match validate_journal(&journal) {
        Ok(stats) => println!(
            "{}: OK ({} lines, {} grids, {} cells)",
            args[0], stats.lines, stats.grids, stats.cells
        ),
        Err(e) => {
            eprintln!("obs-check: {}: {e}", args[0]);
            std::process::exit(1);
        }
    }

    if let Some(path) = args.get(1) {
        match validate_trace(&read(path)) {
            Ok(events) => println!("{path}: OK ({events} events)"),
            Err(e) => {
                eprintln!("obs-check: {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = args.get(2) {
        match validate_metrics_csv(&read(path)) {
            Ok(rows) => println!("{path}: OK ({rows} rows)"),
            Err(e) => {
                eprintln!("obs-check: {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
