//! Schema validator for vap-obs artifacts (the CI smoke check).
//!
//! ```text
//! obs-check <artifact>...
//! ```
//!
//! Any number of artifacts, classified by extension: `.jsonl` files are
//! validated as event journals (parsed into the `vap_obs::export` schema,
//! re-serialized, and compared byte-for-byte — a serde round-trip,
//! including ledger, decision, and scenario records, the latter with
//! monotonic event times and in-range module ids), files named `ledger.csv` as
//! watt-provenance ledgers (per-tick conservation is re-checked from the
//! raw rows), other `.json` files as Chrome trace-event timelines, and
//! other `.csv` files as metrics tables. Exit code 0 on success, 1 on
//! validation failure, 2 on usage/IO errors.

use vap_obs::{validate_journal, validate_ledger_csv, validate_metrics_csv, validate_trace};

fn read(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("obs-check: cannot read {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: obs-check <artifact.jsonl|artifact.json|artifact.csv>...");
        std::process::exit(2);
    }

    for path in &args {
        if path.ends_with(".jsonl") {
            match validate_journal(&read(path)) {
                Ok(stats) => println!(
                    "{path}: OK ({} lines, {} grids, {} cells, {} scenario events)",
                    stats.lines, stats.grids, stats.cells, stats.scenarios
                ),
                Err(e) => {
                    eprintln!("obs-check: {path}: {e}");
                    std::process::exit(1);
                }
            }
        } else if path.ends_with(".json") {
            match validate_trace(&read(path)) {
                Ok(events) => println!("{path}: OK ({events} events)"),
                Err(e) => {
                    eprintln!("obs-check: {path}: {e}");
                    std::process::exit(1);
                }
            }
        } else if path.ends_with("ledger.csv") {
            match validate_ledger_csv(&read(path)) {
                Ok(stats) => println!(
                    "{path}: OK ({} tick rows, {} bin rows, conservation holds)",
                    stats.tick_rows, stats.bin_rows
                ),
                Err(e) => {
                    eprintln!("obs-check: {path}: {e}");
                    std::process::exit(1);
                }
            }
        } else if path.ends_with(".csv") {
            match validate_metrics_csv(&read(path)) {
                Ok(rows) => println!("{path}: OK ({rows} rows)"),
                Err(e) => {
                    eprintln!("obs-check: {path}: {e}");
                    std::process::exit(1);
                }
            }
        } else {
            eprintln!("obs-check: {path}: unrecognized extension (expect .jsonl/.json/.csv)");
            std::process::exit(2);
        }
    }
}
