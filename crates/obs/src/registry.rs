//! The lock-free snapshot registry: one writer, many wait-free readers.
//!
//! The daemon's deterministic sim loop publishes epoch-stamped
//! [`TelemetrySnapshot`]s; thousands of concurrent scrapers read the
//! latest one. Two requirements drive the design:
//!
//! 1. **Readers never block and never perturb the writer.** A reader is
//!    two sequentially-consistent atomic RMWs around a pointer load and a
//!    clone — no mutex, no syscall, no allocation shared with the writer.
//! 2. **The writer never waits on readers.** Publishing is an
//!    `AtomicPtr::swap` (arc-swap style); the displaced snapshot goes on
//!    a retired list and is freed on a later publish that observes a
//!    quiescent instant (`readers == 0`), so a stalled scraper can delay
//!    reclamation but can never delay the sim tick.
//!
//! The seqlock-checked epoch ([`SnapshotRegistry::epoch`]) plus the
//! per-snapshot checksum ([`TelemetrySnapshot::verify`]) let tests prove
//! the absence of torn reads under arbitrary interleavings
//! (`tests/registry_props.rs`).
//!
//! # Why the reclamation is sound
//!
//! All registry atomics use `SeqCst`, so every increment, load and swap
//! lands in one total order. A reader increments `readers` **before**
//! loading the pointer and decrements **after** its last use of the
//! pointee. The writer frees retired pointers only after observing
//! `readers == 0` *after* the swap that retired them. In the total order,
//! a reader holding a retired pointer must have incremented before that
//! observation and not yet decremented — contradicting `readers == 0`.
//! A reader that increments after the observation loads the *current*
//! pointer, which is never on the retired list (a swap retires only the
//! displaced pointer, and pointers are never re-published).

// The one sanctioned unsafe island in vap-obs: the registry's
// pointer-swap publication scheme cannot be expressed in safe Rust
// without a lock on the read side.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::snapshot::TelemetrySnapshot;

/// An owned snapshot allocation awaiting a quiescent instant to be freed.
#[derive(Debug)]
struct Retired(*mut TelemetrySnapshot);

// SAFETY: a `Retired` pointer is the sole handle to a `Box` allocation
// displaced from `current`; sending it between threads transfers that
// ownership. Nothing aliases it except readers covered by the quiescence
// protocol documented on the module.
unsafe impl Send for Retired {}

/// A single-writer / many-reader registry holding the latest
/// [`TelemetrySnapshot`].
///
/// Reads are lock-free ([`SnapshotRegistry::read`]); publishes are
/// wait-free with deferred reclamation ([`SnapshotRegistry::publish`]).
/// The registry stamps each published snapshot with the next epoch and
/// seals its checksum.
#[derive(Debug)]
pub struct SnapshotRegistry {
    /// The latest sealed snapshot. Always a valid `Box` allocation.
    current: AtomicPtr<TelemetrySnapshot>,
    /// Epoch of `current` — the seqlock-style published sequence number.
    epoch: AtomicU64,
    /// Readers currently between their increment and decrement.
    readers: AtomicUsize,
    /// Total completed reads (service-plane stat, not part of the
    /// deterministic journal).
    reads: AtomicU64,
    /// Displaced snapshots awaiting reclamation. Writer-side only: the
    /// read path never touches this lock.
    retired: Mutex<Vec<Retired>>,
}

impl SnapshotRegistry {
    /// A registry holding an empty epoch-0 snapshot.
    pub fn new() -> Self {
        let initial = Box::into_raw(Box::new(TelemetrySnapshot::default().seal(0)));
        SnapshotRegistry {
            current: AtomicPtr::new(initial),
            epoch: AtomicU64::new(0),
            readers: AtomicUsize::new(0),
            reads: AtomicU64::new(0),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Publish a snapshot: stamp it with the next epoch, seal its
    /// checksum, and swap it in as the current view. Never blocks on
    /// readers. Returns the epoch assigned.
    pub fn publish(&self, snapshot: TelemetrySnapshot) -> u64 {
        let epoch = self.epoch.load(Ordering::SeqCst) + 1;
        let sealed = snapshot.seal(epoch);
        let fresh = Box::into_raw(Box::new(sealed));
        let old = self.current.swap(fresh, Ordering::SeqCst);
        self.epoch.store(epoch, Ordering::SeqCst);
        let mut retired = self.retired.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        retired.push(Retired(old));
        // Opportunistic reclamation at a quiescent instant; see the
        // module docs for why this free is sound.
        if self.readers.load(Ordering::SeqCst) == 0 {
            for Retired(p) in retired.drain(..) {
                // SAFETY: `p` came from `Box::into_raw` in a previous
                // publish (or `new`), was displaced from `current` before
                // the quiescent observation above, and per the quiescence
                // argument no reader can still hold it.
                drop(unsafe { Box::from_raw(p) });
            }
        }
        epoch
    }

    /// The epoch of the current snapshot. Reading the epoch before and
    /// after a [`read`](Self::read) and seeing the same value proves the
    /// snapshot was current for that whole window (seqlock check).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Clone out the current snapshot. Lock-free: the only shared-state
    /// operations are the reader-count RMWs and the pointer load.
    pub fn read(&self) -> TelemetrySnapshot {
        self.readers.fetch_add(1, Ordering::SeqCst);
        let p = self.current.load(Ordering::SeqCst);
        // SAFETY: `current` always points at a live `Box` allocation.
        // The pointee cannot be freed while `readers > 0` — the writer
        // only frees after observing `readers == 0`, and this thread's
        // increment happens-before its pointer load in the SeqCst total
        // order (see module docs).
        let snapshot = unsafe { (*p).clone() };
        self.readers.fetch_sub(1, Ordering::SeqCst);
        self.reads.fetch_add(1, Ordering::Relaxed);
        snapshot
    }

    /// Total completed [`read`](Self::read) calls (service-plane stat;
    /// deliberately excluded from the deterministic journal).
    pub fn read_count(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Snapshots currently awaiting reclamation (test/diagnostic hook;
    /// bounded by the number of publishes that raced an active reader).
    pub fn retired_len(&self) -> usize {
        self.retired.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }
}

impl Default for SnapshotRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for SnapshotRegistry {
    fn drop(&mut self) {
        // Exclusive access: no readers or writers can exist here.
        let current = *self.current.get_mut();
        // SAFETY: `current` is the live allocation owned by the registry.
        drop(unsafe { Box::from_raw(current) });
        let retired = self.retired.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner);
        for Retired(p) in retired.drain(..) {
            // SAFETY: retired pointers are owned, displaced allocations.
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::ModuleSample;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn snap(power: f64) -> TelemetrySnapshot {
        TelemetrySnapshot {
            sim_time_s: power / 10.0,
            total_power_w: power,
            modules: vec![ModuleSample {
                id: 0,
                power_w: power,
                freq_ghz: 2.7,
                cap_w: Some(power + 5.0),
                duty: 1.0,
                throttled: false,
            }],
            ..TelemetrySnapshot::default()
        }
    }

    #[test]
    fn fresh_registry_serves_empty_epoch_zero() {
        let r = SnapshotRegistry::new();
        let s = r.read();
        assert_eq!(s.epoch, 0);
        assert!(s.verify());
        assert_eq!(r.epoch(), 0);
        assert_eq!(r.read_count(), 1);
    }

    #[test]
    fn publish_stamps_sequential_epochs_and_seals() {
        let r = SnapshotRegistry::new();
        assert_eq!(r.publish(snap(100.0)), 1);
        assert_eq!(r.publish(snap(200.0)), 2);
        let s = r.read();
        assert_eq!(s.epoch, 2);
        assert_eq!(s.total_power_w, 200.0);
        assert!(s.verify());
    }

    #[test]
    fn quiescent_publishes_reclaim_retired_snapshots() {
        let r = SnapshotRegistry::new();
        for i in 0..64 {
            r.publish(snap(i as f64));
            let _ = r.read();
        }
        // with no concurrent readers every publish reclaims; at most the
        // most recent displacement can be pending
        assert!(r.retired_len() <= 1, "retired = {}", r.retired_len());
    }

    #[test]
    fn concurrent_readers_always_see_sealed_snapshots() {
        let r = Arc::new(SnapshotRegistry::new());
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let r = Arc::clone(&r);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let s = r.read();
                        assert!(s.verify(), "torn snapshot at epoch {}", s.epoch);
                        assert!(s.epoch >= last, "epoch went backwards");
                        last = s.epoch;
                    }
                })
            })
            .collect();
        for i in 0..1000 {
            r.publish(snap(i as f64));
        }
        stop.store(true, Ordering::Relaxed);
        for t in readers {
            t.join().expect("reader panicked");
        }
        assert_eq!(r.epoch(), 1000);
    }

    #[test]
    fn seqlock_epoch_check_brackets_a_stable_read() {
        let r = SnapshotRegistry::new();
        r.publish(snap(50.0));
        let before = r.epoch();
        let s = r.read();
        let after = r.epoch();
        assert_eq!(before, after);
        assert_eq!(s.epoch, before);
    }
}
