//! Online drift detection: EWMA residual tracking with z-score alerts.
//!
//! The PVT model predicts each module's power from its *manufacturing*
//! variation (`base_variation`); the measured draw also folds in the
//! workload-dependent component and any aging the fleet accumulates.
//! The detector tracks the residual `measured − predicted` per module
//! with an exponentially weighted mean and variance (the standard
//! EW-mean / EW-variance recursion), and raises a [`DriftAlert`] when a
//! new residual sits more than [`DriftConfig::z_threshold`] standard
//! deviations from the tracked mean — the "silent drift" signal that
//! Schuchart et al. and Sinha et al. call out on production fleets.
//!
//! Determinism: state advances only on [`DriftDetector::observe`] calls,
//! which the producers drive from *simulated* time; no wall-clock enters
//! the recursion, so alert streams are reproducible run-to-run.

use serde::{Deserialize, Serialize};

/// Detector tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// EWMA smoothing factor (weight of the newest residual).
    pub lambda: f64,
    /// Alert when `|residual − mean| > z_threshold · sigma`.
    pub z_threshold: f64,
    /// Observations per module before alerting arms (the EWMA needs a
    /// few samples to learn the baseline residual level).
    pub warmup: u32,
    /// Floor on the tracked sigma (W) so a perfectly stationary baseline
    /// does not alert on float dust.
    pub min_sigma_w: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig { lambda: 0.05, z_threshold: 4.0, warmup: 16, min_sigma_w: 0.5 }
    }
}

/// One raised alert: which module drifted, by how much, and how far out.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct DriftAlert {
    /// The drifting module.
    pub module: u64,
    /// Simulated time of the triggering observation (s).
    pub at_s: f64,
    /// The raw residual, measured − predicted (W).
    pub residual_w: f64,
    /// Tracked residual mean at trigger time (W).
    pub mean_w: f64,
    /// The z-score that crossed the threshold.
    pub z: f64,
}

#[derive(Debug, Clone, Copy, Default)]
struct ModuleState {
    mean: f64,
    var: f64,
    seen: u32,
}

/// Per-module EWMA residual tracker.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    cfg: DriftConfig,
    modules: Vec<ModuleState>,
    alerts_total: u64,
}

impl DriftDetector {
    /// A detector over `n` modules.
    pub fn new(n: usize, cfg: DriftConfig) -> Self {
        DriftDetector { cfg, modules: vec![ModuleState::default(); n], alerts_total: 0 }
    }

    /// Number of modules tracked.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Whether the detector tracks no modules.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// Alerts raised over the detector's lifetime.
    pub fn alerts_total(&self) -> u64 {
        self.alerts_total
    }

    /// Feed one residual for `module` at simulated time `at_s`. Returns
    /// an alert if the residual sits outside the z-threshold *before*
    /// this observation is folded into the EWMA (so a step change alerts
    /// on its first sample, not after the mean has chased it).
    pub fn observe(&mut self, module: usize, at_s: f64, residual_w: f64) -> Option<DriftAlert> {
        if !residual_w.is_finite() {
            return None;
        }
        let cfg = self.cfg;
        let st = &mut self.modules[module];
        let mut alert = None;
        if st.seen >= cfg.warmup {
            let sigma = st.var.sqrt().max(cfg.min_sigma_w);
            let z = (residual_w - st.mean) / sigma;
            if z.abs() > cfg.z_threshold {
                alert = Some(DriftAlert {
                    module: module as u64,
                    at_s,
                    residual_w,
                    mean_w: st.mean,
                    z,
                });
                self.alerts_total += 1;
            }
        }
        if st.seen == 0 {
            st.mean = residual_w;
            st.var = 0.0;
        } else {
            // EW mean/variance recursion (West 1979 exponential form):
            // var absorbs the pre-update deviation, then the mean moves.
            let delta = residual_w - st.mean;
            st.var = (1.0 - cfg.lambda) * (st.var + cfg.lambda * delta * delta);
            st.mean += cfg.lambda * delta;
        }
        st.seen = st.seen.saturating_add(1);
        alert
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_residuals_never_alert() {
        let mut d = DriftDetector::new(4, DriftConfig::default());
        for step in 0..500 {
            for m in 0..4 {
                // constant per-module offset with tiny deterministic ripple
                let ripple = 1e-3 * ((step * 7 + m) % 5) as f64;
                assert!(d.observe(m, step as f64, 2.0 + m as f64 + ripple).is_none());
            }
        }
        assert_eq!(d.alerts_total(), 0);
    }

    #[test]
    fn step_change_alerts_on_first_drifted_sample() {
        let mut d = DriftDetector::new(1, DriftConfig::default());
        for step in 0..100 {
            assert!(d.observe(0, step as f64, 1.0).is_none());
        }
        // aging kicks in: +5 W residual, ten sigma-floors out
        let alert = d.observe(0, 100.0, 6.0).expect("step change must alert");
        assert_eq!(alert.module, 0);
        assert!((alert.residual_w - 6.0).abs() < 1e-12);
        assert!(alert.z > 4.0, "z = {}", alert.z);
        assert_eq!(d.alerts_total(), 1);
    }

    #[test]
    fn warmup_suppresses_early_alerts() {
        let cfg = DriftConfig { warmup: 16, ..DriftConfig::default() };
        let mut d = DriftDetector::new(1, cfg);
        // wildly different first samples: still no alerts during warmup
        for (i, r) in [0.0, 50.0, -30.0, 100.0, 0.0, 75.0].iter().enumerate() {
            assert!(d.observe(0, i as f64, *r).is_none(), "warmup sample {i} alerted");
        }
    }

    #[test]
    fn nonfinite_residuals_are_ignored() {
        let mut d = DriftDetector::new(1, DriftConfig::default());
        for step in 0..50 {
            d.observe(0, step as f64, 1.0);
        }
        assert!(d.observe(0, 50.0, f64::NAN).is_none());
        assert!(d.observe(0, 51.0, f64::INFINITY).is_none());
        // state untouched: the next sane sample does not alert
        assert!(d.observe(0, 52.0, 1.0).is_none());
    }

    #[test]
    fn slow_ramp_tracks_without_alerting_fast_jump_fires() {
        let cfg = DriftConfig::default();
        let mut d = DriftDetector::new(1, cfg);
        for step in 0..200 {
            // 0.002 W per step: far under min_sigma_w per EWMA window
            let r = 1.0 + 0.002 * step as f64;
            assert!(d.observe(0, step as f64, r).is_none(), "slow ramp alerted at {step}");
        }
        assert!(d.observe(0, 200.0, 20.0).is_some(), "jump after ramp must alert");
    }
}
