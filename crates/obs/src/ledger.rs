//! The watt-provenance ledger: per-tick attribution of the global power
//! budget to `(job, module, domain)` bins, with conservation enforced.
//!
//! Every tick a producer (the scheduler runtime, a PMMD region bracket)
//! splits the applied budget into four categories:
//!
//! * **useful** — watts the silicon actually drew for compute/DRAM;
//! * **throttle** — watts granted but lost to RAPL throttling or clock
//!   modulation (the module wanted the power and was denied);
//! * **headroom** — watts granted but never drawn because the part runs
//!   below its allocation (the manufacturing-variability headroom the
//!   paper's variation-aware schemes reclaim);
//! * **stranded** — watts the scheduler never allocated to any module
//!   (system-level slack, or a job-level residue between its budget and
//!   the Σ of its per-module allocations).
//!
//! The categories are constructed to *telescope*: per module-domain,
//! `useful + loss = granted`; per job, `Σ granted + residue = budget`;
//! per tick, `Σ budgets + stranded = cap`. [`LedgerTable::record`]
//! re-checks that invariant within a 1 ULP-scaled epsilon
//! ([`conservation_epsilon`]) and counts violations instead of silently
//! absorbing them — a broken ledger is a bug in the producer, not noise.
//!
//! Determinism: the table is a pure function of the ticks recorded into
//! it, keyed by `BTreeMap`, merged commutatively over bins — the same
//! contract as [`crate::metrics::Metrics`], so the exported `ledger.csv`
//! and journal records are byte-identical at any `--threads N`.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Where attributed watts went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Category {
    /// Watts drawn and turned into application progress.
    Useful,
    /// Granted watts lost to RAPL throttling / clock modulation.
    Throttle,
    /// Granted watts the part never drew (variability headroom).
    Headroom,
    /// Watts never allocated to any module.
    Stranded,
}

impl Category {
    /// All categories, in ledger column order.
    pub const ALL: [Category; 4] =
        [Category::Useful, Category::Throttle, Category::Headroom, Category::Stranded];

    /// Stable lowercase name (CSV/journal vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            Category::Useful => "useful",
            Category::Throttle => "throttle",
            Category::Headroom => "headroom",
            Category::Stranded => "stranded",
        }
    }

    /// Index into a `[f64; 4]` per-category accumulator.
    pub fn index(self) -> usize {
        match self {
            Category::Useful => 0,
            Category::Throttle => 1,
            Category::Headroom => 2,
            Category::Stranded => 3,
        }
    }
}

/// The power domain a bin attributes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Domain {
    /// CPU package power (the RAPL-capped domain).
    Cpu,
    /// DRAM power (never capped; the paper's §5 predicted domain).
    Dram,
}

impl Domain {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Domain::Cpu => "cpu",
            Domain::Dram => "dram",
        }
    }
}

/// One attribution bin: `(job, module, domain, category)`. `None` fields
/// widen the bin: a job-level residue has no module/domain; system-level
/// stranded watts have no job either.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct BinKey {
    /// Owning job, if the watts were awarded to one.
    pub job: Option<u64>,
    /// Module the watts were programmed onto, if any.
    pub module: Option<u64>,
    /// Power domain, when the attribution is domain-resolved.
    pub domain: Option<Domain>,
    /// What happened to the watts.
    pub category: Category,
}

/// One attributed quantity inside a tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LedgerEntry {
    /// The bin this entry lands in.
    pub key: BinKey,
    /// Attributed power (W) over this tick.
    pub watts: f64,
}

impl LedgerEntry {
    /// A domain-resolved per-module entry.
    pub fn module(job: u64, module: u64, domain: Domain, category: Category, watts: f64) -> Self {
        LedgerEntry {
            key: BinKey {
                job: Some(job),
                module: Some(module),
                domain: Some(domain),
                category,
            },
            watts,
        }
    }

    /// A job-level residue entry (budget minus Σ module allocations).
    pub fn job_residue(job: u64, watts: f64) -> Self {
        LedgerEntry {
            key: BinKey { job: Some(job), module: None, domain: None, category: Category::Stranded },
            watts,
        }
    }

    /// The system-level stranded entry (cap minus Σ job budgets).
    pub fn system_stranded(watts: f64) -> Self {
        LedgerEntry {
            key: BinKey { job: None, module: None, domain: None, category: Category::Stranded },
            watts,
        }
    }
}

/// One tick's worth of attribution, handed to [`crate::ledger_tick`].
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerTick {
    /// Simulated time of the tick (seconds).
    pub t_s: f64,
    /// Width of the tick (seconds since the previous tick) — the weight
    /// that turns per-tick watts into accumulated watt-seconds.
    pub dt_s: f64,
    /// The budget the bins must sum to: the cluster cap in effect, or the
    /// plan budget for a single-region bracket.
    pub cap_w: f64,
    /// The attribution entries. Zero-watt entries may be omitted.
    pub entries: Vec<LedgerEntry>,
}

/// Conservation tolerance for a tick at `cap_w` with `entries` entries:
/// one ULP of the cap per summand, i.e. the worst-case accumulated
/// rounding of the telescoping sum, never tighter than one ULP of 1 W.
pub fn conservation_epsilon(cap_w: f64, entries: usize) -> f64 {
    cap_w.abs().max(1.0) * f64::EPSILON * (entries as f64 + 1.0)
}

/// Per-tick category totals, kept for the offline conservation re-check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickTotals {
    /// Simulated time of the tick.
    pub t_s: f64,
    /// Tick width (s).
    pub dt_s: f64,
    /// Budget in effect.
    pub cap_w: f64,
    /// Watts per category, [`Category::index`]-ordered.
    pub totals_w: [f64; 4],
}

/// One serialized energy bin (journal vocabulary).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct LedgerBin {
    /// Owning job, if any.
    pub job: Option<u64>,
    /// Module, if module-resolved.
    pub module: Option<u64>,
    /// Domain, if domain-resolved.
    pub domain: Option<Domain>,
    /// Category.
    pub category: Category,
    /// Accumulated energy (watt-seconds) over all ticks.
    pub watt_s: f64,
}

/// The accumulated ledger: per-bin energy plus the per-tick totals
/// series, with conservation checked at every tick.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LedgerTable {
    /// Accumulated energy per bin (watt-seconds).
    pub bins: BTreeMap<BinKey, f64>,
    /// Per-tick category totals, in record order.
    pub ticks: Vec<TickTotals>,
    /// Ticks whose bins did not sum to the cap within epsilon.
    pub violations: u64,
    /// Largest |Σ bins − cap| seen (W).
    pub worst_residual_w: f64,
}

impl LedgerTable {
    /// An empty ledger.
    pub fn new() -> Self {
        LedgerTable::default()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty() && self.bins.is_empty()
    }

    /// Record one tick: accumulate energy bins, append the tick totals,
    /// and check conservation.
    pub fn record(&mut self, tick: LedgerTick) {
        let mut totals = [0.0f64; 4];
        let mut sum = 0.0f64;
        for e in &tick.entries {
            totals[e.key.category.index()] += e.watts;
            sum += e.watts;
            *self.bins.entry(e.key).or_insert(0.0) += e.watts * tick.dt_s;
        }
        let residual = (sum - tick.cap_w).abs();
        if residual > self.worst_residual_w {
            self.worst_residual_w = residual;
        }
        if residual > conservation_epsilon(tick.cap_w, tick.entries.len()) {
            self.violations += 1;
        }
        self.ticks.push(TickTotals {
            t_s: tick.t_s,
            dt_s: tick.dt_s,
            cap_w: tick.cap_w,
            totals_w: totals,
        });
    }

    /// Fold another ledger into this one. Bin accumulation is commutative;
    /// the tick series appends in call order (callers merge cells in the
    /// deterministic `(grid, index)` order, same as metrics).
    pub fn merge(&mut self, other: &LedgerTable) {
        for (&k, &ws) in &other.bins {
            *self.bins.entry(k).or_insert(0.0) += ws;
        }
        self.ticks.extend_from_slice(&other.ticks);
        self.violations += other.violations;
        if other.worst_residual_w > self.worst_residual_w {
            self.worst_residual_w = other.worst_residual_w;
        }
    }

    /// Total attributed energy per category (watt-seconds).
    pub fn energy_by_category(&self) -> [f64; 4] {
        let mut out = [0.0f64; 4];
        for (k, &ws) in &self.bins {
            out[k.category.index()] += ws;
        }
        out
    }

    /// The bins as sorted serializable records.
    pub fn bin_records(&self) -> Vec<LedgerBin> {
        self.bins
            .iter()
            .map(|(k, &watt_s)| LedgerBin {
                job: k.job,
                module: k.module,
                domain: k.domain,
                category: k.category,
                watt_s,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn balanced_tick(t_s: f64, cap_w: f64) -> LedgerTick {
        // one job, one module, both domains + residues: telescopes to cap
        let useful_cpu = 61.0;
        let throttle_cpu = 9.0;
        let useful_dram = 18.5;
        let headroom_dram = 1.5;
        let residue = 2.0;
        let granted = useful_cpu + throttle_cpu + useful_dram + headroom_dram + residue;
        LedgerTick {
            t_s,
            dt_s: 1.0,
            cap_w,
            entries: vec![
                LedgerEntry::module(3, 7, Domain::Cpu, Category::Useful, useful_cpu),
                LedgerEntry::module(3, 7, Domain::Cpu, Category::Throttle, throttle_cpu),
                LedgerEntry::module(3, 7, Domain::Dram, Category::Useful, useful_dram),
                LedgerEntry::module(3, 7, Domain::Dram, Category::Headroom, headroom_dram),
                LedgerEntry::job_residue(3, residue),
                LedgerEntry::system_stranded(cap_w - granted),
            ],
        }
    }

    #[test]
    fn balanced_ticks_conserve() {
        let mut t = LedgerTable::new();
        t.record(balanced_tick(1.0, 160.0));
        t.record(balanced_tick(2.0, 120.0));
        assert_eq!(t.violations, 0, "residual {}", t.worst_residual_w);
        assert_eq!(t.ticks.len(), 2);
        let by_cat = t.energy_by_category();
        assert_eq!(by_cat[Category::Useful.index()], 2.0 * (61.0 + 18.5));
        // all energy accounted: Σ categories = Σ caps × dt
        let total: f64 = by_cat.iter().sum();
        assert!((total - 280.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn unbalanced_tick_counts_a_violation() {
        let mut t = LedgerTable::new();
        t.record(LedgerTick {
            t_s: 0.0,
            dt_s: 1.0,
            cap_w: 100.0,
            entries: vec![LedgerEntry::system_stranded(90.0)],
        });
        assert_eq!(t.violations, 1);
        assert!((t.worst_residual_w - 10.0).abs() < 1e-12);
    }

    #[test]
    fn epsilon_scales_with_cap_and_entry_count() {
        assert!(conservation_epsilon(1e6, 100) > conservation_epsilon(100.0, 100));
        assert!(conservation_epsilon(100.0, 1000) > conservation_epsilon(100.0, 10));
        // float dust at the scale of a real cluster cap stays tolerated
        let cap = 95.0 * 1920.0;
        let dust = cap * f64::EPSILON * 4.0;
        assert!(dust < conservation_epsilon(cap, 16));
    }

    #[test]
    fn merge_accumulates_bins_and_appends_ticks() {
        let mut a = LedgerTable::new();
        a.record(balanced_tick(1.0, 160.0));
        let mut b = LedgerTable::new();
        b.record(balanced_tick(2.0, 160.0));
        b.record(LedgerTick {
            t_s: 3.0,
            dt_s: 1.0,
            cap_w: 10.0,
            entries: vec![],
        });
        a.merge(&b);
        assert_eq!(a.ticks.len(), 3);
        assert_eq!(a.violations, 1, "the empty 10 W tick is unbalanced");
        let key = BinKey {
            job: Some(3),
            module: Some(7),
            domain: Some(Domain::Cpu),
            category: Category::Useful,
        };
        assert_eq!(a.bins[&key], 2.0 * 61.0);
    }

    #[test]
    fn bin_records_are_sorted_and_stable() {
        let mut t = LedgerTable::new();
        t.record(balanced_tick(1.0, 160.0));
        let recs = t.bin_records();
        assert_eq!(recs.len(), 6);
        let keys: Vec<_> = recs.iter().map(|r| (r.job, r.module, r.domain, r.category)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        // serde vocabulary is lowercase
        let json = serde_json::to_string(&recs[0]).unwrap();
        assert!(json.contains("\"cpu\"") || json.contains("\"dram\"") || json.contains("null"));
    }
}
