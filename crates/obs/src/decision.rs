//! Structured scheduler decision records.
//!
//! Every admission, deferral, kill, preemption, rebalance and cap change
//! the scheduler runtime makes is captured as a [`DecisionRecord`]: the
//! simulated time, the job concerned, the budget state the decision was
//! made under, and — crucially — the *alternatives considered* (the
//! width probes of the admission binary search, the per-job budget
//! deltas of a rebalance). The records are pure functions of the
//! simulated trace, so the journal stays byte-identical at any
//! `--threads N`, and `vap-report --bin explain` can replay them offline
//! to answer "why was job J shrunk at t=T" without re-running the
//! simulation.

use serde::{Deserialize, Serialize};

/// One width the admission search probed: the job width tried, the power
/// floor it would need, and whether the budget could cover it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct WidthProbe {
    /// Modules the probe would grant.
    pub width: u64,
    /// Minimum power (W) the probed placement needs.
    pub floor_w: f64,
    /// Whether the floor fits the available budget.
    pub feasible: bool,
}

/// One job's budget movement inside a rebalance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct BudgetDelta {
    /// The job whose budget moved.
    pub job: u64,
    /// Budget (W) before the rebalance.
    pub before_w: f64,
    /// Budget (W) after the rebalance.
    pub after_w: f64,
    /// The α the new budget resolves to.
    pub alpha: f64,
}

/// What the scheduler decided, with the evidence it weighed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum DecisionKind {
    /// The job was placed.
    Admit {
        /// Modules the job asked for.
        width_requested: u64,
        /// Modules it was granted (≤ requested under a tight cap).
        width_granted: u64,
        /// Power budget (W) attached to the placement.
        budget_w: f64,
        /// The α the budget resolves to at grant time.
        alpha: f64,
        /// Widths the binary search probed on the way to the grant.
        alternatives: Vec<WidthProbe>,
    },
    /// The job stayed queued.
    Defer {
        /// Why placement failed (vocabulary: `"no_feasible_width"`,
        /// `"insufficient_modules"`, `"insufficient_power"`).
        reason: String,
    },
    /// The job can never run and was removed.
    Kill {
        /// Why the job is impossible.
        reason: String,
    },
    /// A running job was evicted.
    Preempt {
        /// Power (W) returned to the pool.
        freed_w: f64,
        /// Width the job held when evicted.
        width: u64,
    },
    /// Budgets were redistributed across running jobs.
    Rebalance {
        /// The partition policy that drove the split.
        policy: String,
        /// Per-job before/after budgets.
        deltas: Vec<BudgetDelta>,
    },
    /// The global cap moved.
    CapChange {
        /// Cap (W) before.
        old_w: f64,
        /// Cap (W) after.
        new_w: f64,
    },
}

impl DecisionKind {
    /// Stable lowercase tag (matches the serde `kind` field).
    pub fn tag(&self) -> &'static str {
        match self {
            DecisionKind::Admit { .. } => "admit",
            DecisionKind::Defer { .. } => "defer",
            DecisionKind::Kill { .. } => "kill",
            DecisionKind::Preempt { .. } => "preempt",
            DecisionKind::Rebalance { .. } => "rebalance",
            DecisionKind::CapChange { .. } => "cap_change",
        }
    }
}

/// One scheduler decision at a point in simulated time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct DecisionRecord {
    /// Simulated time the decision was taken (s).
    pub t_s: f64,
    /// The job concerned, if the decision is job-scoped.
    pub job: Option<u64>,
    /// Global cap in effect (W).
    pub cap_w: f64,
    /// Unallocated budget at decision time (W).
    pub avail_w: f64,
    /// The decision and its evidence.
    pub kind: DecisionKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_json_uses_snake_case_kind_tags() {
        let rec = DecisionRecord {
            t_s: 12.5,
            job: Some(3),
            cap_w: 95.0,
            avail_w: 20.0,
            kind: DecisionKind::Admit {
                width_requested: 8,
                width_granted: 4,
                budget_w: 18.0,
                alpha: 0.82,
                alternatives: vec![
                    WidthProbe { width: 8, floor_w: 36.0, feasible: false },
                    WidthProbe { width: 4, floor_w: 17.0, feasible: true },
                ],
            },
        };
        let json = serde_json::to_string(&rec).unwrap();
        assert!(json.contains("\"kind\":\"admit\""), "{json}");
        assert!(json.contains("\"alternatives\""), "{json}");
        let back: DecisionRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn cap_change_has_no_job() {
        let rec = DecisionRecord {
            t_s: 30.0,
            job: None,
            cap_w: 80.0,
            avail_w: 5.0,
            kind: DecisionKind::CapChange { old_w: 95.0, new_w: 80.0 },
        };
        let json = serde_json::to_string(&rec).unwrap();
        assert!(json.contains("\"job\":null"), "{json}");
        assert_eq!(rec.kind.tag(), "cap_change");
    }

    #[test]
    fn tags_cover_every_variant() {
        let kinds = [
            DecisionKind::Admit {
                width_requested: 1,
                width_granted: 1,
                budget_w: 1.0,
                alpha: 1.0,
                alternatives: vec![],
            },
            DecisionKind::Defer { reason: "insufficient_power".into() },
            DecisionKind::Kill { reason: "impossible".into() },
            DecisionKind::Preempt { freed_w: 10.0, width: 2 },
            DecisionKind::Rebalance { policy: "even".into(), deltas: vec![] },
            DecisionKind::CapChange { old_w: 1.0, new_w: 2.0 },
        ];
        let tags: Vec<_> = kinds.iter().map(|k| k.tag()).collect();
        assert_eq!(tags, ["admit", "defer", "kill", "preempt", "rebalance", "cap_change"]);
    }
}
