//! Deterministic counters and histograms.
//!
//! A [`Metrics`] registry is a pure function of the `incr`/`observe`
//! calls that fed it: no clocks, no thread ids, no iteration-order
//! surprises (`BTreeMap` keys). Merging two registries is commutative
//! and associative, which is what lets per-cell metrics collected on
//! arbitrary worker threads reduce to a byte-identical journal at any
//! `--threads` count (`tests/determinism.rs`).

use std::collections::BTreeMap;

use crate::hist;

/// A sparse log-linear (HDR-style) histogram over `f64` observations.
///
/// Buckets are keyed by [`hist::bucket_index`]: each power of two is
/// split into [`hist::SUB_BUCKETS`] linear sub-buckets read directly
/// from the IEEE 754 exponent and top mantissa bits, so bucketing is
/// exact and platform-independent (no libm involved) and quantile
/// estimates carry ≤ 1/16 relative bucket error. Zeros and subnormals
/// land in the floor bucket [`hist::FLOOR_KEY`]; non-finite
/// observations (the `INFINITY` sync waits of a zero-rate rank) are
/// counted separately and excluded from `sum`/`min`/`max`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    /// Number of finite observations.
    pub count: u64,
    /// Sum of finite observations.
    pub sum: f64,
    /// Smallest finite observation (0 when `count == 0`).
    pub min: f64,
    /// Largest finite observation (0 when `count == 0`).
    pub max: f64,
    /// Number of non-finite observations (NaN, ±∞).
    pub nonfinite: u64,
    /// Finite observations per [`hist::bucket_index`] bucket.
    pub buckets: BTreeMap<i32, u64>,
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            self.nonfinite += 1;
            return;
        }
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            if v < self.min {
                self.min = v;
            }
            if v > self.max {
                self.max = v;
            }
        }
        self.count += 1;
        self.sum += v;
        *self.buckets.entry(hist::bucket_index(v)).or_insert(0) += 1;
    }

    /// Estimate the `q`-quantile (`0.0 ≤ q ≤ 1.0`) of the finite
    /// observations by walking the cumulative bucket counts and
    /// reporting the upper edge of the bucket holding the target rank,
    /// clamped to the observed `[min, max]`. Magnitude-folded like the
    /// buckets themselves, so meaningful for the non-negative series
    /// (durations, latencies, iteration counts) this layer records.
    /// Returns `None` when no finite observations were recorded.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        // the extremes are tracked exactly — no bucket error at p0/p100
        if q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (&key, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(hist::bucket_upper_bound(key).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count > 0 {
            if self.count == 0 {
                self.min = other.min;
                self.max = other.max;
            } else {
                if other.min < self.min {
                    self.min = other.min;
                }
                if other.max > self.max {
                    self.max = other.max;
                }
            }
        }
        self.count += other.count;
        self.sum += other.sum;
        self.nonfinite += other.nonfinite;
        for (&b, &n) in &other.buckets {
            *self.buckets.entry(b).or_insert(0) += n;
        }
    }
}

/// A registry of named counters and histograms.
///
/// Metric names are `&'static str` by design: the hot path never
/// allocates for a name, and the fixed vocabulary keeps the exported
/// schema greppable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Add `by` to counter `name`.
    pub fn incr_by(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    /// Record `v` into histogram `name`.
    pub fn observe(&mut self, name: &'static str, v: f64) {
        self.histograms.entry(name).or_default().observe(v);
    }

    /// Fold another registry into this one (commutative, associative).
    pub fn merge(&mut self, other: &Metrics) {
        for (&name, &n) in &other.counters {
            *self.counters.entry(name).or_insert(0) += n;
        }
        for (&name, h) in &other.histograms {
            self.histograms.entry(name).or_default().merge(h);
        }
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Counter values, sorted by name.
    pub fn counters(&self) -> &BTreeMap<&'static str, u64> {
        &self.counters
    }

    /// Histograms, sorted by name.
    pub fn histograms(&self) -> &BTreeMap<&'static str, Histogram> {
        &self.histograms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_follow_the_log_linear_key() {
        assert_eq!(hist::bucket_index(1.0), 0);
        assert_eq!(hist::bucket_index(1.99), 15);
        assert_eq!(hist::bucket_index(2.0), 16);
        assert_eq!(hist::bucket_index(0.5), -16);
        assert_eq!(hist::bucket_index(-8.0), 48);
        assert_eq!(hist::bucket_index(0.0), hist::FLOOR_KEY);
    }

    #[test]
    fn histogram_tracks_moments_and_nonfinite() {
        let mut h = Histogram::default();
        for v in [1.0, 3.0, 0.25, f64::INFINITY, f64::NAN] {
            h.observe(v);
        }
        assert_eq!(h.count, 3);
        assert_eq!(h.nonfinite, 2);
        assert_eq!(h.min, 0.25);
        assert_eq!(h.max, 3.0);
        assert_eq!(h.sum, 4.25);
        // 1.0 → key 0; 3.0 = 1.5·2 → key 16+8; 0.25 → key -32
        assert_eq!(h.buckets.get(&0), Some(&1));
        assert_eq!(h.buckets.get(&24), Some(&1));
        assert_eq!(h.buckets.get(&-32), Some(&1));
    }

    #[test]
    fn quantiles_walk_the_cumulative_buckets() {
        let mut h = Histogram::default();
        for i in 1..=100 {
            h.observe(i as f64);
        }
        assert_eq!(h.quantile(0.0), Some(1.0), "q=0 clamps to min");
        assert_eq!(h.quantile(1.0), Some(100.0), "q=1 clamps to max");
        let p50 = h.quantile(0.5).unwrap();
        assert!((45.0..=56.0).contains(&p50), "p50 of 1..=100 was {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((92.0..=100.0).contains(&p99), "p99 of 1..=100 was {p99}");
        assert!(Histogram::default().quantile(0.5).is_none());
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = Metrics::new();
        a.incr_by("x", 2);
        a.observe("h", 1.0);
        a.observe("h", 9.0);
        let mut b = Metrics::new();
        b.incr_by("x", 3);
        b.incr_by("y", 1);
        b.observe("h", 0.5);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counters()["x"], 5);
        assert_eq!(ab.histograms()["h"].count, 3);
        assert_eq!(ab.histograms()["h"].min, 0.5);
        assert_eq!(ab.histograms()["h"].max, 9.0);
    }

    #[test]
    fn merge_into_empty_preserves_extrema() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        b.observe("h", -4.0);
        a.merge(&b);
        assert_eq!(a.histograms()["h"].min, -4.0);
        assert_eq!(a.histograms()["h"].max, -4.0);
    }
}
