//! Structured scenario perturbation records.
//!
//! Every perturbation a `vap-scenario` runtime applies — drift steps,
//! entropy shifts, sensor faults, cap shocks, failures, replacements —
//! is captured as a [`ScenarioRecord`]: the simulated time, the fleet
//! size it was applied against (so offline validation can range-check
//! module ids), and the perturbation payload. Like decisions, the
//! records are pure functions of the replayed schedule, so the journal
//! stays byte-identical at any `--threads N`.

use serde::{Deserialize, Serialize};

/// What was perturbed, with the payload applied.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum ScenarioKind {
    /// A cumulative drift step composed onto the module's power curve.
    Drift {
        /// Affected module.
        module: u64,
        /// Dynamic-power multiplier step.
        dynamic: f64,
        /// Leakage-power multiplier step.
        leakage: f64,
        /// DRAM-power multiplier step.
        dram: f64,
    },
    /// An input-entropy phase change replacing the module's data skew.
    EntropyShift {
        /// Affected module.
        module: u64,
        /// Dynamic-power multiplier now in force.
        dynamic: f64,
        /// Leakage-power multiplier now in force.
        leakage: f64,
        /// DRAM-power multiplier now in force.
        dram: f64,
    },
    /// A sensor fault (or repair) on the module's power telemetry.
    SensorFault {
        /// Affected module.
        module: u64,
        /// Failure mode (vocabulary: `"stuck"`, `"noisy"`, `"offset"`,
        /// `"clear"`).
        fault: String,
    },
    /// A global cap shock.
    CapShock {
        /// Absolute multiplier on the campaign's base cap.
        scale: f64,
    },
    /// The module failed out of the pool.
    Fail {
        /// The failed module.
        module: u64,
    },
    /// A replacement part was swapped into the slot.
    Replace {
        /// The repaired slot.
        module: u64,
    },
}

impl ScenarioKind {
    /// Stable lowercase tag (matches the serde `kind` field).
    pub fn tag(&self) -> &'static str {
        match self {
            ScenarioKind::Drift { .. } => "drift",
            ScenarioKind::EntropyShift { .. } => "entropy_shift",
            ScenarioKind::SensorFault { .. } => "sensor_fault",
            ScenarioKind::CapShock { .. } => "cap_shock",
            ScenarioKind::Fail { .. } => "fail",
            ScenarioKind::Replace { .. } => "replace",
        }
    }

    /// The module the perturbation targets, if module-scoped.
    pub fn module(&self) -> Option<u64> {
        match *self {
            ScenarioKind::Drift { module, .. }
            | ScenarioKind::EntropyShift { module, .. }
            | ScenarioKind::SensorFault { module, .. }
            | ScenarioKind::Fail { module }
            | ScenarioKind::Replace { module } => Some(module),
            ScenarioKind::CapShock { .. } => None,
        }
    }
}

/// One applied perturbation at a point in simulated time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ScenarioRecord {
    /// Simulated time the perturbation was applied (s).
    pub t_s: f64,
    /// Fleet size it was applied against (module-id range check).
    pub fleet: u64,
    /// The perturbation.
    pub kind: ScenarioKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_json_uses_snake_case_kind_tags() {
        let rec = ScenarioRecord {
            t_s: 900.0,
            fleet: 96,
            kind: ScenarioKind::Drift { module: 7, dynamic: 1.03, leakage: 1.2, dram: 1.0 },
        };
        let json = serde_json::to_string(&rec).unwrap();
        assert!(json.contains("\"kind\":\"drift\""), "{json}");
        assert!(json.contains("\"fleet\":96"), "{json}");
        let back: ScenarioRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn tags_and_modules_cover_every_variant() {
        let kinds = [
            ScenarioKind::Drift { module: 1, dynamic: 1.0, leakage: 1.0, dram: 1.0 },
            ScenarioKind::EntropyShift { module: 2, dynamic: 1.0, leakage: 1.0, dram: 1.0 },
            ScenarioKind::SensorFault { module: 3, fault: "stuck".into() },
            ScenarioKind::CapShock { scale: 0.8 },
            ScenarioKind::Fail { module: 4 },
            ScenarioKind::Replace { module: 5 },
        ];
        let tags: Vec<_> = kinds.iter().map(|k| k.tag()).collect();
        assert_eq!(
            tags,
            ["drift", "entropy_shift", "sensor_fault", "cap_shock", "fail", "replace"]
        );
        let modules: Vec<_> = kinds.iter().map(|k| k.module()).collect();
        assert_eq!(modules, [Some(1), Some(2), Some(3), None, Some(4), Some(5)]);
    }
}
