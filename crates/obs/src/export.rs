//! Exporters: JSONL journal, metrics CSV, Chrome trace, summary table.
//!
//! Three artifacts, three contracts:
//!
//! * **`journal.jsonl`** — the deterministic event journal. One JSON
//!   object per line: a `meta` header, one `grid` line per registered
//!   fan-out, one `cell` line per work item (sorted by `(grid, index)`),
//!   and a final `total` rollup. Byte-identical across `--threads`
//!   counts (asserted by `tests/determinism.rs`).
//! * **`metrics.csv`** — the same data flattened long-form for plotting
//!   next to each figure's CSV.
//! * **`trace.json`** — Chrome trace-event format (load in Perfetto or
//!   `chrome://tracing`): one `X` (complete) event per span, lanes =
//!   `tid` (0 driver, `w+1` worker slot `w`). Wall-clock side channel;
//!   *not* covered by the determinism contract.
//!
//! The [`validate_journal`]/[`validate_trace`]/[`validate_metrics_csv`]
//! checks back the `obs-check` binary and the CI smoke job: every line
//! must deserialize into the schema types here and re-serialize to the
//! identical bytes (serde round-trip).

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::decision::{DecisionKind, DecisionRecord};
use crate::ledger::{conservation_epsilon, Category, LedgerBin, LedgerTable};
use crate::metrics::{Histogram, Metrics};
use crate::recorder::Inner;
use crate::scenario::{ScenarioKind, ScenarioRecord};

/// Journal schema version. v2 added the watt-provenance `ledger` and
/// scheduler `decision` line types (between the cells and the total);
/// v3 added the `scenario` perturbation lines (between the decisions
/// and the total).
pub const JOURNAL_VERSION: u32 = 3;

/// Serializable snapshot of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct HistogramSnapshot {
    /// Finite observation count.
    pub count: u64,
    /// Sum of finite observations.
    pub sum: f64,
    /// Smallest finite observation (0 when `count == 0`).
    pub min: f64,
    /// Largest finite observation (0 when `count == 0`).
    pub max: f64,
    /// Non-finite observation count.
    pub nonfinite: u64,
    /// Counts per `floor(log2(|v|))` bucket.
    pub buckets: BTreeMap<i32, u64>,
}

impl From<&Histogram> for HistogramSnapshot {
    fn from(h: &Histogram) -> Self {
        HistogramSnapshot {
            count: h.count,
            sum: h.sum,
            min: h.min,
            max: h.max,
            nonfinite: h.nonfinite,
            buckets: h.buckets.clone(),
        }
    }
}

/// One line of the JSONL journal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum JournalLine {
    /// Header: always the first line.
    Meta {
        /// Schema version ([`JOURNAL_VERSION`]).
        version: u32,
    },
    /// One registered fan-out.
    Grid {
        /// Grid id (sequential, driver call order).
        id: u64,
        /// Item kind: `item`, `cell` or `module`.
        kind: String,
        /// Number of items.
        items: u64,
    },
    /// One work item's deterministic metrics.
    Cell {
        /// Owning grid id.
        grid: u64,
        /// Item index within the grid.
        index: u64,
        /// Item kind.
        kind: String,
        /// Label set by the driver (e.g. `dgemm@110W`).
        label: Option<String>,
        /// Counter values by name.
        counters: BTreeMap<String, u64>,
        /// Histograms by name.
        histograms: BTreeMap<String, HistogramSnapshot>,
    },
    /// One scope's watt-provenance ledger rollup: accumulated energy
    /// bins plus the conservation verdict. Cell scopes carry their
    /// `(grid, index)`; the driver's direct ledger carries `None`s.
    Ledger {
        /// Owning grid, or `None` for the driver's direct ledger.
        grid: Option<u64>,
        /// Item index within the grid, if cell-scoped.
        index: Option<u64>,
        /// Ticks recorded into this scope.
        ticks: u64,
        /// Ticks whose bins failed the conservation invariant.
        violations: u64,
        /// Largest |Σ bins − cap| observed (W).
        worst_residual_w: f64,
        /// Accumulated energy bins, sorted by `(job, module, domain,
        /// category)`.
        bins: Vec<LedgerBin>,
    },
    /// One scheduler decision, with the alternatives it weighed.
    Decision {
        /// Owning grid, or `None` for driver-thread decisions.
        grid: Option<u64>,
        /// Item index within the grid, if cell-scoped.
        index: Option<u64>,
        /// Record order within the scope (0-based).
        seq: u64,
        /// Simulated time of the decision (s).
        t_s: f64,
        /// The job concerned, if job-scoped.
        job: Option<u64>,
        /// Global cap in effect (W).
        cap_w: f64,
        /// Unallocated budget at decision time (W).
        avail_w: f64,
        /// The decision and its evidence.
        decision: DecisionKind,
    },
    /// One applied scenario perturbation.
    Scenario {
        /// Owning grid, or `None` for driver-thread perturbations.
        grid: Option<u64>,
        /// Item index within the grid, if cell-scoped.
        index: Option<u64>,
        /// Record order within the scope (0-based).
        seq: u64,
        /// Simulated time the perturbation was applied (s).
        t_s: f64,
        /// Fleet size it was applied against (module-id range check).
        fleet: u64,
        /// The perturbation and its payload.
        event: ScenarioKind,
    },
    /// Whole-session rollup: always the last line.
    Total {
        /// Counter values by name.
        counters: BTreeMap<String, u64>,
        /// Histograms by name.
        histograms: BTreeMap<String, HistogramSnapshot>,
    },
}

/// One Chrome trace event (the subset of the trace-event format we emit).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Event name.
    pub name: String,
    /// Category (`phase`, `item`, `cell`, `module`, `__metadata`).
    pub cat: String,
    /// Phase: `X` (complete) or `M` (metadata).
    pub ph: String,
    /// Timestamp in microseconds since session install.
    pub ts: u64,
    /// Duration in microseconds (`X` events only).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub dur: Option<u64>,
    /// Process id (always 1 — one campaign per trace).
    pub pid: u32,
    /// Timeline lane: 0 = driver, `w + 1` = worker slot `w`.
    pub tid: u32,
    /// Metadata payload (`M` events only).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub args: Option<serde_json::Value>,
}

/// A Chrome trace file: `{"traceEvents": [...]}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChromeTrace {
    /// All events.
    #[serde(rename = "traceEvents")]
    pub trace_events: Vec<TraceEvent>,
}

/// Everything a finished session exports.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// Deterministic JSONL event journal.
    pub journal_jsonl: String,
    /// Long-form per-cell metrics CSV.
    pub metrics_csv: String,
    /// Watt-provenance ledger CSV (empty when no ledger was recorded).
    pub ledger_csv: String,
    /// Chrome trace-event timeline (wall-clock side channel).
    pub trace_json: String,
    /// Human-readable totals table for stdout.
    pub summary: String,
}

impl ObsReport {
    /// Write the artifacts into `dir` (created if missing), returning
    /// the paths written. `ledger.csv` is written only when the session
    /// recorded ledger ticks.
    pub fn write_to(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut files = vec![
            ("journal.jsonl", &self.journal_jsonl),
            ("metrics.csv", &self.metrics_csv),
            ("trace.json", &self.trace_json),
        ];
        if !self.ledger_csv.is_empty() {
            files.push(("ledger.csv", &self.ledger_csv));
        }
        let mut written = Vec::with_capacity(files.len());
        for (name, content) in files {
            let path = dir.join(name);
            std::fs::write(&path, content)?;
            written.push(path);
        }
        Ok(written)
    }
}

fn snapshot_maps(
    m: &Metrics,
) -> (BTreeMap<String, u64>, BTreeMap<String, HistogramSnapshot>) {
    let counters = m.counters().iter().map(|(&k, &v)| (k.to_string(), v)).collect();
    let histograms =
        m.histograms().iter().map(|(&k, h)| (k.to_string(), HistogramSnapshot::from(h))).collect();
    (counters, histograms)
}

fn to_line(line: &JournalLine) -> String {
    // vap:allow(no-panic-in-lib): all journal values are finite and all
    // map keys stringify — serialization of these plain types cannot fail
    serde_json::to_string(line).expect("journal serialization cannot fail")
}

fn ledger_line(grid: Option<u64>, index: Option<u64>, t: &LedgerTable) -> JournalLine {
    JournalLine::Ledger {
        grid,
        index,
        ticks: t.ticks.len() as u64,
        violations: t.violations,
        worst_residual_w: t.worst_residual_w,
        bins: t.bin_records(),
    }
}

fn decision_line(grid: Option<u64>, index: Option<u64>, seq: u64, r: &DecisionRecord) -> JournalLine {
    JournalLine::Decision {
        grid,
        index,
        seq,
        t_s: r.t_s,
        job: r.job,
        cap_w: r.cap_w,
        avail_w: r.avail_w,
        decision: r.kind.clone(),
    }
}

fn scenario_line(grid: Option<u64>, index: Option<u64>, seq: u64, r: &ScenarioRecord) -> JournalLine {
    JournalLine::Scenario {
        grid,
        index,
        seq,
        t_s: r.t_s,
        fleet: r.fleet,
        event: r.kind.clone(),
    }
}

/// Build the full report from a session's recorded state.
pub(crate) fn build_report(inner: &Inner) -> ObsReport {
    // --- deterministic journal ---
    let mut journal = String::new();
    journal.push_str(&to_line(&JournalLine::Meta { version: JOURNAL_VERSION }));
    journal.push('\n');
    for (id, g) in inner.grids.iter().enumerate() {
        journal.push_str(&to_line(&JournalLine::Grid {
            id: id as u64,
            kind: g.kind.to_string(),
            items: g.items,
        }));
        journal.push('\n');
    }
    let mut totals = inner.direct.clone();
    for ((grid, index), cell) in &inner.cells {
        totals.merge(&cell.metrics);
        let (counters, histograms) = snapshot_maps(&cell.metrics);
        journal.push_str(&to_line(&JournalLine::Cell {
            grid: *grid,
            index: *index,
            kind: cell.kind.to_string(),
            label: cell.label.clone(),
            counters,
            histograms,
        }));
        journal.push('\n');
    }
    // ledger rollups: cell scopes in (grid, index) order, direct last —
    // the same deterministic order the cells themselves export in
    for ((grid, index), cell) in &inner.cells {
        if !cell.ledger.is_empty() {
            journal.push_str(&to_line(&ledger_line(Some(*grid), Some(*index), &cell.ledger)));
            journal.push('\n');
        }
    }
    if !inner.ledger.is_empty() {
        journal.push_str(&to_line(&ledger_line(None, None, &inner.ledger)));
        journal.push('\n');
    }
    // decisions: cell scopes in (grid, index) order, then driver-direct,
    // each scope in record order (seq)
    for ((grid, index), cell) in &inner.cells {
        for (seq, rec) in cell.decisions.iter().enumerate() {
            journal.push_str(&to_line(&decision_line(Some(*grid), Some(*index), seq as u64, rec)));
            journal.push('\n');
        }
    }
    for (seq, rec) in inner.decisions.iter().enumerate() {
        journal.push_str(&to_line(&decision_line(None, None, seq as u64, rec)));
        journal.push('\n');
    }
    // scenario perturbations: cell scopes in (grid, index) order, then
    // driver-direct, each scope in record order (seq)
    for ((grid, index), cell) in &inner.cells {
        for (seq, rec) in cell.scenarios.iter().enumerate() {
            journal.push_str(&to_line(&scenario_line(Some(*grid), Some(*index), seq as u64, rec)));
            journal.push('\n');
        }
    }
    for (seq, rec) in inner.scenarios.iter().enumerate() {
        journal.push_str(&to_line(&scenario_line(None, None, seq as u64, rec)));
        journal.push('\n');
    }
    let (counters, histograms) = snapshot_maps(&totals);
    journal.push_str(&to_line(&JournalLine::Total { counters, histograms }));
    journal.push('\n');

    ObsReport {
        journal_jsonl: journal,
        metrics_csv: metrics_csv(inner, &totals),
        ledger_csv: ledger_csv(inner),
        trace_json: trace_json(inner),
        summary: summary(&totals, inner),
    }
}

/// CSV header for `metrics.csv`.
pub const METRICS_CSV_HEADER: &str = "scope,grid,index,kind,label,metric,value,count,sum,min,max";

fn csv_label(label: &Option<String>) -> String {
    match label {
        Some(l) => l.replace(',', ";"),
        None => String::new(),
    }
}

fn metrics_csv(inner: &Inner, totals: &Metrics) -> String {
    let mut out = String::from(METRICS_CSV_HEADER);
    out.push('\n');
    let mut emit = |scope: &str, grid: String, index: String, kind: &str, label: String, m: &Metrics| {
        for (name, v) in m.counters() {
            out.push_str(&format!("{scope},{grid},{index},{kind},{label},{name},{v},,,,\n"));
        }
        for (name, h) in m.histograms() {
            out.push_str(&format!(
                "{scope},{grid},{index},{kind},{label},{name},,{},{},{},{}\n",
                h.count, h.sum, h.min, h.max
            ));
        }
    };
    for ((grid, index), cell) in &inner.cells {
        emit(
            "cell",
            grid.to_string(),
            index.to_string(),
            cell.kind,
            csv_label(&cell.label),
            &cell.metrics,
        );
    }
    emit("total", String::new(), String::new(), "", String::new(), totals);
    out
}

/// CSV header for `ledger.csv`. Two row shapes share it: `tick` rows
/// carry per-tick per-category watts (4 rows per tick — the offline
/// conservation re-check sums them against `cap_w`), `bin` rows carry
/// accumulated watt-seconds per `(job, module, domain, category)` bin.
pub const LEDGER_CSV_HEADER: &str =
    "scope,grid,index,tick,t_s,dt_s,cap_w,job,module,domain,category,value";

fn ledger_csv(inner: &Inner) -> String {
    let mut scopes: Vec<(String, String, &LedgerTable)> = inner
        .cells
        .iter()
        .filter(|(_, c)| !c.ledger.is_empty())
        .map(|((g, i), c)| (g.to_string(), i.to_string(), &c.ledger))
        .collect();
    if !inner.ledger.is_empty() {
        scopes.push((String::new(), String::new(), &inner.ledger));
    }
    if scopes.is_empty() {
        return String::new();
    }
    let mut out = String::from(LEDGER_CSV_HEADER);
    out.push('\n');
    for (grid, index, table) in &scopes {
        for (tick, t) in table.ticks.iter().enumerate() {
            for cat in Category::ALL {
                out.push_str(&format!(
                    "tick,{grid},{index},{tick},{},{},{},,,,{},{}\n",
                    t.t_s,
                    t.dt_s,
                    t.cap_w,
                    cat.name(),
                    t.totals_w[cat.index()]
                ));
            }
        }
        for bin in table.bin_records() {
            let job = bin.job.map(|j| j.to_string()).unwrap_or_default();
            let module = bin.module.map(|m| m.to_string()).unwrap_or_default();
            let domain = bin.domain.map(|d| d.name()).unwrap_or_default();
            out.push_str(&format!(
                "bin,{grid},{index},,,,,{job},{module},{domain},{},{}\n",
                bin.category.name(),
                bin.watt_s
            ));
        }
    }
    out
}

/// Row counts from a successful [`validate_ledger_csv`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerCsvStats {
    /// Per-tick category rows (`tick,...`).
    pub tick_rows: usize,
    /// Aggregated watt-second bin rows (`bin,...`).
    pub bin_rows: usize,
}

/// Validate a ledger CSV: header, column counts, row vocabulary, and the
/// offline conservation re-check — every tick's four category rows must
/// sum to the tick's `cap_w` within the 1 ULP-scaled epsilon.
pub fn validate_ledger_csv(csv: &str) -> Result<LedgerCsvStats, String> {
    let mut lines = csv.lines();
    match lines.next() {
        Some(h) if h == LEDGER_CSV_HEADER => {}
        other => return Err(format!("bad ledger CSV header: {other:?}")),
    }
    let want = LEDGER_CSV_HEADER.split(',').count();
    // (scope-grid, scope-index, tick) → (cap_w, Σ category watts, rows)
    let mut ticks: BTreeMap<(String, String, String), (f64, f64, usize)> = BTreeMap::new();
    let mut stats = LedgerCsvStats { tick_rows: 0, bin_rows: 0 };
    for (i, row) in lines.enumerate() {
        let n = i + 2;
        let fields: Vec<&str> = row.split(',').collect();
        if fields.len() != want {
            return Err(format!("row {n}: {} fields, expected {want}", fields.len()));
        }
        match fields[0] {
            "tick" => {
                stats.tick_rows += 1;
                let cap: f64 = fields[6]
                    .parse()
                    .map_err(|e| format!("row {n}: bad cap_w {:?}: {e}", fields[6]))?;
                let value: f64 = fields[11]
                    .parse()
                    .map_err(|e| format!("row {n}: bad value {:?}: {e}", fields[11]))?;
                let key =
                    (fields[1].to_string(), fields[2].to_string(), fields[3].to_string());
                let entry = ticks.entry(key).or_insert((cap, 0.0, 0));
                if entry.0 != cap {
                    return Err(format!("row {n}: cap_w disagrees within a tick"));
                }
                entry.1 += value;
                entry.2 += 1;
            }
            "bin" => {
                stats.bin_rows += 1;
                let _: f64 = fields[11]
                    .parse()
                    .map_err(|e| format!("row {n}: bad value {:?}: {e}", fields[11]))?;
            }
            other => return Err(format!("row {n}: unknown scope {other:?}")),
        }
    }
    if stats.tick_rows + stats.bin_rows == 0 {
        return Err("ledger CSV has no data rows".to_string());
    }
    for ((grid, index, tick), (cap, sum, catrows)) in &ticks {
        if *catrows != Category::ALL.len() {
            return Err(format!(
                "tick ({grid},{index},{tick}): {catrows} category rows, expected {}",
                Category::ALL.len()
            ));
        }
        // 64 summands covers any realistic bin count behind a tick total
        let eps = conservation_epsilon(*cap, 64);
        if (sum - cap).abs() > eps {
            return Err(format!(
                "tick ({grid},{index},{tick}): categories sum to {sum} W, cap is {cap} W (residual {}, eps {eps})",
                (sum - cap).abs()
            ));
        }
    }
    Ok(stats)
}

fn trace_json(inner: &Inner) -> String {
    let max_lane = inner.spans.iter().map(|s| s.lane).max().unwrap_or(0);
    let mut events: Vec<TraceEvent> = (0..=max_lane)
        .map(|lane| TraceEvent {
            name: "thread_name".to_string(),
            cat: "__metadata".to_string(),
            ph: "M".to_string(),
            ts: 0,
            dur: None,
            pid: 1,
            tid: lane,
            args: Some(serde_json::json!({
                "name": if lane == 0 { "driver".to_string() } else { format!("worker-{}", lane - 1) }
            })),
        })
        .collect();
    let mut spans: Vec<&crate::recorder::SpanRecord> = inner.spans.iter().collect();
    spans.sort_by(|a, b| (a.ts_us, a.lane, &a.name).cmp(&(b.ts_us, b.lane, &b.name)));
    events.extend(spans.into_iter().map(|s| TraceEvent {
        name: s.name.clone(),
        cat: s.cat.to_string(),
        ph: "X".to_string(),
        ts: s.ts_us,
        dur: Some(s.dur_us),
        pid: 1,
        tid: s.lane,
        args: None,
    }));
    let trace = ChromeTrace { trace_events: events };
    // vap:allow(no-panic-in-lib): trace events hold only strings and
    // integers — serialization cannot fail
    serde_json::to_string_pretty(&trace).expect("trace serialization cannot fail")
}

fn summary(totals: &Metrics, inner: &Inner) -> String {
    let mut out = String::from("== vap-obs session summary ==\n");
    out.push_str(&format!(
        "grids: {}   cells: {}   spans: {}\n",
        inner.grids.len(),
        inner.cells.len(),
        inner.spans.len()
    ));
    let mut ledger = inner.ledger.clone();
    for cell in inner.cells.values() {
        ledger.merge(&cell.ledger);
    }
    if !ledger.is_empty() {
        let by_cat = ledger.energy_by_category();
        out.push_str(&format!(
            "ledger: {} ticks, {} violations (worst residual {:.3e} W)\n",
            ledger.ticks.len(),
            ledger.violations,
            ledger.worst_residual_w
        ));
        for cat in Category::ALL {
            out.push_str(&format!("  {:<10} {:>16.3} W·s\n", cat.name(), by_cat[cat.index()]));
        }
    }
    let decisions = inner.decisions.len()
        + inner.cells.values().map(|c| c.decisions.len()).sum::<usize>();
    if decisions > 0 {
        out.push_str(&format!("decisions: {decisions}\n"));
    }
    let scenarios = inner.scenarios.len()
        + inner.cells.values().map(|c| c.scenarios.len()).sum::<usize>();
    if scenarios > 0 {
        out.push_str(&format!("scenario events: {scenarios}\n"));
    }
    if !totals.counters().is_empty() {
        out.push_str(&format!("{:<32} {:>14}\n", "counter", "value"));
        for (name, v) in totals.counters() {
            out.push_str(&format!("{name:<32} {v:>14}\n"));
        }
    }
    if !totals.histograms().is_empty() {
        out.push_str(&format!(
            "{:<32} {:>10} {:>14} {:>12} {:>12} {:>6}\n",
            "histogram", "count", "sum", "min", "max", "n/f"
        ));
        for (name, h) in totals.histograms() {
            out.push_str(&format!(
                "{name:<32} {:>10} {:>14.6} {:>12.6} {:>12.6} {:>6}\n",
                h.count, h.sum, h.min, h.max, h.nonfinite
            ));
        }
    }
    out
}

/// Journal statistics reported by [`validate_journal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalStats {
    /// Total journal lines.
    pub lines: usize,
    /// `grid` lines.
    pub grids: usize,
    /// `cell` lines.
    pub cells: usize,
    /// `ledger` lines.
    pub ledgers: usize,
    /// `decision` lines.
    pub decisions: usize,
    /// `scenario` lines.
    pub scenarios: usize,
}

/// A scope sort key with `None` (driver-direct) ordered last.
fn scope_key(grid: Option<u64>, index: Option<u64>) -> (u64, u64) {
    (grid.unwrap_or(u64::MAX), index.unwrap_or(u64::MAX))
}

/// Validate a JSONL journal: schema round-trip per line (deserialize,
/// re-serialize, compare bytes), structural ordering (meta first, then
/// grids, cells, ledgers, decisions, scenarios, total — each block
/// internally sorted), histogram invariants, ledger conservation (any
/// recorded violation fails validation), and scenario invariants
/// (non-decreasing event times per scope, module ids inside the
/// recorded fleet size).
pub fn validate_journal(journal: &str) -> Result<JournalStats, String> {
    let mut stats =
        JournalStats { lines: 0, grids: 0, cells: 0, ledgers: 0, decisions: 0, scenarios: 0 };
    let mut saw_total = false;
    let mut phase = 0u8;
    let mut last_cell: Option<(u64, u64)> = None;
    let mut last_ledger: Option<(u64, u64)> = None;
    let mut last_decision: Option<(u64, u64, u64)> = None;
    let mut last_scenario: Option<(u64, u64, u64)> = None;
    let mut last_scenario_t: Option<f64> = None;
    for (i, raw) in journal.lines().enumerate() {
        let n = i + 1;
        stats.lines += 1;
        let line: JournalLine =
            serde_json::from_str(raw).map_err(|e| format!("line {n}: schema violation: {e}"))?;
        let back = to_line(&line);
        if back != raw {
            return Err(format!("line {n}: serde round-trip mismatch:\n  in:  {raw}\n  out: {back}"));
        }
        if saw_total {
            return Err(format!("line {n}: content after the total rollup"));
        }
        let this_phase = match &line {
            JournalLine::Meta { .. } => 0,
            JournalLine::Grid { .. } => 1,
            JournalLine::Cell { .. } => 2,
            JournalLine::Ledger { .. } => 3,
            JournalLine::Decision { .. } => 4,
            JournalLine::Scenario { .. } => 5,
            JournalLine::Total { .. } => 6,
        };
        if this_phase < phase {
            return Err(format!(
                "line {n}: journal blocks out of order (meta, grids, cells, ledgers, decisions, scenarios, total)"
            ));
        }
        phase = this_phase;
        match &line {
            JournalLine::Meta { version } => {
                if i != 0 {
                    return Err(format!("line {n}: meta must be the first line"));
                }
                if *version != JOURNAL_VERSION {
                    return Err(format!("line {n}: unknown journal version {version}"));
                }
            }
            JournalLine::Grid { id, .. } => {
                if *id != stats.grids as u64 {
                    return Err(format!("line {n}: grid ids must be sequential, got {id}"));
                }
                stats.grids += 1;
            }
            JournalLine::Cell { grid, index, histograms, .. } => {
                if *grid >= stats.grids as u64 {
                    return Err(format!("line {n}: cell references unregistered grid {grid}"));
                }
                if last_cell.is_some_and(|prev| prev >= (*grid, *index)) {
                    return Err(format!("line {n}: cells must be sorted by (grid, index)"));
                }
                last_cell = Some((*grid, *index));
                stats.cells += 1;
                validate_histograms(histograms).map_err(|e| format!("line {n}: {e}"))?;
            }
            JournalLine::Ledger { grid, index, ticks, violations, bins, .. } => {
                let key = scope_key(*grid, *index);
                if last_ledger.is_some_and(|prev| prev >= key) {
                    return Err(format!(
                        "line {n}: ledgers must be sorted by (grid, index), direct last"
                    ));
                }
                last_ledger = Some(key);
                if *violations > 0 {
                    return Err(format!(
                        "line {n}: ledger recorded {violations} conservation violations over {ticks} ticks"
                    ));
                }
                let sorted = bins.windows(2).all(|w| {
                    (w[0].job, w[0].module, w[0].domain, w[0].category)
                        < (w[1].job, w[1].module, w[1].domain, w[1].category)
                });
                if !sorted {
                    return Err(format!("line {n}: ledger bins must be sorted and unique"));
                }
                stats.ledgers += 1;
            }
            JournalLine::Decision { grid, index, seq, .. } => {
                let key = (scope_key(*grid, *index).0, scope_key(*grid, *index).1, *seq);
                if last_decision.is_some_and(|prev| prev >= key) {
                    return Err(format!(
                        "line {n}: decisions must be sorted by (grid, index, seq)"
                    ));
                }
                let fresh_scope =
                    last_decision.is_none_or(|prev| (prev.0, prev.1) != (key.0, key.1));
                if fresh_scope && *seq != 0 {
                    return Err(format!("line {n}: decision seq must restart at 0 per scope"));
                }
                last_decision = Some(key);
                stats.decisions += 1;
            }
            JournalLine::Scenario { grid, index, seq, t_s, fleet, event } => {
                let key = (scope_key(*grid, *index).0, scope_key(*grid, *index).1, *seq);
                if last_scenario.is_some_and(|prev| prev >= key) {
                    return Err(format!(
                        "line {n}: scenarios must be sorted by (grid, index, seq)"
                    ));
                }
                let fresh_scope =
                    last_scenario.is_none_or(|prev| (prev.0, prev.1) != (key.0, key.1));
                if fresh_scope {
                    if *seq != 0 {
                        return Err(format!("line {n}: scenario seq must restart at 0 per scope"));
                    }
                    last_scenario_t = None;
                }
                if !t_s.is_finite() || *t_s < 0.0 {
                    return Err(format!("line {n}: scenario time {t_s} must be finite and ≥ 0"));
                }
                if last_scenario_t.is_some_and(|prev| *t_s < prev) {
                    return Err(format!(
                        "line {n}: scenario times must be non-decreasing within a scope"
                    ));
                }
                last_scenario_t = Some(*t_s);
                if let Some(m) = event.module() {
                    if m >= *fleet {
                        return Err(format!(
                            "line {n}: scenario module {m} out of range for fleet {fleet}"
                        ));
                    }
                }
                last_scenario = Some(key);
                stats.scenarios += 1;
            }
            JournalLine::Total { histograms, .. } => {
                saw_total = true;
                validate_histograms(histograms).map_err(|e| format!("line {n}: {e}"))?;
            }
        }
        if i == 0 && !matches!(line, JournalLine::Meta { .. }) {
            return Err("line 1: journal must start with a meta line".to_string());
        }
    }
    if stats.lines == 0 {
        return Err("empty journal".to_string());
    }
    if !saw_total {
        return Err("journal has no total rollup line".to_string());
    }
    Ok(stats)
}

fn validate_histograms(hs: &BTreeMap<String, HistogramSnapshot>) -> Result<(), String> {
    for (name, h) in hs {
        let bucketed: u64 = h.buckets.values().sum();
        if bucketed != h.count {
            return Err(format!("histogram {name}: bucket sum {bucketed} != count {}", h.count));
        }
        if h.count > 0 && h.min > h.max {
            return Err(format!("histogram {name}: min {} > max {}", h.min, h.max));
        }
    }
    Ok(())
}

/// Validate a Chrome trace file; returns the event count.
pub fn validate_trace(trace: &str) -> Result<usize, String> {
    let parsed: ChromeTrace =
        serde_json::from_str(trace).map_err(|e| format!("trace schema violation: {e}"))?;
    if parsed.trace_events.is_empty() {
        return Err("trace has no events".to_string());
    }
    for (i, e) in parsed.trace_events.iter().enumerate() {
        match e.ph.as_str() {
            "X" => {
                if e.dur.is_none() {
                    return Err(format!("event {i} ({}): complete event without dur", e.name));
                }
            }
            "M" => {}
            other => return Err(format!("event {i} ({}): unexpected phase {other:?}", e.name)),
        }
    }
    Ok(parsed.trace_events.len())
}

/// Validate a metrics CSV; returns the data-row count.
pub fn validate_metrics_csv(csv: &str) -> Result<usize, String> {
    let mut lines = csv.lines();
    match lines.next() {
        Some(h) if h == METRICS_CSV_HEADER => {}
        other => return Err(format!("bad metrics CSV header: {other:?}")),
    }
    let want = METRICS_CSV_HEADER.split(',').count();
    let mut rows = 0;
    for (i, row) in lines.enumerate() {
        let got = row.split(',').count();
        if got != want {
            return Err(format!("row {}: {got} fields, expected {want}", i + 2));
        }
        rows += 1;
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Session;

    fn sample_report() -> ObsReport {
        let s = Session::install();
        let r = s.handle().expect("live session");
        crate::incr("direct.counter");
        let grid = r.begin_grid("cell", 3);
        for i in 0..3usize {
            r.run_item(grid, "cell", i, (i % 2 + 1) as u32, || {
                crate::label_item(|| format!("w{i}@100W"));
                crate::incr_by("scheme.plans", 6);
                crate::observe("mpi.wait_s", i as f64 + 0.5);
                crate::observe("mpi.wait_s", f64::INFINITY);
                let _g = crate::span("inner.phase");
            });
        }
        s.finish()
    }

    #[test]
    fn journal_validates_and_round_trips() {
        let report = sample_report();
        let stats = validate_journal(&report.journal_jsonl).expect("valid journal");
        assert_eq!(stats.grids, 1);
        assert_eq!(stats.cells, 3);
        assert!(report.journal_jsonl.ends_with('\n'));
        // totals aggregate cells + direct metrics
        assert!(report.journal_jsonl.contains("\"scheme.plans\":18"));
        assert!(report.journal_jsonl.contains("\"direct.counter\":1"));
        assert!(report.journal_jsonl.contains("\"nonfinite\":3"));
    }

    #[test]
    fn trace_validates_and_names_lanes() {
        let report = sample_report();
        let events = validate_trace(&report.trace_json).expect("valid trace");
        assert!(events >= 6, "3 items + inner spans + lane metadata, got {events}");
        assert!(report.trace_json.contains("driver"));
        assert!(report.trace_json.contains("worker-0"));
        assert!(report.trace_json.contains("w1@100W"));
    }

    #[test]
    fn metrics_csv_validates() {
        let report = sample_report();
        let rows = validate_metrics_csv(&report.metrics_csv).expect("valid csv");
        // 3 cells × (1 counter + 1 histogram) + total rows
        assert!(rows >= 8, "rows = {rows}");
        assert!(report.metrics_csv.contains("w2@100W"));
    }

    #[test]
    fn summary_mentions_totals() {
        let report = sample_report();
        assert!(report.summary.contains("scheme.plans"));
        assert!(report.summary.contains("cells: 3"));
    }

    fn balanced_tick(t_s: f64, job: u64, cap_w: f64) -> crate::ledger::LedgerTick {
        use crate::ledger::{Category, Domain, LedgerEntry, LedgerTick};
        let useful = 60.0;
        let headroom = 10.0;
        LedgerTick {
            t_s,
            dt_s: 0.5,
            cap_w,
            entries: vec![
                LedgerEntry::module(job, 0, Domain::Cpu, Category::Useful, useful),
                LedgerEntry::module(job, 0, Domain::Cpu, Category::Headroom, headroom),
                LedgerEntry::system_stranded(cap_w - useful - headroom),
            ],
        }
    }

    fn decision_record(t_s: f64, job: u64) -> crate::decision::DecisionRecord {
        crate::decision::DecisionRecord {
            t_s,
            job: Some(job),
            cap_w: 95.0,
            avail_w: 25.0,
            kind: crate::decision::DecisionKind::Defer { reason: "insufficient_power".into() },
        }
    }

    #[test]
    fn ledger_and_decisions_export_and_validate() {
        let s = Session::install_with_ledger();
        let r = s.handle().expect("live session");
        crate::ledger_tick(|| balanced_tick(0.0, 7, 95.0));
        crate::decision(|| decision_record(0.0, 7));
        let grid = r.begin_grid("cell", 1);
        r.run_item(grid, "cell", 0, 1, || {
            crate::ledger_tick(|| balanced_tick(1.0, 3, 80.0));
            crate::decision(|| decision_record(1.0, 3));
            crate::decision(|| decision_record(2.0, 3));
        });
        let report = s.finish();
        let stats = validate_journal(&report.journal_jsonl).expect("valid journal");
        assert_eq!(stats.ledgers, 2, "cell scope + direct scope");
        assert_eq!(stats.decisions, 3);
        assert!(report.journal_jsonl.contains("\"type\":\"ledger\""));
        assert!(report.journal_jsonl.contains("\"kind\":\"defer\""));
        let csv_stats = validate_ledger_csv(&report.ledger_csv).expect("valid ledger csv");
        // 2 ticks × 4 category rows; 3 bins per scope × 2 scopes
        assert_eq!(csv_stats.tick_rows, 8, "ledger csv tick rows");
        assert_eq!(csv_stats.bin_rows, 6, "ledger csv bin rows");
        assert!(report.summary.contains("ledger: 2 ticks, 0 violations"));
        assert!(report.summary.contains("decisions: 3"));
    }

    fn scenario_record(t_s: f64, module: u64) -> crate::scenario::ScenarioRecord {
        crate::scenario::ScenarioRecord {
            t_s,
            fleet: 8,
            kind: crate::scenario::ScenarioKind::Drift {
                module,
                dynamic: 1.03,
                leakage: 1.2,
                dram: 1.0,
            },
        }
    }

    #[test]
    fn scenario_lines_export_and_validate() {
        let s = Session::install();
        let r = s.handle().expect("live session");
        crate::scenario_event(|| scenario_record(5.0, 1));
        crate::scenario_event(|| scenario_record(9.0, 2));
        let grid = r.begin_grid("cell", 1);
        r.run_item(grid, "cell", 0, 1, || {
            crate::scenario_event(|| scenario_record(1.0, 0));
        });
        let report = s.finish();
        let stats = validate_journal(&report.journal_jsonl).expect("valid journal");
        assert_eq!(stats.scenarios, 3, "cell scope + 2 direct");
        assert!(report.journal_jsonl.contains("\"type\":\"scenario\""));
        assert!(report.journal_jsonl.contains("\"kind\":\"drift\""));
        assert!(report.summary.contains("scenario events: 3"));
    }

    #[test]
    fn scenario_validation_rejects_bad_records() {
        let run = |records: Vec<crate::scenario::ScenarioRecord>| {
            let s = Session::install();
            for rec in records {
                crate::scenario_event(|| rec.clone());
            }
            let report = s.finish();
            validate_journal(&report.journal_jsonl)
        };
        // module id outside the recorded fleet size
        let err = run(vec![scenario_record(1.0, 99)]).expect_err("out-of-range module");
        assert!(err.contains("out of range"), "{err}");
        // event times must be non-decreasing within a scope
        let err = run(vec![scenario_record(9.0, 1), scenario_record(5.0, 1)])
            .expect_err("non-monotonic times");
        assert!(err.contains("non-decreasing"), "{err}");
        // well-formed records pass
        assert!(run(vec![scenario_record(5.0, 1), scenario_record(5.0, 2)]).is_ok());
    }

    #[test]
    fn conservation_violations_fail_journal_validation() {
        let s = Session::install_with_ledger();
        crate::ledger_tick(|| crate::ledger::LedgerTick {
            t_s: 0.0,
            dt_s: 1.0,
            cap_w: 100.0,
            entries: vec![crate::ledger::LedgerEntry::system_stranded(50.0)],
        });
        let report = s.finish();
        let err = validate_journal(&report.journal_jsonl).expect_err("violation must fail");
        assert!(err.contains("conservation"), "{err}");
    }

    #[test]
    fn ledger_csv_validator_rejects_broken_conservation() {
        let s = Session::install_with_ledger();
        crate::ledger_tick(|| balanced_tick(0.0, 1, 95.0));
        let report = s.finish();
        // corrupt the useful-watts tick row: conservation re-check fires
        let tampered = report.ledger_csv.replacen(",useful,60", ",useful,59", 1);
        assert_ne!(tampered, report.ledger_csv, "tamper target must exist");
        let err = validate_ledger_csv(&tampered).expect_err("tampered csv must fail");
        assert!(err.contains("categories sum"), "{err}");
        assert!(validate_ledger_csv("nope\n").is_err());
        assert!(validate_ledger_csv(LEDGER_CSV_HEADER).is_err(), "no data rows");
    }

    #[test]
    fn plain_sessions_skip_the_ledger_but_keep_decisions() {
        let s = Session::install();
        crate::ledger_tick(|| panic!("ledger closure must not run without install_with_ledger"));
        crate::decision(|| decision_record(0.0, 1));
        let report = s.finish();
        assert!(report.ledger_csv.is_empty());
        let stats = validate_journal(&report.journal_jsonl).expect("valid journal");
        assert_eq!(stats.ledgers, 0);
        assert_eq!(stats.decisions, 1);
    }

    #[test]
    fn validators_reject_corruption() {
        let report = sample_report();
        let j = &report.journal_jsonl;
        // flip a counter value → round-trip still fine, but reorder breaks
        let mut lines: Vec<&str> = j.lines().collect();
        lines.swap(0, 1);
        let swapped = lines.join("\n");
        assert!(validate_journal(&swapped).is_err(), "meta must be first");
        assert!(validate_journal("").is_err());
        assert!(validate_journal("{\"type\":\"bogus\"}").is_err());
        assert!(validate_trace("{}").is_err());
        assert!(validate_metrics_csv("nope\n").is_err());
    }
}
