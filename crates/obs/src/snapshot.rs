//! Telemetry snapshots: the data model the live service plane publishes.
//!
//! A [`TelemetrySnapshot`] is one epoch-stamped, immutable view of the
//! fleet — per-module power / frequency / cap / duty / throttle plus the
//! cluster-level aggregates a scheduler dashboard needs. Snapshots are
//! produced by the simulation tick (the *sensor* side) and consumed by
//! arbitrarily many concurrent exporters and scrapers (the *exporter*
//! side) through a [`crate::registry::SnapshotRegistry`].
//!
//! Because readers never take a lock, every snapshot carries a
//! [`checksum`](TelemetrySnapshot::checksum) sealed at publish time:
//! [`TelemetrySnapshot::verify`] proves a read was not torn (see
//! `tests/registry_props.rs` for the property test that hammers this).

use serde::{Deserialize, Serialize};

/// One module's telemetry at a snapshot instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleSample {
    /// Fleet-wide module index.
    pub id: u64,
    /// Average module (CPU + DRAM) power draw in watts.
    pub power_w: f64,
    /// Effective frequency in GHz (clock × duty under modulation).
    pub freq_ghz: f64,
    /// Programmed RAPL cap in watts, if any.
    pub cap_w: Option<f64>,
    /// Run fraction in `[0, 1]` (1.0 except under clock modulation).
    pub duty: f64,
    /// Whether RAPL's dynamic control is actively limiting the module.
    pub throttled: bool,
}

/// One module's live drift alert (EWMA residual outside the z-band).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftAlertSample {
    /// The drifting module.
    pub module: u64,
    /// Measured − PVT-predicted power residual (W).
    pub residual_w: f64,
    /// How many tracked standard deviations out the residual sits.
    pub z: f64,
}

/// One `(bucket upper bound, cumulative-ready count)` pair; serializes
/// as a two-element array `[le, count]` to keep snapshot lines compact.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BucketCount(pub f64, pub u64);

/// One named histogram in a snapshot, in Prometheus-friendly shape:
/// per-bucket counts (non-cumulative; the exporter accumulates into
/// `le`-labelled cumulative buckets) plus `count`/`sum`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Metric name (fixed vocabulary — no JSON escaping needed).
    pub name: String,
    /// Finite observation count.
    pub count: u64,
    /// Sum of finite observations.
    pub sum: f64,
    /// `(upper bound, count)` per occupied bucket, ascending.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSample {
    /// Snapshot a [`crate::metrics::Histogram`] under `name`.
    pub fn from_histogram(name: &str, h: &crate::metrics::Histogram) -> Self {
        HistogramSample {
            name: name.to_string(),
            count: h.count,
            sum: h.sum,
            buckets: h
                .buckets
                .iter()
                .map(|(&k, &n)| BucketCount(crate::hist::bucket_upper_bound(k), n))
                .collect(),
        }
    }
}

/// One epoch-stamped view of the whole simulated cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TelemetrySnapshot {
    /// Publish sequence number, assigned by the registry (1, 2, 3, …;
    /// 0 is the registry's empty initial snapshot).
    pub epoch: u64,
    /// Simulated time of the snapshot (seconds).
    pub sim_time_s: f64,
    /// Fleet-level power draw (W).
    pub total_power_w: f64,
    /// Cluster-level power cap in effect (W); 0 when uncapped.
    pub cap_w: f64,
    /// Jobs currently running (0 outside a scheduling campaign).
    pub running_jobs: u64,
    /// Jobs currently queued (0 outside a scheduling campaign).
    pub queued_jobs: u64,
    /// Drift alerts raised over the producer's lifetime.
    pub drift_alerts: u64,
    /// Modules currently outside the drift z-band, in module-id order.
    pub alerts: Vec<DriftAlertSample>,
    /// Named histograms (JCT, solver iterations, latencies), name-sorted.
    pub hists: Vec<HistogramSample>,
    /// Per-module samples, in module-id order.
    pub modules: Vec<ModuleSample>,
    /// FNV-1a fingerprint over every other field, written by
    /// [`TelemetrySnapshot::seal`]. A reader that observes
    /// `verify() == true` holds an untorn snapshot.
    pub checksum: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

impl TelemetrySnapshot {
    /// The checksum of the current contents (excluding the stored
    /// `checksum` field itself). Floats hash by bit pattern, so the
    /// fingerprint is exact, not tolerance-based.
    pub fn compute_checksum(&self) -> u64 {
        let mut h = FNV_OFFSET;
        fnv(&mut h, &self.epoch.to_le_bytes());
        fnv(&mut h, &self.sim_time_s.to_bits().to_le_bytes());
        fnv(&mut h, &self.total_power_w.to_bits().to_le_bytes());
        fnv(&mut h, &self.cap_w.to_bits().to_le_bytes());
        fnv(&mut h, &self.running_jobs.to_le_bytes());
        fnv(&mut h, &self.queued_jobs.to_le_bytes());
        fnv(&mut h, &self.drift_alerts.to_le_bytes());
        fnv(&mut h, &(self.alerts.len() as u64).to_le_bytes());
        for a in &self.alerts {
            fnv(&mut h, &a.module.to_le_bytes());
            fnv(&mut h, &a.residual_w.to_bits().to_le_bytes());
            fnv(&mut h, &a.z.to_bits().to_le_bytes());
        }
        fnv(&mut h, &(self.hists.len() as u64).to_le_bytes());
        for hs in &self.hists {
            fnv(&mut h, hs.name.as_bytes());
            fnv(&mut h, &[0]);
            fnv(&mut h, &hs.count.to_le_bytes());
            fnv(&mut h, &hs.sum.to_bits().to_le_bytes());
            fnv(&mut h, &(hs.buckets.len() as u64).to_le_bytes());
            for b in &hs.buckets {
                fnv(&mut h, &b.0.to_bits().to_le_bytes());
                fnv(&mut h, &b.1.to_le_bytes());
            }
        }
        fnv(&mut h, &(self.modules.len() as u64).to_le_bytes());
        for m in &self.modules {
            fnv(&mut h, &m.id.to_le_bytes());
            fnv(&mut h, &m.power_w.to_bits().to_le_bytes());
            fnv(&mut h, &m.freq_ghz.to_bits().to_le_bytes());
            match m.cap_w {
                Some(c) => fnv(&mut h, &c.to_bits().to_le_bytes()),
                None => fnv(&mut h, &[0xFF]),
            }
            fnv(&mut h, &m.duty.to_bits().to_le_bytes());
            fnv(&mut h, &[u8::from(m.throttled)]);
        }
        h
    }

    /// Stamp `epoch` and write the checksum; done by the registry at
    /// publish time.
    pub fn seal(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self.checksum = self.compute_checksum();
        self
    }

    /// Whether the stored checksum matches the contents — i.e. the
    /// snapshot is internally consistent (not torn, not tampered).
    pub fn verify(&self) -> bool {
        self.checksum == self.compute_checksum()
    }

    /// One line of newline-delimited JSON (the streaming exporter's wire
    /// format). Hand-rolled rather than routed through `serde_json` so
    /// the serving plane's hot path allocates exactly one string and the
    /// wire format is visibly stable; the serde derives remain for
    /// consumers that want to parse the stream back (the roundtrip test
    /// below proves both agree).
    pub fn to_json_line(&self) -> String {
        // ~96 bytes per module sample plus a fixed-size header.
        let mut out = String::with_capacity(128 + 96 * self.modules.len());
        out.push_str("{\"epoch\":");
        out.push_str(&self.epoch.to_string());
        out.push_str(",\"sim_time_s\":");
        push_f64(&mut out, self.sim_time_s);
        out.push_str(",\"total_power_w\":");
        push_f64(&mut out, self.total_power_w);
        out.push_str(",\"cap_w\":");
        push_f64(&mut out, self.cap_w);
        out.push_str(",\"running_jobs\":");
        out.push_str(&self.running_jobs.to_string());
        out.push_str(",\"queued_jobs\":");
        out.push_str(&self.queued_jobs.to_string());
        out.push_str(",\"drift_alerts\":");
        out.push_str(&self.drift_alerts.to_string());
        out.push_str(",\"alerts\":[");
        for (i, a) in self.alerts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"module\":");
            out.push_str(&a.module.to_string());
            out.push_str(",\"residual_w\":");
            push_f64(&mut out, a.residual_w);
            out.push_str(",\"z\":");
            push_f64(&mut out, a.z);
            out.push('}');
        }
        out.push_str("],\"hists\":[");
        for (i, hs) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            out.push_str(&hs.name);
            out.push_str("\",\"count\":");
            out.push_str(&hs.count.to_string());
            out.push_str(",\"sum\":");
            push_f64(&mut out, hs.sum);
            out.push_str(",\"buckets\":[");
            for (j, b) in hs.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('[');
                push_f64(&mut out, b.0);
                out.push(',');
                out.push_str(&b.1.to_string());
                out.push(']');
            }
            out.push_str("]}");
        }
        out.push_str("],\"modules\":[");
        for (i, m) in self.modules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"id\":");
            out.push_str(&m.id.to_string());
            out.push_str(",\"power_w\":");
            push_f64(&mut out, m.power_w);
            out.push_str(",\"freq_ghz\":");
            push_f64(&mut out, m.freq_ghz);
            out.push_str(",\"cap_w\":");
            match m.cap_w {
                Some(c) => push_f64(&mut out, c),
                None => out.push_str("null"),
            }
            out.push_str(",\"duty\":");
            push_f64(&mut out, m.duty);
            out.push_str(",\"throttled\":");
            out.push_str(if m.throttled { "true" } else { "false" });
            out.push('}');
        }
        out.push_str("],\"checksum\":");
        out.push_str(&self.checksum.to_string());
        out.push('}');
        out
    }
}

/// Append `v` as a JSON number. Rust's `Display` for finite `f64` is the
/// shortest representation that roundtrips, which is valid JSON (`12.5`,
/// `640`, `1e300`). Non-finite values have no JSON number form, so they
/// are mapped to `null` — telemetry fields are physical quantities and
/// never legitimately NaN/infinite.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&v.to_string());
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetrySnapshot {
        TelemetrySnapshot {
            epoch: 0,
            sim_time_s: 12.5,
            total_power_w: 640.0,
            cap_w: 768.0,
            running_jobs: 3,
            queued_jobs: 1,
            drift_alerts: 2,
            alerts: vec![DriftAlertSample { module: 0, residual_w: 5.5, z: 6.25 }],
            hists: vec![HistogramSample {
                name: "sched.jct_s".to_string(),
                count: 2,
                sum: 3.5,
                buckets: vec![BucketCount(1.0625, 1), BucketCount(2.625, 1)],
            }],
            modules: vec![
                ModuleSample {
                    id: 0,
                    power_w: 80.0,
                    freq_ghz: 2.4,
                    cap_w: Some(90.0),
                    duty: 1.0,
                    throttled: true,
                },
                ModuleSample {
                    id: 1,
                    power_w: 20.0,
                    freq_ghz: 2.7,
                    cap_w: None,
                    duty: 1.0,
                    throttled: false,
                },
            ],
            checksum: 0,
        }
    }

    #[test]
    fn seal_then_verify_roundtrips() {
        let s = sample().seal(7);
        assert_eq!(s.epoch, 7);
        assert!(s.verify());
    }

    #[test]
    fn any_field_change_breaks_verification() {
        let sealed = sample().seal(7);
        let mut torn = sealed.clone();
        torn.total_power_w += 1.0;
        assert!(!torn.verify());
        let mut torn = sealed.clone();
        torn.modules[1].duty = 0.5;
        assert!(!torn.verify());
        let mut torn = sealed.clone();
        torn.modules[0].cap_w = None;
        assert!(!torn.verify());
        let mut torn = sealed.clone();
        torn.drift_alerts += 1;
        assert!(!torn.verify());
        let mut torn = sealed.clone();
        torn.alerts[0].z = 1.0;
        assert!(!torn.verify());
        let mut torn = sealed.clone();
        torn.hists[0].buckets[1].1 += 1;
        assert!(!torn.verify());
        let mut torn = sealed;
        torn.epoch += 1;
        assert!(!torn.verify());
    }

    #[test]
    fn json_line_shape_is_stable() {
        let s = sample().seal(3);
        let line = s.to_json_line();
        let expected = format!(
            "{{\"epoch\":3,\"sim_time_s\":12.5,\"total_power_w\":640,\"cap_w\":768,\
             \"running_jobs\":3,\"queued_jobs\":1,\"drift_alerts\":2,\
             \"alerts\":[{{\"module\":0,\"residual_w\":5.5,\"z\":6.25}}],\
             \"hists\":[{{\"name\":\"sched.jct_s\",\"count\":2,\"sum\":3.5,\
             \"buckets\":[[1.0625,1],[2.625,1]]}}],\"modules\":[\
             {{\"id\":0,\"power_w\":80,\"freq_ghz\":2.4,\"cap_w\":90,\"duty\":1,\"throttled\":true}},\
             {{\"id\":1,\"power_w\":20,\"freq_ghz\":2.7,\"cap_w\":null,\"duty\":1,\"throttled\":false}}\
             ],\"checksum\":{}}}",
            s.checksum
        );
        assert_eq!(line, expected);
        // non-finite floats cannot appear in a JSON number position
        let mut weird = sample();
        weird.total_power_w = f64::NAN;
        weird.sim_time_s = f64::INFINITY;
        let line = weird.seal(1).to_json_line();
        assert!(line.contains("\"total_power_w\":null"));
        assert!(line.contains("\"sim_time_s\":null"));
        assert!(!line.contains("NaN") && !line.contains("inf"));
    }

    #[test]
    fn json_line_roundtrips() {
        let s = sample().seal(3);
        let line = s.to_json_line();
        assert!(!line.contains('\n'));
        let back: TelemetrySnapshot = serde_json::from_str(&line).unwrap();
        assert_eq!(back, s);
        assert!(back.verify());
    }

    #[test]
    fn default_snapshot_is_sealable() {
        let s = TelemetrySnapshot::default().seal(0);
        assert!(s.verify());
        assert!(s.modules.is_empty());
    }
}
