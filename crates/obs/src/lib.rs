//! # vap-obs
//!
//! Observability for the vap stack: deterministic metrics, wall-clock
//! spans, and campaign timeline export — with **zero new external
//! dependencies** (serde/serde_json only, already in the workspace) and
//! zero cost when no session is live (one relaxed atomic load; see
//! `tests/no_alloc.rs`).
//!
//! The layer splits observability into two channels with different
//! guarantees:
//!
//! * **Deterministic channel** — counters and histograms
//!   ([`metrics::Metrics`]) recorded via [`incr`]/[`observe`]. These are
//!   a pure function of the work executed: the exported `journal.jsonl`
//!   is byte-identical between `--threads 1` and `--threads 4`
//!   (`tests/determinism.rs`).
//! * **Wall-clock side channel** — [`span`]s and per-item timing, which
//!   measure real elapsed time and export only into the Chrome-trace
//!   timeline (`trace.json`, loadable in Perfetto). Explicitly *not*
//!   deterministic, by design.
//!
//! `vap-obs` deliberately sits outside the `determinism` lint scope:
//! it is the one crate allowed to touch `Instant::now`, so the
//! instrumented crates (`vap-exec`, `vap-core`, `vap-sim`, `vap-mpi`)
//! stay free of wall-clock tokens.
//!
//! A third piece serves the **live service plane** (`vap-daemon`): the
//! [`registry::SnapshotRegistry`] publishes epoch-stamped, checksummed
//! [`snapshot::TelemetrySnapshot`]s to concurrent scrapers without ever
//! blocking the deterministic sim loop.
//!
//! ## Usage
//!
//! ```
//! let session = vap_obs::Session::install();
//! {
//!     let _phase = vap_obs::span("calibrate");
//!     vap_obs::incr("alpha.solves");
//!     vap_obs::observe("mpi.wait_s", 0.25);
//! }
//! let report = session.finish();
//! assert!(report.journal_jsonl.contains("alpha.solves"));
//! ```

// `deny`, not `forbid`: the snapshot registry opts back in with a
// module-level allow for its pointer-swap publication scheme — the one
// place in the crate where safe Rust would force a lock onto the
// scraper read path.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod decision;
pub mod drift;
pub mod export;
pub mod hist;
pub mod ledger;
pub mod metrics;
pub mod recorder;
pub mod registry;
pub mod scenario;
pub mod snapshot;
pub mod span;

pub use decision::{BudgetDelta, DecisionKind, DecisionRecord, WidthProbe};
pub use drift::{DriftAlert, DriftConfig, DriftDetector};
pub use export::{
    validate_journal, validate_ledger_csv, validate_metrics_csv, validate_trace, LedgerCsvStats,
    ObsReport,
};
pub use ledger::{Category, Domain, LedgerEntry, LedgerTable, LedgerTick};
pub use metrics::{Histogram, Metrics};
pub use recorder::{
    decision, enabled, grid_session, incr, incr_by, label_item, ledger_enabled, ledger_tick,
    observe, scenario_event, Session, SessionRef,
};
pub use registry::SnapshotRegistry;
pub use scenario::{ScenarioKind, ScenarioRecord};
pub use snapshot::{
    BucketCount, DriftAlertSample, HistogramSample, ModuleSample, TelemetrySnapshot,
};
pub use span::{span, Span};
