//! Log-linear (HDR-style) histogram bucketing.
//!
//! Buckets subdivide each power of two into [`SUB_BUCKETS`] equal-width
//! linear sub-buckets, read directly from the IEEE 754 exponent and the
//! top mantissa bits — no libm, so bucketing is exact and
//! platform-independent, which is what lets bucketed journals stay
//! byte-identical across hosts and `--threads` counts. With 16
//! sub-buckets the worst-case relative quantization error of a bucket
//! edge is 1/16 ≈ 6.25 % — tight enough for p50/p95/p99 queue and
//! latency reporting, sparse enough that a histogram over ten decades
//! stays a few hundred entries.
//!
//! The key encoding is `key = 16 · floor(log2(|v|)) + sub` where `sub`
//! is the top [`SUB_BUCKET_BITS`] mantissa bits. Zeros and subnormals
//! share the [`FLOOR_KEY`] bucket. Signs are folded (`|v|`): the
//! histograms here record durations, iteration counts and watt residual
//! magnitudes, where the spread matters and the sign is recorded by the
//! metric's name.

/// Linear sub-buckets per power of two.
pub const SUB_BUCKETS: u32 = 16;

/// Mantissa bits consumed by the sub-bucket index (`2^4 = 16`).
pub const SUB_BUCKET_BITS: u32 = 4;

/// The bucket shared by zeros and subnormals.
pub const FLOOR_KEY: i32 = -1023 * SUB_BUCKETS as i32;

/// The log-linear bucket key of a finite value.
pub fn bucket_index(v: f64) -> i32 {
    let bits = v.abs().to_bits();
    let exponent = ((bits >> 52) & 0x7FF) as i32;
    if exponent == 0 {
        return FLOOR_KEY;
    }
    let sub = ((bits >> (52 - SUB_BUCKET_BITS)) & u64::from(SUB_BUCKETS - 1)) as i32;
    (exponent - 1023) * SUB_BUCKETS as i32 + sub
}

/// Upper edge of bucket `key`: the smallest value that lands in the
/// *next* bucket. Exact (a dyadic fraction times a power of two), so
/// Prometheus `le` labels and quantile estimates are reproducible.
pub fn bucket_upper_bound(key: i32) -> f64 {
    if key <= FLOOR_KEY {
        return f64::MIN_POSITIVE;
    }
    let e = key.div_euclid(SUB_BUCKETS as i32);
    let sub = key.rem_euclid(SUB_BUCKETS as i32);
    (1.0 + (sub as f64 + 1.0) / SUB_BUCKETS as f64) * 2f64.powi(e)
}

/// Lower edge of bucket `key` (0 for the floor bucket).
pub fn bucket_lower_bound(key: i32) -> f64 {
    if key <= FLOOR_KEY {
        return 0.0;
    }
    let e = key.div_euclid(SUB_BUCKETS as i32);
    let sub = key.rem_euclid(SUB_BUCKETS as i32);
    (1.0 + sub as f64 / SUB_BUCKETS as f64) * 2f64.powi(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_monotone_in_magnitude() {
        let values = [0.001, 0.5, 0.9, 1.0, 1.0625, 1.5, 1.99, 2.0, 3.0, 8.0, 1000.0];
        let keys: Vec<i32> = values.iter().map(|&v| bucket_index(v)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "bucket keys must be monotone: {keys:?}");
    }

    #[test]
    fn sub_buckets_split_each_octave() {
        assert_eq!(bucket_index(1.0), 0);
        // 1.0625 = 1 + 1/16: the first sub-bucket boundary above 1.0
        assert_eq!(bucket_index(1.0625), 1);
        assert_eq!(bucket_index(1.99), 15);
        assert_eq!(bucket_index(2.0), 16);
        assert_eq!(bucket_index(0.5), -16);
        assert_eq!(bucket_index(-8.0), 48, "signs fold into magnitude");
    }

    #[test]
    fn zeros_and_subnormals_share_the_floor() {
        assert_eq!(bucket_index(0.0), FLOOR_KEY);
        assert_eq!(bucket_index(-0.0), FLOOR_KEY);
        assert_eq!(bucket_index(f64::MIN_POSITIVE / 2.0), FLOOR_KEY);
    }

    #[test]
    fn bounds_bracket_their_values() {
        for &v in &[0.001, 0.7, 1.0, 1.03, 1.99, 2.0, 37.5, 1e6, 1e-9] {
            let k = bucket_index(v);
            assert!(bucket_lower_bound(k) <= v, "lower({k}) > {v}");
            assert!(v < bucket_upper_bound(k), "upper({k}) <= {v}");
        }
    }

    #[test]
    fn bounds_tile_without_gaps() {
        for k in -40..40 {
            assert_eq!(
                bucket_upper_bound(k),
                bucket_lower_bound(k + 1),
                "buckets {k} and {} must share an edge",
                k + 1
            );
        }
    }

    #[test]
    fn relative_error_is_bounded_by_one_sub_bucket() {
        for &v in &[1.0, 5.3, 80.0, 1234.5] {
            let k = bucket_index(v);
            let width = bucket_upper_bound(k) - bucket_lower_bound(k);
            assert!(width / v <= 1.0 / 8.0, "bucket at {v} too wide: {width}");
        }
    }
}
