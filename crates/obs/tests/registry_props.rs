//! Property tests for the lock-free snapshot registry: under arbitrary
//! interleavings of publishes and concurrent reads, every observed
//! snapshot is fully consistent — its sealed checksum verifies, its
//! epoch is one the writer actually published, and epochs never run
//! backwards from any single reader's point of view.

use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use vap_obs::{ModuleSample, SnapshotRegistry, TelemetrySnapshot};

fn module_sample(id: u64, seed: u64) -> ModuleSample {
    // cheap deterministic value spread so consecutive snapshots differ
    // in every field the checksum covers
    let x = (seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 16) as f64;
    ModuleSample {
        id,
        power_w: 60.0 + (x % 55.0),
        freq_ghz: 1.2 + (x % 1.5),
        cap_w: if seed % 3 == 0 { None } else { Some(50.0 + (x % 65.0)) },
        duty: ((seed % 16) as f64 + 1.0) / 16.0,
        throttled: seed % 2 == 0,
    }
}

fn snapshot(seed: u64, modules: usize) -> TelemetrySnapshot {
    TelemetrySnapshot {
        sim_time_s: seed as f64 * 0.25,
        total_power_w: 90.0 * modules as f64,
        cap_w: 80.0 * modules as f64,
        running_jobs: seed % 7,
        queued_jobs: seed % 5,
        modules: (0..modules as u64)
            .map(|id| module_sample(id, seed.wrapping_add(id)))
            .collect(),
        ..TelemetrySnapshot::default()
    }
}

proptest! {
    // Thread spawn/join per case is the dominant cost; a few dozen cases
    // with hundreds of publishes each gives plenty of interleavings.
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// No reader ever observes a torn snapshot, an epoch the writer
    /// never published, or a backwards-running epoch sequence.
    #[test]
    fn concurrent_reads_never_tear(
        publishes in 1usize..400,
        readers in 1usize..5,
        modules in 0usize..9,
        seed in any::<u64>(),
    ) {
        let registry = Arc::new(SnapshotRegistry::new());
        let stop = Arc::new(AtomicBool::new(false));
        let published = Arc::new(AtomicU64::new(0));

        let handles: Vec<_> = (0..readers)
            .map(|_| {
                let registry = Arc::clone(&registry);
                let stop = Arc::clone(&stop);
                let published = Arc::clone(&published);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    let mut seen = 0u64;
                    loop {
                        let before = registry.epoch();
                        let snap = registry.read();
                        let after = registry.epoch();
                        assert!(snap.verify(), "torn snapshot at epoch {}", snap.epoch);
                        // seqlock check: a stable epoch window pins the
                        // snapshot to exactly that publish
                        if before == after {
                            assert_eq!(snap.epoch, before, "stale pointer inside stable epoch window");
                        }
                        assert!(
                            snap.epoch <= published.load(Ordering::SeqCst),
                            "epoch {} never published", snap.epoch
                        );
                        assert!(snap.epoch >= last, "epoch ran backwards");
                        last = snap.epoch;
                        seen += 1;
                        if stop.load(Ordering::Relaxed) {
                            return seen;
                        }
                    }
                })
            })
            .collect();

        for i in 0..publishes {
            let epoch = registry.publish(snapshot(seed.wrapping_add(i as u64), modules));
            published.store(epoch, Ordering::SeqCst);
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            let seen = h.join().expect("reader panicked");
            prop_assert!(seen >= 1);
        }
        prop_assert_eq!(registry.epoch(), publishes as u64);

        // after the barrier (all readers joined) one quiescent publish
        // reclaims the whole retired backlog
        registry.publish(snapshot(seed, modules));
        prop_assert!(registry.retired_len() <= 1);
    }

    /// Serialized publish/read (no concurrency) round-trips every field
    /// exactly — the registry adds the epoch and checksum, nothing else.
    #[test]
    fn publish_then_read_roundtrips_exactly(
        seed in any::<u64>(),
        modules in 0usize..17,
    ) {
        let registry = SnapshotRegistry::new();
        let original = snapshot(seed, modules);
        let epoch = registry.publish(original.clone());
        let back = registry.read();
        prop_assert_eq!(back.epoch, epoch);
        prop_assert!(back.verify());
        prop_assert_eq!(&back.modules, &original.modules);
        prop_assert_eq!(back.sim_time_s.to_bits(), original.sim_time_s.to_bits());
        prop_assert_eq!(back.total_power_w.to_bits(), original.total_power_w.to_bits());
        prop_assert_eq!(back.running_jobs, original.running_jobs);
        prop_assert_eq!(back.queued_jobs, original.queued_jobs);
    }
}
