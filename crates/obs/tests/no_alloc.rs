//! The no-op recorder must add **zero allocations** on the hot path.
//!
//! The instrumentation sites sit inside `vap-exec` work loops and the
//! RAPL solver — code the `campaign` Criterion bench holds to
//! within-noise of `BENCH_campaign.json` when observability is off. This
//! test pins the mechanism behind that: with no live session, every
//! entry point returns after one relaxed atomic load, before any TLS
//! access or allocation.
//!
//! This file is its own integration-test binary on purpose: no other
//! test here ever installs a `Session`, so the disabled fast path is
//! what actually runs.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    // Per-thread count: the libtest harness keeps its own threads alive
    // during the measured window, and their bookkeeping must not land in
    // our tally. Const-init so the first access never allocates.
    static THREAD_ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // try_with: TLS may already be torn down when a thread exits.
        let _ = THREAD_ALLOCATIONS.try_with(|count| count.set(count.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_hot_path_does_not_allocate() {
    assert!(!vap_obs::enabled(), "this test binary must never install a session");

    // Warm up whatever lazy state the first calls might initialize.
    vap_obs::incr("warmup");
    vap_obs::observe("warmup.h", 1.0);
    drop(vap_obs::span("warmup.span"));

    let before = THREAD_ALLOCATIONS.with(Cell::get);
    for i in 0..100_000u64 {
        vap_obs::incr("exec.cells");
        vap_obs::incr_by("scheme.plans", 6);
        vap_obs::observe("mpi.wait_s", i as f64);
        vap_obs::label_item(|| unreachable!("label closures must not run when disabled"));
        vap_obs::ledger_tick(|| unreachable!("ledger closures must not run when disabled"));
        vap_obs::decision(|| unreachable!("decision closures must not run when disabled"));
        let _span = vap_obs::span("cell");
    }
    let after = THREAD_ALLOCATIONS.with(Cell::get);

    assert_eq!(after - before, 0, "no-op recorder allocated {} times", after - before);
}
