//! Zero-realloc capacity regression guard (`harness = false` so the
//! counting allocator sees only this binary's work, not the libtest
//! harness bookkeeping).
//!
//! The fleet-scale constructors preallocate every column and per-module
//! buffer exactly: `FleetState::new` builds flat columns from
//! exact-size iterators, and `Cluster::with_size` samples the fleet and
//! maps it into the module vector with the P-state table hoisted behind
//! one shared `Arc`. A single `realloc` on these paths means a capacity
//! hint regressed — at 1M modules that's the difference between one
//! clean allocation per column and O(log n) copies of hundreds of
//! megabytes.

use vap_bench::CountingAllocator;
use vap_model::systems::SystemSpec;
use vap_sim::cluster::Cluster;
use vap_sim::fleet::FleetState;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

fn main() {
    // SoA fleet at 100k modules: flat columns, zero reallocs.
    ALLOC.start();
    let fleet = FleetState::new(SystemSpec::ha8k(), 100_000, 2015);
    let counts = ALLOC.stop();
    assert_eq!(fleet.len(), 100_000);
    assert_eq!(
        counts.reallocs, 0,
        "FleetState::new(100k) reallocated {} times — a column lost its capacity hint",
        counts.reallocs
    );
    assert!(counts.allocs > 0, "counting window saw no allocations at all");
    println!(
        "alloc_regression: FleetState::new(100k): {} allocs, 0 reallocs",
        counts.allocs
    );

    // Adopting a cluster into the SoA layout is also realloc-free
    // (every column is Vec::with_capacity(n) + exactly n pushes).
    let small = Cluster::with_size(SystemSpec::ha8k(), 2_000, 2015);
    ALLOC.start();
    let adopted = FleetState::from_cluster(&small);
    let counts = ALLOC.stop();
    assert_eq!(adopted.len(), 2_000);
    assert_eq!(
        counts.reallocs, 0,
        "FleetState::from_cluster(2k) reallocated {} times",
        counts.reallocs
    );
    println!(
        "alloc_regression: FleetState::from_cluster(2k): {} allocs, 0 reallocs",
        counts.allocs
    );

    // AoS cluster at 10k modules: one shared P-state table, exact-size
    // module vector, zero reallocs.
    ALLOC.start();
    let cluster = Cluster::with_size(SystemSpec::ha8k(), 10_000, 2015);
    let counts = ALLOC.stop();
    assert_eq!(cluster.len(), 10_000);
    assert_eq!(
        counts.reallocs, 0,
        "Cluster::with_size(10k) reallocated {} times — preallocation regressed",
        counts.reallocs
    );
    println!(
        "alloc_regression: Cluster::with_size(10k): {} allocs, 0 reallocs",
        counts.allocs
    );

    // The observability ledger with no session installed: the closures
    // must never run (they'd panic) and the disabled path must not touch
    // the allocator at all — each call site is one relaxed atomic load.
    assert!(!vap_obs::ledger_enabled(), "no session installed in this binary");
    ALLOC.start();
    for _ in 0..100_000 {
        vap_obs::ledger_tick(|| unreachable!("ledger closures must not run when disabled"));
        vap_obs::decision(|| unreachable!("decision closures must not run when disabled"));
    }
    let counts = ALLOC.stop();
    assert_eq!(
        counts.allocs, 0,
        "disabled ledger/decision sites allocated {} times — the off path must be allocation-free",
        counts.allocs
    );
    assert_eq!(counts.reallocs, 0);
    println!("alloc_regression: 100k disabled ledger_tick+decision: 0 allocs");

    println!("alloc_regression: ok");
}
