//! Fleet-scale benchmarks for the struct-of-arrays layout.
//!
//! Measures `FleetState` construction and the fleet-native PVT sweep at
//! 10k / 100k / 1M modules. The SoA columns turn both into flat batch
//! loops, so the expectation — enforced by `tests/bench_json.rs` against
//! the committed `BENCH_fleet.json` record — is near-linear scaling:
//! 10x the modules costs about 10x the time, not 100x. The committed
//! numbers themselves come from the `fleet_timing` binary (plain
//! `Instant` medians), which runs anywhere `cargo run --release` does;
//! this bench exists for interactive before/after comparisons during
//! optimization work.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vap_core::pvt::PowerVariationTable;
use vap_model::systems::SystemSpec;
use vap_sim::fleet::FleetState;
use vap_workloads::{catalog, spec::WorkloadId};

const SIZES: [usize; 3] = [10_000, 100_000, 1_000_000];

fn bench_construct(c: &mut Criterion) {
    let mut g = c.benchmark_group("fleet_construct");
    g.sample_size(10);
    for n in SIZES {
        g.bench_function(format!("modules_{n}"), |b| {
            b.iter(|| black_box(FleetState::new(SystemSpec::ha8k(), n, 2015)))
        });
    }
    g.finish();
}

fn bench_pvt_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("fleet_pvt_sweep");
    g.sample_size(10);
    let micro = catalog::get(WorkloadId::Stream);
    let threads = vap_exec::available_parallelism();
    for n in SIZES {
        g.bench_function(format!("modules_{n}"), |b| {
            let mut fleet = FleetState::new(SystemSpec::ha8k(), n, 2015);
            b.iter(|| {
                black_box(PowerVariationTable::generate_from_fleet(
                    &mut fleet, &micro, 2015, threads,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(fleet, bench_construct, bench_pvt_sweep);
criterion_main!(fleet);
