//! Wall-clock timing for the scenario-engine record (`BENCH_scenario.json`).
//!
//! A plain `Instant` harness rather than criterion, matching
//! `fleet_timing`: the committed record needs one honest median per
//! case, runs on any host `cargo run --release` reaches, and prints the
//! record shape directly so the numbers can be pasted into
//! `BENCH_scenario.json` (whose fields `tests/bench_json.rs` holds to
//! measured, floor-hitting values).
//!
//! Cases:
//! - `driftstudy_96_s` — the full driftstudy grid (8 scenarios × 3
//!   re-calibration policies × 2 caps, 120 control steps per cell) at
//!   96 modules, the committed `--bin driftstudy` configuration.
//! - `gen_mixed_10k_s` — schedule generation + `(at_s, seq)` ordering
//!   for the `mixed` composite at 10k modules.
//! - `aging_apply_{96,10k}_events_per_s` — perturbation application
//!   throughput against the struct-of-arrays [`FleetState`], using the
//!   `aging` stream because its event count is exactly `6 × modules`
//!   (a deterministic denominator) and every event exercises the
//!   drift-skew recompute hot path.

use std::hint::black_box;
use std::time::Instant;

use vap_model::systems::SystemSpec;
use vap_report::experiments::drift_study;
use vap_report::RunOptions;
use vap_scenario::{Scenario, ScenarioRuntime};
use vap_sim::fleet::FleetState;

/// Simulated horizon every case schedules against (matches driftstudy).
const HORIZON_S: f64 = 3600.0;

/// Median of `reps` timed runs of `f` (seconds).
fn median_s<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(f());
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Apply the full `aging` schedule to a fresh fleet, returning
/// (events applied, events per second). Every event lands on the
/// `set_drift_skew` recompute path, so this is the per-event cost the
/// daemon and driftstudy pay while a scenario is live.
fn aging_apply_events_per_s(n: usize, seed: u64) -> (usize, f64) {
    let mut fleet = FleetState::new(SystemSpec::ha8k(), n, seed);
    let mut sc = ScenarioRuntime::new(Scenario::Aging, n, HORIZON_S, seed);
    let total = sc.remaining();
    assert_eq!(total, 6 * n, "aging schedules exactly 6 steps per module");
    let t0 = Instant::now();
    let effects = sc.advance_fleet(HORIZON_S, &mut fleet);
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(effects.len(), total, "every scheduled event must apply");
    black_box(&effects);
    (total, total as f64 / elapsed)
}

fn main() {
    let seed = 2015u64;
    let threads = vap_exec::available_parallelism();
    let mut lines: Vec<String> = Vec::new();

    let opts = RunOptions {
        modules: Some(96),
        seed,
        threads: Some(threads),
        ..RunOptions::default()
    };
    let study = median_s(3, || drift_study::run(&opts));
    eprintln!("driftstudy_96: {study:.4} s (median of 3, {threads} threads)");
    lines.push(format!("    \"driftstudy_96_s\": {study:.4},"));

    let gen = median_s(5, || Scenario::Mixed.events(10_000, HORIZON_S, seed));
    let count = Scenario::Mixed.events(10_000, HORIZON_S, seed).len();
    eprintln!("gen_mixed_10k: {gen:.4} s (median of 5, {count} events)");
    lines.push(format!("    \"gen_mixed_10k_s\": {gen:.4},"));

    for (n, tag, reps) in [(96usize, "96", 5usize), (10_000, "10k", 3)] {
        let mut runs: Vec<f64> = Vec::with_capacity(reps);
        let mut total = 0usize;
        for _ in 0..reps {
            let (count, eps) = aging_apply_events_per_s(n, seed);
            total = count;
            runs.push(eps);
        }
        runs.sort_by(f64::total_cmp);
        let eps = runs[runs.len() / 2];
        eprintln!("aging_apply_{tag}: {eps:.0} events/s (median of {reps}, {total} events)");
        lines.push(format!("    \"aging_apply_{tag}_events_per_s\": {eps:.0},"));
    }
    if let Some(last) = lines.last_mut() {
        *last = last.trim_end_matches(',').to_string();
    }

    println!("{{\n  \"results\": {{\n{}\n  }}\n}}", lines.join("\n"));
}
