//! Wall-clock timing for the fleet-scale record (`BENCH_fleet.json`).
//!
//! A plain `Instant` harness rather than criterion: the committed record
//! needs one honest median per case, runs on any host `cargo run
//! --release` reaches, and prints the record shape directly so the
//! numbers can be pasted into `BENCH_fleet.json` (whose fields
//! `tests/bench_json.rs` holds to measured, target-hitting values).
//!
//! Cases:
//! - `construct_{10k,100k,1m}_s` — `FleetState::new` at each size.
//! - `pvt_sweep_{10k,100k,1m}_s` — fleet-native variation sweep
//!   (`PowerVariationTable::generate_from_fleet`).
//! - `campaign_100k_s` — a fig7-equivalent budgeting campaign at 100k
//!   modules: construction + PVT sweep + per-workload calibration +
//!   α-solve and per-module allocations across the fig7 budget grid.
//! - `sched_events_per_s` — event-queue throughput (push + pop of 1M
//!   heap events), the hot path of the discrete-event scheduler.

use std::hint::black_box;
use std::time::Instant;

use vap_core::alpha::{allocations, raw_alpha};
use vap_core::pmt::PowerModelTable;
use vap_core::pvt::PowerVariationTable;
use vap_core::testrun::single_module_test_run;
use vap_model::linear::Alpha;
use vap_model::systems::SystemSpec;
use vap_model::units::Watts;
use vap_sched::{Event, EventQueue};
use vap_sim::cluster::Cluster;
use vap_sim::fleet::FleetState;
use vap_workloads::{catalog, spec::WorkloadId};

/// Median of `reps` timed runs of `f` (seconds).
fn median_s<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(f());
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// The fig7 budget grid: per-module cap levels in watts.
const CAP_LEVELS_W: [f64; 6] = [50.0, 65.0, 80.0, 95.0, 110.0, 115.0];

/// One fig7-equivalent campaign at fleet scale: sweep the fleet for its
/// PVT, calibrate a per-workload PMT from a single probe test run (the
/// paper's "one test run + PVT scaling" protocol), then solve α and
/// materialize per-module allocations at every budget level.
fn campaign(n: usize, seed: u64, threads: usize) -> f64 {
    let mut fleet = FleetState::new(SystemSpec::ha8k(), n, seed);
    let pvt = PowerVariationTable::generate_from_fleet(&mut fleet, &micro(), seed, threads);
    // The probe cluster shares the fleet's seed, so its module 0 is the
    // same silicon draw as the fleet's module 0 — the PVT entry matches.
    let mut probe = Cluster::with_size(SystemSpec::ha8k(), 8, seed);
    let ids: Vec<usize> = (0..n).collect();
    let mut acc = 0.0f64;
    for w in WorkloadId::EVALUATED {
        let spec = catalog::get(w);
        let test = single_module_test_run(&mut probe, 0, &spec, seed);
        let pmt = match PowerModelTable::calibrate(&pvt, &test, &ids) {
            Ok(pmt) => pmt,
            Err(e) => panic!("calibration at {n} modules failed: {e:?}"),
        };
        for cap_w in CAP_LEVELS_W {
            let budget = Watts(cap_w * n as f64);
            let alpha = Alpha::saturating(raw_alpha(budget, &pmt));
            let allocs = allocations(&pmt, alpha);
            acc += allocs[n / 2].p_cpu.value();
            black_box(&allocs);
        }
    }
    acc
}

fn micro() -> vap_workloads::spec::WorkloadSpec {
    catalog::get(WorkloadId::Stream)
}

/// Event-queue throughput: push then drain `total` events through the
/// scheduler's binary heap, interleaving the three event kinds at
/// clustered timestamps (the worst case for heap churn).
fn queue_events_per_s(total: usize) -> f64 {
    let t0 = Instant::now();
    let mut q = EventQueue::new();
    for i in 0..total {
        let t = (i % 4096) as f64 * 0.25;
        let ev = match i % 3 {
            0 => Event::Arrival { job: i },
            1 => Event::Completion { job: i, epoch: i as u64 },
            _ => Event::CapChange { cap: Watts(50.0 + (i % 64) as f64) },
        };
        q.push(t, ev);
    }
    let mut popped = 0usize;
    while let Some((t, ev)) = q.pop() {
        black_box((t, &ev));
        popped += 1;
    }
    assert_eq!(popped, total, "queue must drain every event exactly once");
    // push + pop both traverse the heap: count each event twice.
    (2 * total) as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let seed = 2015u64;
    let threads = vap_exec::available_parallelism();
    let sizes: [(usize, &str, usize); 3] =
        [(10_000, "10k", 5), (100_000, "100k", 3), (1_000_000, "1m", 1)];

    let mut lines: Vec<String> = Vec::new();
    for (n, tag, reps) in sizes {
        let construct = median_s(reps, || FleetState::new(SystemSpec::ha8k(), n, seed));
        eprintln!("construct_{tag}: {construct:.4} s (median of {reps})");
        lines.push(format!("    \"construct_{tag}_s\": {construct:.4},"));
    }
    for (n, tag, reps) in sizes {
        let micro = micro();
        let mut fleet = FleetState::new(SystemSpec::ha8k(), n, seed);
        let sweep = median_s(reps, || {
            PowerVariationTable::generate_from_fleet(&mut fleet, &micro, seed, threads)
        });
        eprintln!("pvt_sweep_{tag}: {sweep:.4} s (median of {reps})");
        lines.push(format!("    \"pvt_sweep_{tag}_s\": {sweep:.4},"));
    }

    let camp = median_s(3, || campaign(100_000, seed, threads));
    eprintln!("campaign_100k: {camp:.4} s (median of 3)");
    lines.push(format!("    \"campaign_100k_s\": {camp:.4},"));

    let eps = {
        let mut runs: Vec<f64> = (0..3).map(|_| queue_events_per_s(1_000_000)).collect();
        runs.sort_by(f64::total_cmp);
        runs[runs.len() / 2]
    };
    eprintln!("sched_events_per_s: {eps:.0} (median of 3, 1M events)");
    lines.push(format!("    \"sched_events_per_s\": {eps:.0}"));

    println!("{{\n  \"results\": {{\n{}\n  }}\n}}", lines.join("\n"));
}
