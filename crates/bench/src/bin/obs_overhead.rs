//! `obs-overhead`: measures what the watt-provenance ledger costs a real
//! campaign. Runs the fig. 7 grid twice per repetition — recorder off
//! (the shipped default: every `ledger_tick` site is one relaxed atomic
//! load) and with `Session::install_with_ledger` armed — and reports the
//! medians plus the relative overhead as hand-rolled JSON for
//! `BENCH_obs.json`. Sessions are dropped without export so the numbers
//! time attribution itself, not journal serialization.
//!
//! ```text
//! obs-overhead --modules 48 --reps 5 --out BENCH_obs.json
//! ```

use std::time::Instant;
use vap_report::experiments::fig7;
use vap_report::options::RunOptions;

struct Args {
    modules: usize,
    reps: usize,
    seed: u64,
    out: Option<String>,
}

impl Args {
    fn parse(argv: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut args = Args { modules: 48, reps: 5, seed: 2015, out: None };
        let mut it = argv;
        while let Some(flag) = it.next() {
            let mut take = |name: &str| -> Result<String, String> {
                it.next().ok_or_else(|| format!("{name} requires a value"))
            };
            match flag.as_str() {
                "--modules" => {
                    args.modules =
                        take("--modules")?.parse().map_err(|e| format!("--modules: {e}"))?;
                }
                "--reps" => {
                    args.reps = take("--reps")?.parse().map_err(|e| format!("--reps: {e}"))?;
                    if args.reps == 0 {
                        return Err("--reps must be at least 1".into());
                    }
                }
                "--seed" => args.seed = take("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
                "--out" => args.out = Some(take("--out")?),
                _ => {
                    return Err(format!(
                        "unknown flag {flag} (usage: [--modules N] [--reps R] [--seed S] [--out PATH])"
                    ))
                }
            }
        }
        Ok(args)
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Time `reps` fig. 7 campaigns, with or without the ledger armed.
fn time_campaigns(opts: &RunOptions, reps: usize, ledger: bool) -> Vec<f64> {
    (0..reps)
        .map(|_| {
            let session = ledger.then(vap_obs::Session::install_with_ledger);
            let start = Instant::now();
            let result = fig7::run(opts);
            let elapsed = start.elapsed().as_secs_f64();
            assert!(!result.rows.is_empty(), "campaign produced no rows");
            drop(session);
            elapsed
        })
        .collect()
}

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let opts = RunOptions { modules: Some(args.modules), seed: args.seed, ..RunOptions::default() };

    // Interleaving off/on reps would be fairer under thermal drift, but
    // campaigns are seconds long on cold caches either way; keep the two
    // series separate so each is a clean warm-up ramp.
    let mut off = time_campaigns(&opts, args.reps, false);
    let mut on = time_campaigns(&opts, args.reps, true);
    let off_median = median(&mut off);
    let on_median = median(&mut on);
    let overhead_pct = 100.0 * (on_median - off_median) / off_median;

    let report = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"modules\": {},\n  \"reps\": {},\n  \
         \"ledger_off_median_s\": {off_median:.4},\n  \"ledger_on_median_s\": {on_median:.4},\n  \
         \"overhead_pct\": {overhead_pct:.2}\n}}\n",
        args.modules, args.reps,
    );
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &report) {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            }
            println!("wrote {path}");
            print!("{report}");
        }
        None => print!("{report}"),
    }
}
