//! Shared configuration for the vap benchmark suite (see benches/), plus
//! the counting allocator behind the zero-realloc capacity regression
//! test (`tests/alloc_regression.rs`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Allocation counts observed between [`CountingAllocator::start`] and
/// [`CountingAllocator::stop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocCounts {
    /// Fresh allocations (`alloc` + `alloc_zeroed`).
    pub allocs: u64,
    /// Grow/shrink-in-place-or-move calls — the thing a correctly
    /// preallocated construction path must never trigger.
    pub reallocs: u64,
    /// Frees.
    pub deallocs: u64,
}

/// A `System`-backed global allocator that counts calls while a window is
/// open.
///
/// Install it with `#[global_allocator]` in a `harness = false` test
/// binary, bracket the code under scrutiny with `start()`/`stop()`, and
/// assert on the returned [`AllocCounts`]. Counting uses relaxed atomics:
/// the regression tests are single-threaded and only ever compare against
/// zero, so no ordering subtleties apply.
pub struct CountingAllocator {
    enabled: AtomicBool,
    allocs: AtomicU64,
    reallocs: AtomicU64,
    deallocs: AtomicU64,
}

impl CountingAllocator {
    /// A fresh allocator with counting disabled.
    pub const fn new() -> Self {
        CountingAllocator {
            enabled: AtomicBool::new(false),
            allocs: AtomicU64::new(0),
            reallocs: AtomicU64::new(0),
            deallocs: AtomicU64::new(0),
        }
    }

    /// Zero the counters and open a counting window.
    pub fn start(&self) {
        self.allocs.store(0, Ordering::Relaxed);
        self.reallocs.store(0, Ordering::Relaxed);
        self.deallocs.store(0, Ordering::Relaxed);
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Close the counting window and return what it saw.
    pub fn stop(&self) -> AllocCounts {
        self.enabled.store(false, Ordering::Relaxed);
        AllocCounts {
            allocs: self.allocs.load(Ordering::Relaxed),
            reallocs: self.reallocs.load(Ordering::Relaxed),
            deallocs: self.deallocs.load(Ordering::Relaxed),
        }
    }

    fn count(&self, counter: &AtomicU64) {
        if self.enabled.load(Ordering::Relaxed) {
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: pure pass-through to `System`; the only added behavior is
// relaxed counter bumps, which allocate nothing and cannot reenter.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.count(&self.allocs);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.count(&self.allocs);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.count(&self.deallocs);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.count(&self.reallocs);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}
