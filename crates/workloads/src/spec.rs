//! Workload specification types.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};
use vap_model::boundedness::Boundedness;
use vap_model::power::PowerActivity;
use vap_model::units::{GigaHertz, Seconds};
use vap_model::variability::ModuleVariation;
use vap_mpi::program::{Op, Program, ProgramBuilder};
use vap_sim::cluster::Cluster;
use vap_sim::fleet::FleetState;

/// Identifier for the benchmarks of §3.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WorkloadId {
    /// *DGEMM — HPCC matrix multiplication (MKL-style threaded BLAS-3).
    Dgemm,
    /// *STREAM — HPCC sustainable memory bandwidth (AVX-optimized).
    Stream,
    /// NPB EP — embarrassingly parallel Gaussian variates, Class D.
    Ep,
    /// NPB BT-MZ — block tri-diagonal solver, Class E.
    Bt,
    /// NPB SP-MZ — scalar penta-diagonal solver, Class E.
    Sp,
    /// MHD — 3-D magneto-hydro-dynamics with the Modified Leapfrog method.
    Mhd,
    /// mVMC — variational Monte Carlo mini-app from the FIBER suite.
    Mvmc,
}

impl WorkloadId {
    /// All seven benchmarks.
    pub const ALL: [WorkloadId; 7] = [
        WorkloadId::Dgemm,
        WorkloadId::Stream,
        WorkloadId::Ep,
        WorkloadId::Bt,
        WorkloadId::Sp,
        WorkloadId::Mhd,
        WorkloadId::Mvmc,
    ];

    /// The six benchmarks evaluated under power budgets (Table 4 / Fig. 7)
    /// — EP is used for the Fig. 1 variability study only.
    pub const EVALUATED: [WorkloadId; 6] = [
        WorkloadId::Dgemm,
        WorkloadId::Stream,
        WorkloadId::Mhd,
        WorkloadId::Bt,
        WorkloadId::Sp,
        WorkloadId::Mvmc,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadId::Dgemm => "*DGEMM",
            WorkloadId::Stream => "*STREAM",
            WorkloadId::Ep => "NPB-EP",
            WorkloadId::Bt => "NPB-BT",
            WorkloadId::Sp => "NPB-SP",
            WorkloadId::Mhd => "MHD",
            WorkloadId::Mvmc => "mVMC",
        }
    }

    /// Stable small integer used for deterministic per-workload RNG
    /// streams.
    pub fn index(self) -> u64 {
        match self {
            WorkloadId::Dgemm => 0,
            WorkloadId::Stream => 1,
            WorkloadId::Ep => 2,
            WorkloadId::Bt => 3,
            WorkloadId::Sp => 4,
            WorkloadId::Mhd => 5,
            WorkloadId::Mvmc => 6,
        }
    }
}

impl std::fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How a workload's per-module power deviations relate to the deviations
/// the *STREAM PVT microbenchmark observes.
///
/// A module whose dynamic-power multiplier deviates by `δ` under STREAM
/// deviates by `rho·δ + idio·z` under this workload, with `z` a
/// deterministic per-(workload, module) standard normal. `rho = 1, idio =
/// 0` means the PVT transfers perfectly; smaller `rho` / larger `idio`
/// produce exactly the calibration error the paper measures in Fig. 6
/// (<5% for most benchmarks, ≈10% for NPB-BT).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationResponse {
    /// Correlation of CPU dynamic-power deviations with the microbenchmark.
    pub dynamic_rho: f64,
    /// Idiosyncratic per-module CPU deviation (std-dev of the multiplier).
    pub dynamic_idio: f64,
    /// Correlation of DRAM power deviations with the microbenchmark.
    pub dram_rho: f64,
    /// Idiosyncratic per-module DRAM deviation.
    pub dram_idio: f64,
}

impl VariationResponse {
    /// Perfect transfer from the microbenchmark (what the PVT assumes).
    pub fn faithful() -> Self {
        VariationResponse { dynamic_rho: 1.0, dynamic_idio: 0.0, dram_rho: 1.0, dram_idio: 0.0 }
    }
}

/// The communication structure of a benchmark, from which its SPMD program
/// is generated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CommShape {
    /// No inter-rank communication at all (*DGEMM, *STREAM as run in the
    /// paper: independent per-module kernels timed individually).
    EmbarrassinglyParallel,
    /// One small allreduce of the tallies at the very end (NPB EP).
    FinalAllreduce {
        /// Reduction payload in bytes.
        bytes: u64,
    },
    /// Iterative nearest-neighbor halo exchange (MHD's `MPI_Sendrecv`
    /// with neighboring ranks every MLF step).
    Stencil {
        /// Number of iterations.
        iterations: usize,
        /// Halo bytes exchanged per direction per iteration.
        halo_bytes: u64,
    },
    /// Stencil plus a periodic global reduction (NPB BT-MZ / SP-MZ:
    /// boundary exchange each step, residual norms every `reduce_every`).
    StencilWithReduce {
        /// Number of iterations.
        iterations: usize,
        /// Halo bytes per direction per iteration.
        halo_bytes: u64,
        /// Iterations between allreduces.
        reduce_every: usize,
        /// Reduction payload in bytes.
        reduce_bytes: u64,
    },
    /// Blocks of independent sampling separated by parameter-update
    /// allreduces (mVMC).
    BlockReduce {
        /// Number of sample blocks.
        blocks: usize,
        /// Reduction payload in bytes.
        reduce_bytes: u64,
    },
}

/// A complete workload model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Which benchmark this is.
    pub id: WorkloadId,
    /// One-line description.
    pub description: &'static str,
    /// Power activity factors (how hard the workload drives CPU and DRAM).
    pub activity: PowerActivity,
    /// CPU-bound fraction χ at the reference frequency (see
    /// [`vap_model::boundedness`]).
    pub cpu_fraction: f64,
    /// Variation response relative to the PVT microbenchmark.
    pub response: VariationResponse,
    /// Communication shape.
    pub comm: CommShape,
    /// Total per-rank compute time at the reference frequency on a nominal
    /// module (reference seconds).
    pub reference_time: Seconds,
}

impl WorkloadSpec {
    /// CPU-boundedness model anchored at `f_ref`.
    pub fn boundedness(&self, f_ref: GigaHertz) -> Boundedness {
        Boundedness::new(self.cpu_fraction, f_ref)
    }

    /// Build the SPMD program at `scale` × the reference duration.
    /// Experiments use `scale = 1.0`; tests use small scales.
    pub fn program(&self, scale: f64) -> Program {
        assert!(scale > 0.0, "scale must be positive");
        let total = self.reference_time.value() * scale;
        match self.comm {
            CommShape::EmbarrassinglyParallel => ProgramBuilder::new().compute(total).build(),
            CommShape::FinalAllreduce { bytes } => {
                ProgramBuilder::new().compute(total).allreduce(bytes).build()
            }
            CommShape::Stencil { iterations, halo_bytes } => {
                let work = total / iterations as f64;
                let body = [Op::Compute { work }, Op::Sendrecv { offset: 1, bytes: halo_bytes }];
                ProgramBuilder::new().iterations(iterations, &body).build()
            }
            CommShape::StencilWithReduce { iterations, halo_bytes, reduce_every, reduce_bytes } => {
                let work = total / iterations as f64;
                let mut b = ProgramBuilder::new();
                for i in 0..iterations {
                    b = b.compute(work).sendrecv(1, halo_bytes);
                    if reduce_every > 0 && (i + 1) % reduce_every == 0 {
                        b = b.allreduce(reduce_bytes);
                    }
                }
                b.build()
            }
            CommShape::BlockReduce { blocks, reduce_bytes } => {
                let work = total / blocks as f64;
                let body = [Op::Compute { work }, Op::Allreduce { bytes: reduce_bytes }];
                ProgramBuilder::new().iterations(blocks, &body).build()
            }
        }
    }

    /// Derive this workload's per-module fingerprint from the base
    /// (microbenchmark) fingerprint. Deterministic in
    /// `(campaign seed, workload, module id)`.
    pub fn workload_variation(&self, base: &ModuleVariation, seed: u64) -> ModuleVariation {
        let r = self.response;
        if r == VariationResponse::faithful() {
            return base.clone();
        }
        let mut rng = StdRng::seed_from_u64(
            seed ^ (self.id.index().wrapping_mul(0x9E37_79B9_7F4A_7C15))
                ^ (base.module_id as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        // Normal::new(0.0, 1.0) cannot fail (positive finite std dev);
        // fall back to the base fingerprint rather than carrying a panic
        let Ok(normal) = Normal::new(0.0, 1.0) else {
            return base.clone();
        };
        let mut v = base.clone();
        let z_dyn: f64 = normal.sample(&mut rng);
        v.dynamic = (1.0 + r.dynamic_rho * (base.dynamic - 1.0) + r.dynamic_idio * z_dyn)
            .clamp(0.5, 2.0);
        let z_dram: f64 = normal.sample(&mut rng);
        v.dram = (1.0 + r.dram_rho * (base.dram - 1.0) + r.dram_idio * z_dram).clamp(0.5, 2.0);
        v
    }

    /// Put this workload on every module of a cluster: activity factors
    /// plus the workload-specific fingerprints.
    pub fn apply_to(&self, cluster: &mut Cluster, seed: u64) {
        let ids: Vec<usize> = (0..cluster.len()).collect();
        self.apply_to_modules(cluster, &ids, seed);
    }

    /// Put this workload on a *subset* of modules (a scheduled job's
    /// allocation), leaving the rest of the fleet untouched. Ids that are
    /// not in the fleet (e.g. from a stale job request after a `--modules`
    /// shrink) are ignored rather than panicking mid-campaign.
    pub fn apply_to_modules(&self, cluster: &mut Cluster, module_ids: &[usize], seed: u64) {
        for &id in module_ids {
            let Some(m) = cluster.get_mut(id) else {
                continue;
            };
            let wv = self.workload_variation(&m.base_variation().clone(), seed);
            m.set_workload_variation(if self.response == VariationResponse::faithful() {
                None
            } else {
                Some(wv)
            });
            m.set_activity(self.activity);
        }
    }

    /// [`WorkloadSpec::apply_to`] for the struct-of-arrays fleet: the same
    /// per-module fingerprint derivation (same base, same seed, same
    /// stream) and activity install, over [`FleetState`] columns. A
    /// cluster and a fleet built from the same `(spec, n, seed)` end up in
    /// bit-identical workload state under either entry point.
    pub fn apply_to_fleet(&self, fleet: &mut FleetState, seed: u64) {
        for id in 0..fleet.len() {
            let wv = self.workload_variation(&fleet.base_variation(id).clone(), seed);
            fleet.set_workload_variation(
                id,
                if self.response == VariationResponse::faithful() { None } else { Some(wv) },
            );
            fleet.set_activity(id, self.activity);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn program_scales_total_work() {
        let spec = catalog::get(WorkloadId::Mhd);
        let p1 = spec.program(1.0);
        let p2 = spec.program(0.5);
        assert!((p1.total_work() - spec.reference_time.value()).abs() < 1e-9);
        assert!((p2.total_work() - spec.reference_time.value() * 0.5).abs() < 1e-9);
    }

    #[test]
    fn workload_variation_is_deterministic() {
        let spec = catalog::get(WorkloadId::Bt);
        let base = ModuleVariation::nominal(7, 12);
        let a = spec.workload_variation(&base, 99);
        let b = spec.workload_variation(&base, 99);
        let c = spec.workload_variation(&base, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn faithful_response_is_identity() {
        let spec = catalog::get(WorkloadId::Stream);
        assert_eq!(spec.response, VariationResponse::faithful());
        let mut base = ModuleVariation::nominal(3, 12);
        base.dynamic = 1.07;
        base.dram = 0.9;
        assert_eq!(spec.workload_variation(&base, 5), base);
    }

    #[test]
    fn decorrelated_response_perturbs_dynamic() {
        let spec = catalog::get(WorkloadId::Bt);
        let mut base = ModuleVariation::nominal(3, 12);
        base.dynamic = 1.10;
        let wv = spec.workload_variation(&base, 5);
        assert_ne!(wv.dynamic, base.dynamic);
        // leakage and perf untouched: those paths vary identically
        assert_eq!(wv.leakage, base.leakage);
        assert_eq!(wv.perf, base.perf);
    }

    #[test]
    fn workload_ids_enumerate() {
        assert_eq!(WorkloadId::ALL.len(), 7);
        assert_eq!(WorkloadId::EVALUATED.len(), 6);
        assert!(!WorkloadId::EVALUATED.contains(&WorkloadId::Ep));
        let names: std::collections::BTreeSet<_> =
            WorkloadId::ALL.iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), 7);
        assert_eq!(WorkloadId::Dgemm.to_string(), "*DGEMM");
    }

    #[test]
    #[should_panic]
    fn zero_scale_program_panics() {
        let _ = catalog::get(WorkloadId::Dgemm).program(0.0);
    }
}
