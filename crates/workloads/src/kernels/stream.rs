//! The *STREAM kernels: Copy, Scale, Add, Triad.
//!
//! Straightforward vector operations whose runtime is dominated by memory
//! bandwidth — the reason STREAM's execution time barely responds to CPU
//! frequency while its power draw exercises both the DRAM and (through the
//! vector units) the CPU domain. Thread-parallel over contiguous chunks as
//! the OpenMP original is.

use super::chunks;

/// Results of one full STREAM pass: bytes moved per kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamTraffic {
    /// Bytes read + written by Copy.
    pub copy: u64,
    /// Bytes read + written by Scale.
    pub scale: u64,
    /// Bytes read + written by Add.
    pub add: u64,
    /// Bytes read + written by Triad.
    pub triad: u64,
}

impl StreamTraffic {
    /// Total bytes moved across all four kernels.
    pub fn total(&self) -> u64 {
        self.copy + self.scale + self.add + self.triad
    }
}

/// Per-element traffic of the four kernels in bytes (f64 = 8 bytes):
/// copy/scale move 16 B/element, add/triad 24 B/element.
pub fn traffic(n: usize) -> StreamTraffic {
    let n = n as u64;
    StreamTraffic { copy: 16 * n, scale: 16 * n, add: 24 * n, triad: 24 * n }
}

/// `c[i] = a[i]` (STREAM Copy), parallel over `threads` chunks.
pub fn copy(a: &[f64], c: &mut [f64], threads: usize) {
    assert_eq!(a.len(), c.len());
    run_chunked(c.len(), threads, c, |range, c_chunk| {
        c_chunk.copy_from_slice(&a[range]);
    });
}

/// `b[i] = s * c[i]` (STREAM Scale).
pub fn scale(c: &[f64], b: &mut [f64], s: f64, threads: usize) {
    assert_eq!(c.len(), b.len());
    run_chunked(b.len(), threads, b, |range, b_chunk| {
        for (out, &x) in b_chunk.iter_mut().zip(&c[range]) {
            *out = s * x;
        }
    });
}

/// `c[i] = a[i] + b[i]` (STREAM Add).
pub fn add(a: &[f64], b: &[f64], c: &mut [f64], threads: usize) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), c.len());
    run_chunked(c.len(), threads, c, |range, c_chunk| {
        for (i, out) in range.clone().zip(c_chunk.iter_mut()) {
            *out = a[i] + b[i];
        }
    });
}

/// `a[i] = b[i] + s * c[i]` (STREAM Triad — the headline kernel).
pub fn triad(b: &[f64], c: &[f64], a: &mut [f64], s: f64, threads: usize) {
    assert_eq!(b.len(), c.len());
    assert_eq!(b.len(), a.len());
    run_chunked(a.len(), threads, a, |range, a_chunk| {
        for (i, out) in range.clone().zip(a_chunk.iter_mut()) {
            *out = b[i] + s * c[i];
        }
    });
}

/// Split `out` into chunks and run `body(range, chunk)` on scoped threads.
fn run_chunked<F>(len: usize, threads: usize, out: &mut [f64], body: F)
where
    F: Fn(std::ops::Range<usize>, &mut [f64]) + Sync,
{
    let ranges = chunks(len, threads.max(1));
    let mut slices: Vec<&mut [f64]> = Vec::with_capacity(ranges.len());
    let mut rest = out;
    for r in &ranges {
        let (head, tail) = rest.split_at_mut(r.len());
        slices.push(head);
        rest = tail;
    }
    // re-raise a worker panic instead of wrapping it in a new expect
    if let Err(payload) = crossbeam::scope(|s| {
        for (range, chunk) in ranges.iter().zip(slices) {
            let body = &body;
            let range = range.clone();
            s.spawn(move |_| body(range, chunk));
        }
    }) {
        std::panic::resume_unwind(payload);
    }
}

/// Run the full STREAM sequence once over freshly initialized arrays of
/// length `n`, returning the final triad checksum.
pub fn full_pass(n: usize, threads: usize) -> f64 {
    let mut a: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 1e-9).collect();
    let mut b: Vec<f64> = vec![2.0; n];
    let mut c: Vec<f64> = vec![0.0; n];
    let s = 3.0;
    copy(&a, &mut c, threads);
    scale(&c, &mut b, s, threads);
    add(&a, &b, &mut c, threads);
    triad(&b, &c, &mut a, s, threads);
    a.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_compute_correct_values() {
        let n = 1001;
        let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut c = vec![0.0; n];
        copy(&a, &mut c, 4);
        assert_eq!(c, a);

        let mut b = vec![0.0; n];
        scale(&c, &mut b, 2.0, 4);
        assert!(b.iter().enumerate().all(|(i, &x)| x == 2.0 * i as f64));

        let mut sum = vec![0.0; n];
        add(&a, &b, &mut sum, 4);
        assert!(sum.iter().enumerate().all(|(i, &x)| x == 3.0 * i as f64));

        let mut t = vec![0.0; n];
        triad(&b, &sum, &mut t, 0.5, 4);
        assert!(t.iter().enumerate().all(|(i, &x)| x == 3.5 * i as f64));
    }

    #[test]
    fn thread_count_invariance() {
        let n = 997; // prime, exercises uneven chunking
        let single = full_pass(n, 1);
        for threads in [2, 3, 8, 997] {
            assert_eq!(full_pass(n, threads), single);
        }
    }

    #[test]
    fn traffic_accounting() {
        let t = traffic(1000);
        assert_eq!(t.copy, 16_000);
        assert_eq!(t.add, 24_000);
        assert_eq!(t.total(), 80_000);
    }

    #[test]
    fn full_pass_checksum_is_stable() {
        // a = b + s*c where after the sequence b = 3*orig_a (scaled copy)
        // and c = a + b; verified via the closed form on a tiny case.
        let v1 = full_pass(10, 2);
        let v2 = full_pass(10, 2);
        assert_eq!(v1, v2);
        assert!(v1.is_finite());
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let a = vec![0.0; 4];
        let mut c = vec![0.0; 5];
        copy(&a, &mut c, 2);
    }
}
