//! Banded line solvers — the computational core of NPB BT and SP.
//!
//! BT solves *block tri-diagonal* and SP *scalar penta-diagonal* systems
//! along each grid line of an ADI sweep. This module implements the two
//! scalar solvers those pseudo-applications are built from: the Thomas
//! algorithm for tri-diagonal systems and its two-super/two-sub-diagonal
//! generalization for penta-diagonal systems (banded Gaussian elimination
//! without pivoting — valid for the diagonally dominant systems the NPB
//! discretizations produce).

/// A tri-diagonal system `a[i]·x[i-1] + b[i]·x[i] + c[i]·x[i+1] = d[i]`
/// (with `a[0]` and `c[n-1]` ignored).
#[derive(Debug, Clone)]
pub struct Tridiag {
    /// Sub-diagonal (length n, `a[0]` unused).
    pub a: Vec<f64>,
    /// Main diagonal (length n).
    pub b: Vec<f64>,
    /// Super-diagonal (length n, `c[n-1]` unused).
    pub c: Vec<f64>,
}

impl Tridiag {
    /// A diagonally dominant test system of size `n` with pseudo-random
    /// off-diagonals.
    pub fn diagonally_dominant(n: usize, seed: u64) -> Self {
        let mut state = seed.max(1);
        let mut next = || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        let a: Vec<f64> = (0..n).map(|_| next() - 0.5).collect();
        let c: Vec<f64> = (0..n).map(|_| next() - 0.5).collect();
        let b: Vec<f64> = (0..n)
            .map(|i| {
                let off = a[i].abs() + c[i].abs();
                off + 1.0 + next() // strictly dominant
            })
            .collect();
        Tridiag { a, b, c }
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.b.len()
    }

    /// Multiply: `y = T·x` (for residual checks).
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        let n = self.n();
        assert_eq!(x.len(), n);
        (0..n)
            .map(|i| {
                let mut y = self.b[i] * x[i];
                if i > 0 {
                    y += self.a[i] * x[i - 1];
                }
                if i + 1 < n {
                    y += self.c[i] * x[i + 1];
                }
                y
            })
            .collect()
    }

    /// Solve `T·x = d` by the Thomas algorithm. O(n), no pivoting —
    /// requires a well-conditioned (e.g. diagonally dominant) system.
    ///
    /// # Panics
    /// Panics on size mismatch or an (exactly) zero pivot.
    pub fn solve(&self, d: &[f64]) -> Vec<f64> {
        let n = self.n();
        assert_eq!(d.len(), n, "rhs size mismatch");
        assert!(n > 0);
        let mut cp = vec![0.0; n];
        let mut dp = vec![0.0; n];
        let mut denom = self.b[0];
        assert!(denom.abs() > 0.0, "zero pivot at row 0");
        cp[0] = self.c[0] / denom;
        dp[0] = d[0] / denom;
        for i in 1..n {
            denom = self.b[i] - self.a[i] * cp[i - 1];
            assert!(denom.abs() > 0.0, "zero pivot at row {i}");
            cp[i] = self.c[i] / denom;
            dp[i] = (d[i] - self.a[i] * dp[i - 1]) / denom;
        }
        let mut x = vec![0.0; n];
        x[n - 1] = dp[n - 1];
        for i in (0..n - 1).rev() {
            x[i] = dp[i] - cp[i] * x[i + 1];
        }
        x
    }
}

/// A penta-diagonal system with bands `(e, a, b, c, f)` at offsets
/// `(-2, -1, 0, +1, +2)` — SP's scalar penta-diagonal structure.
#[derive(Debug, Clone)]
pub struct Pentadiag {
    /// Second sub-diagonal (offset −2; first two entries unused).
    pub e: Vec<f64>,
    /// First sub-diagonal (offset −1; first entry unused).
    pub a: Vec<f64>,
    /// Main diagonal.
    pub b: Vec<f64>,
    /// First super-diagonal (offset +1; last entry unused).
    pub c: Vec<f64>,
    /// Second super-diagonal (offset +2; last two entries unused).
    pub f: Vec<f64>,
}

impl Pentadiag {
    /// A diagonally dominant test system.
    pub fn diagonally_dominant(n: usize, seed: u64) -> Self {
        let mut state = seed.max(1);
        let mut next = || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        let e: Vec<f64> = (0..n).map(|_| (next() - 0.5) * 0.5).collect();
        let a: Vec<f64> = (0..n).map(|_| next() - 0.5).collect();
        let c: Vec<f64> = (0..n).map(|_| next() - 0.5).collect();
        let f: Vec<f64> = (0..n).map(|_| (next() - 0.5) * 0.5).collect();
        let b: Vec<f64> = (0..n)
            .map(|i| e[i].abs() + a[i].abs() + c[i].abs() + f[i].abs() + 1.0 + next())
            .collect();
        Pentadiag { e, a, b, c, f }
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.b.len()
    }

    /// Multiply: `y = P·x`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        let n = self.n();
        assert_eq!(x.len(), n);
        (0..n)
            .map(|i| {
                let mut y = self.b[i] * x[i];
                if i >= 2 {
                    y += self.e[i] * x[i - 2];
                }
                if i >= 1 {
                    y += self.a[i] * x[i - 1];
                }
                if i + 1 < n {
                    y += self.c[i] * x[i + 1];
                }
                if i + 2 < n {
                    y += self.f[i] * x[i + 2];
                }
                y
            })
            .collect()
    }

    /// Solve `P·x = d` by banded Gaussian elimination without pivoting
    /// (bandwidth 2), O(n).
    ///
    /// # Panics
    /// Panics on size mismatch or an (exactly) zero pivot.
    pub fn solve(&self, d: &[f64]) -> Vec<f64> {
        let n = self.n();
        assert_eq!(d.len(), n, "rhs size mismatch");
        assert!(n > 0);
        let mut e = self.e.clone();
        let mut a = self.a.clone();
        let mut b = self.b.clone();
        let mut c = self.c.clone();
        let f = self.f.clone(); // offset +2 never changes under bandwidth-2 elimination
        let mut d = d.to_vec();

        for i in 0..n {
            assert!(b[i].abs() > 0.0, "zero pivot at row {i}");
            if i + 1 < n {
                let m = a[i + 1] / b[i];
                a[i + 1] = 0.0;
                b[i + 1] -= m * c[i];
                c[i + 1] -= m * f[i];
                d[i + 1] -= m * d[i];
            }
            if i + 2 < n {
                let m = e[i + 2] / b[i];
                e[i + 2] = 0.0;
                a[i + 2] -= m * c[i];
                b[i + 2] -= m * f[i];
                d[i + 2] -= m * d[i];
            }
        }
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = d[i];
            if i + 1 < n {
                acc -= c[i] * x[i + 1];
            }
            if i + 2 < n {
                acc -= f[i] * x[i + 2];
            }
            x[i] = acc / b[i];
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn thomas_solves_identity() {
        let n = 17;
        let t = Tridiag { a: vec![0.0; n], b: vec![1.0; n], c: vec![0.0; n] };
        let d: Vec<f64> = (0..n).map(|i| i as f64).collect();
        assert_eq!(t.solve(&d), d);
    }

    #[test]
    fn thomas_residual_is_tiny() {
        for n in [1, 2, 3, 17, 256] {
            let t = Tridiag::diagonally_dominant(n, 7);
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
            let d = t.apply(&x_true);
            let x = t.solve(&d);
            assert!(max_abs_diff(&x, &x_true) < 1e-10, "n={n}");
        }
    }

    #[test]
    fn penta_solves_identity() {
        let n = 9;
        let p = Pentadiag {
            e: vec![0.0; n],
            a: vec![0.0; n],
            b: vec![2.0; n],
            c: vec![0.0; n],
            f: vec![0.0; n],
        };
        let d: Vec<f64> = (0..n).map(|i| 2.0 * i as f64).collect();
        let x = p.solve(&d);
        for (i, &v) in x.iter().enumerate() {
            assert!((v - i as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn penta_residual_is_tiny() {
        for n in [1, 2, 3, 4, 5, 33, 256] {
            let p = Pentadiag::diagonally_dominant(n, 11);
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).cos()).collect();
            let d = p.apply(&x_true);
            let x = p.solve(&d);
            assert!(max_abs_diff(&x, &x_true) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn penta_reduces_to_tridiag_when_outer_bands_vanish() {
        let n = 64;
        let t = Tridiag::diagonally_dominant(n, 3);
        let p = Pentadiag {
            e: vec![0.0; n],
            a: t.a.clone(),
            b: t.b.clone(),
            c: t.c.clone(),
            f: vec![0.0; n],
        };
        let d: Vec<f64> = (0..n).map(|i| (i as f64).sqrt()).collect();
        assert!(max_abs_diff(&t.solve(&d), &p.solve(&d)) < 1e-10);
    }

    #[test]
    fn adi_sweep_converges_on_a_diffusion_line() {
        // One ADI half-step: (I + L) x_new = x_old with L the 1-D Laplacian
        // — repeated solves should smooth an impulse, conserving nothing
        // in particular but staying bounded and converging to uniform-ish.
        let n = 65;
        let mut x = vec![0.0; n];
        x[n / 2] = 1.0;
        let t = Tridiag {
            a: vec![-0.5; n],
            b: vec![2.0; n],
            c: vec![-0.5; n],
        };
        for _ in 0..50 {
            x = t.solve(&x);
        }
        assert!(x.iter().all(|v| v.is_finite() && v.abs() < 1.0));
        // the impulse decays toward the (preserved) k=0 mode — low-k
        // modes shrink slowly, so require an order of magnitude, not zero
        assert!(x[n / 2] < 0.1, "peak {}", x[n / 2]);
        let mean: f64 = x.iter().sum::<f64>() / n as f64;
        assert!(x[n / 2] > mean * 0.9, "peak should approach the mean from above");
    }

    #[test]
    #[should_panic]
    fn mismatched_rhs_panics() {
        let t = Tridiag::diagonally_dominant(4, 1);
        let _ = t.solve(&[1.0, 2.0]);
    }
}

/// Fixed 5×5 block used by the block tri-diagonal solver — NPB BT couples
/// the five flow variables (ρ, ρu, ρv, ρw, E) at each grid point.
pub type Block = [[f64; 5]; 5];
/// A 5-vector of flow variables.
pub type BVec = [f64; 5];

fn bmatvec(m: &Block, x: &BVec) -> BVec {
    let mut y = [0.0; 5];
    for (i, row) in m.iter().enumerate() {
        y[i] = row.iter().zip(x).map(|(a, b)| a * b).sum();
    }
    y
}

fn bmatmul(a: &Block, b: &Block) -> Block {
    let mut c = [[0.0; 5]; 5];
    for i in 0..5 {
        for k in 0..5 {
            let aik = a[i][k];
            for j in 0..5 {
                c[i][j] += aik * b[k][j];
            }
        }
    }
    c
}

fn bsub(a: &Block, b: &Block) -> Block {
    let mut c = *a;
    for i in 0..5 {
        for j in 0..5 {
            c[i][j] -= b[i][j];
        }
    }
    c
}

fn vsub(a: &BVec, b: &BVec) -> BVec {
    let mut c = *a;
    for i in 0..5 {
        c[i] -= b[i];
    }
    c
}

/// Invert a 5×5 block by Gauss–Jordan elimination with partial pivoting.
///
/// # Panics
/// Panics on a (numerically) singular block.
fn binv(m: &Block) -> Block {
    let mut a = *m;
    let mut inv = [[0.0; 5]; 5];
    for (i, row) in inv.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for col in 0..5 {
        // partial pivot; `col..5` is never empty, and total_cmp needs no
        // finiteness side condition
        let pivot_row = (col..5)
            .max_by(|&r1, &r2| a[r1][col].abs().total_cmp(&a[r2][col].abs()))
            .unwrap_or(col);
        assert!(a[pivot_row][col].abs() > 1e-12, "singular 5x5 block");
        a.swap(col, pivot_row);
        inv.swap(col, pivot_row);
        let p = a[col][col];
        for j in 0..5 {
            a[col][j] /= p;
            inv[col][j] /= p;
        }
        for r in 0..5 {
            if r != col {
                let f = a[r][col];
                for j in 0..5 {
                    a[r][j] -= f * a[col][j];
                    inv[r][j] -= f * inv[col][j];
                }
            }
        }
    }
    inv
}

/// A block tri-diagonal system with 5×5 blocks — the structure NPB BT
/// factors along every line of its ADI sweep.
#[derive(Debug, Clone)]
pub struct BlockTridiag {
    /// Sub-diagonal blocks (`a[0]` unused).
    pub a: Vec<Block>,
    /// Diagonal blocks.
    pub b: Vec<Block>,
    /// Super-diagonal blocks (`c[n-1]` unused).
    pub c: Vec<Block>,
}

impl BlockTridiag {
    /// A block-diagonally-dominant test system.
    pub fn diagonally_dominant(n: usize, seed: u64) -> Self {
        let mut state = seed.max(1);
        let mut next = || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut rand_block = |scale: f64| {
            let mut m = [[0.0; 5]; 5];
            for row in &mut m {
                for v in row.iter_mut() {
                    *v = next() * scale;
                }
            }
            m
        };
        let a: Vec<Block> = (0..n).map(|_| rand_block(0.2)).collect();
        let c: Vec<Block> = (0..n).map(|_| rand_block(0.2)).collect();
        let b: Vec<Block> = (0..n)
            .map(|i| {
                let mut m = rand_block(0.2);
                // make each diagonal block strictly row-dominant over the
                // whole block row
                for r in 0..5 {
                    let off: f64 = (0..5)
                        .map(|j| a[i][r][j].abs() + c[i][r][j].abs() + m[r][j].abs())
                        .sum();
                    m[r][r] += off + 1.0;
                }
                m
            })
            .collect();
        BlockTridiag { a, b, c }
    }

    /// Number of block rows.
    pub fn n(&self) -> usize {
        self.b.len()
    }

    /// Multiply: `y = M·x` over block vectors.
    pub fn apply(&self, x: &[BVec]) -> Vec<BVec> {
        let n = self.n();
        assert_eq!(x.len(), n);
        (0..n)
            .map(|i| {
                let mut y = bmatvec(&self.b[i], &x[i]);
                if i > 0 {
                    let t = bmatvec(&self.a[i], &x[i - 1]);
                    for k in 0..5 {
                        y[k] += t[k];
                    }
                }
                if i + 1 < n {
                    let t = bmatvec(&self.c[i], &x[i + 1]);
                    for k in 0..5 {
                        y[k] += t[k];
                    }
                }
                y
            })
            .collect()
    }

    /// Block Thomas algorithm: forward-eliminate block rows, then
    /// back-substitute. O(n) block operations, exactly NPB BT's
    /// `x_solve`/`y_solve`/`z_solve` structure.
    pub fn solve(&self, d: &[BVec]) -> Vec<BVec> {
        let n = self.n();
        assert_eq!(d.len(), n, "rhs size mismatch");
        assert!(n > 0);
        // modified super-diagonal and rhs
        let mut cp: Vec<Block> = Vec::with_capacity(n);
        let mut dp: Vec<BVec> = Vec::with_capacity(n);
        let mut binv0 = binv(&self.b[0]);
        cp.push(bmatmul(&binv0, &self.c[0]));
        dp.push(bmatvec(&binv0, &d[0]));
        for i in 1..n {
            let denom = bsub(&self.b[i], &bmatmul(&self.a[i], &cp[i - 1]));
            binv0 = binv(&denom);
            cp.push(bmatmul(&binv0, &self.c[i]));
            let rhs = vsub(&d[i], &bmatvec(&self.a[i], &dp[i - 1]));
            dp.push(bmatvec(&binv0, &rhs));
        }
        let mut x = vec![[0.0; 5]; n];
        x[n - 1] = dp[n - 1];
        for i in (0..n - 1).rev() {
            x[i] = vsub(&dp[i], &bmatvec(&cp[i], &x[i + 1]));
        }
        x
    }
}

#[cfg(test)]
mod block_tests {
    use super::*;

    #[test]
    fn block_inverse_round_trips() {
        let m = BlockTridiag::diagonally_dominant(1, 5).b[0];
        let inv = binv(&m);
        let id = bmatmul(&m, &inv);
        for (i, row) in id.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                let expect = f64::from(i == j);
                assert!((v - expect).abs() < 1e-10, "id[{i}][{j}] = {v}");
            }
        }
    }

    #[test]
    fn block_thomas_residual_is_tiny() {
        for n in [1, 2, 3, 17, 64] {
            let m = BlockTridiag::diagonally_dominant(n, 7);
            let x_true: Vec<BVec> = (0..n)
                .map(|i| {
                    let mut v = [0.0; 5];
                    for (k, vk) in v.iter_mut().enumerate() {
                        *vk = ((i * 5 + k) as f64 * 0.13).sin();
                    }
                    v
                })
                .collect();
            let d = m.apply(&x_true);
            let x = m.solve(&d);
            for (xi, ti) in x.iter().zip(&x_true) {
                for k in 0..5 {
                    assert!((xi[k] - ti[k]).abs() < 1e-9, "n={n}");
                }
            }
        }
    }

    #[test]
    fn block_identity_system() {
        let n = 6;
        let ident: Block = {
            let mut m = [[0.0; 5]; 5];
            for (i, row) in m.iter_mut().enumerate() {
                row[i] = 1.0;
            }
            m
        };
        let zero: Block = [[0.0; 5]; 5];
        let m = BlockTridiag { a: vec![zero; n], b: vec![ident; n], c: vec![zero; n] };
        let d: Vec<BVec> = (0..n).map(|i| [i as f64; 5]).collect();
        assert_eq!(m.solve(&d), d);
    }

    #[test]
    fn block_reduces_to_scalar_when_blocks_are_diagonal() {
        // a block-tridiagonal system whose blocks are all λ·I behaves as 5
        // independent scalar tridiagonal systems
        let n = 24;
        let t = Tridiag::diagonally_dominant(n, 3);
        let lift = |v: f64| -> Block {
            let mut m = [[0.0; 5]; 5];
            for (i, row) in m.iter_mut().enumerate() {
                row[i] = v;
            }
            m
        };
        let m = BlockTridiag {
            a: t.a.iter().map(|&v| lift(v)).collect(),
            b: t.b.iter().map(|&v| lift(v)).collect(),
            c: t.c.iter().map(|&v| lift(v)).collect(),
        };
        let d_scalar: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let d_block: Vec<BVec> = d_scalar.iter().map(|&v| [v; 5]).collect();
        let xs = t.solve(&d_scalar);
        let xb = m.solve(&d_block);
        for (xbi, xsi) in xb.iter().zip(&xs) {
            for v in xbi {
                assert!((v - xsi).abs() < 1e-9);
            }
        }
    }

    #[test]
    #[should_panic]
    fn singular_block_panics() {
        let zero: Block = [[0.0; 5]; 5];
        let m = BlockTridiag { a: vec![zero], b: vec![zero], c: vec![zero] };
        let _ = m.solve(&[[1.0; 5]]);
    }
}
