//! The NPB EP kernel: Gaussian deviates via the Marsaglia polar method.
//!
//! EP generates pairs of independent Gaussian random variates and tallies
//! how many pairs land in each square annulus `l ≤ max(|x|,|y|) < l+1`.
//! It is pure CPU work over a cache-resident state — the property the
//! paper exploits to isolate manufacturing variability (Fig. 1): "most of
//! its working set fits in cache ... EP exhibits no per-run noise".

use super::chunks;

/// Number of annuli NPB EP tallies.
pub const ANNULI: usize = 10;

/// Results of an EP run.
#[derive(Debug, Clone, PartialEq)]
pub struct EpResult {
    /// Count of accepted Gaussian pairs.
    pub pairs: u64,
    /// Sum of all X deviates.
    pub sum_x: f64,
    /// Sum of all Y deviates.
    pub sum_y: f64,
    /// Pairs per annulus `l ≤ max(|x|,|y|) < l+1`.
    pub counts: [u64; ANNULI],
}

impl EpResult {
    fn zero() -> Self {
        EpResult { pairs: 0, sum_x: 0.0, sum_y: 0.0, counts: [0; ANNULI] }
    }

    fn merge(&mut self, other: &EpResult) {
        self.pairs += other.pairs;
        self.sum_x += other.sum_x;
        self.sum_y += other.sum_y;
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

/// A tiny deterministic uniform generator in `(-1, 1)` (xorshift64*),
/// standing in for NPB's linear congruential stream. Each worker derives
/// an independent stream from its chunk index, mirroring EP's per-rank
/// seed arithmetic.
#[derive(Debug, Clone)]
struct Uniform {
    state: u64,
}

impl Uniform {
    fn new(seed: u64) -> Self {
        Uniform { state: seed.max(1) }
    }

    fn next(&mut self) -> f64 {
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        let bits = self.state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        // uniform in (-1, 1)
        ((bits >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }
}

/// Generate `attempts` candidate pairs sequentially from `seed`.
pub fn generate(attempts: u64, seed: u64) -> EpResult {
    let mut rng = Uniform::new(seed);
    let mut res = EpResult::zero();
    for _ in 0..attempts {
        let u = rng.next();
        let v = rng.next();
        let t = u * u + v * v;
        if t > 0.0 && t < 1.0 {
            // Marsaglia polar transform
            let scale = (-2.0 * t.ln() / t).sqrt();
            let x = u * scale;
            let y = v * scale;
            res.pairs += 1;
            res.sum_x += x;
            res.sum_y += y;
            let l = (x.abs().max(y.abs()) as usize).min(ANNULI - 1);
            res.counts[l] += 1;
        }
    }
    res
}

/// Thread-parallel EP: `attempts` split across `threads` independent
/// streams, tallies merged — the same reduction structure as the MPI code.
pub fn generate_parallel(attempts: u64, seed: u64, threads: usize) -> EpResult {
    let ranges = chunks(attempts as usize, threads.max(1));
    let joined = crossbeam::scope(|s| {
        let handles: Vec<_> = ranges
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let n = r.len() as u64;
                // worker-unique stream seed (mirrors EP's rank seeding)
                let worker_seed = seed ^ ((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                s.spawn(move |_| generate(n, worker_seed))
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect::<Result<Vec<EpResult>, _>>()
    });
    // re-raise a worker (or scope) panic instead of wrapping it
    let partials: Vec<EpResult> = match joined {
        Ok(Ok(p)) => p,
        Ok(Err(payload)) | Err(payload) => std::panic::resume_unwind(payload),
    };
    let mut total = EpResult::zero();
    for p in &partials {
        total.merge(p);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceptance_rate_is_pi_over_four() {
        // pairs inside the unit disc / attempts → π/4 ≈ 0.785
        let res = generate(200_000, 42);
        let rate = res.pairs as f64 / 200_000.0;
        assert!((rate - std::f64::consts::FRAC_PI_4).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn deviates_are_standard_normal_ish() {
        let res = generate(500_000, 7);
        let n = res.pairs as f64;
        // means near zero (σ/√n ≈ 0.0016)
        assert!((res.sum_x / n).abs() < 0.01);
        assert!((res.sum_y / n).abs() < 0.01);
        // ~68% of max(|x|,|y|) pairs in the first two annuli... actually
        // P(max(|X|,|Y|) < 1) = erf(1/√2)² ≈ 0.466
        let frac0 = res.counts[0] as f64 / n;
        assert!((frac0 - 0.466).abs() < 0.01, "frac0 = {frac0}");
    }

    #[test]
    fn counts_sum_to_pairs() {
        let res = generate(50_000, 3);
        assert_eq!(res.counts.iter().sum::<u64>(), res.pairs);
    }

    #[test]
    fn sequential_is_deterministic() {
        assert_eq!(generate(10_000, 5), generate(10_000, 5));
        assert_ne!(generate(10_000, 5), generate(10_000, 6));
    }

    #[test]
    fn parallel_is_deterministic_per_thread_count() {
        let a = generate_parallel(100_000, 11, 4);
        let b = generate_parallel(100_000, 11, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_statistics_match_sequential() {
        let seq = generate(400_000, 13);
        let par = generate_parallel(400_000, 13, 8);
        // different streams, same distribution: acceptance rates agree
        let r_seq = seq.pairs as f64 / 400_000.0;
        let r_par = par.pairs as f64 / 400_000.0;
        assert!((r_seq - r_par).abs() < 0.005);
    }
}
