//! Blocked, thread-parallel DGEMM — the *DGEMM kernel.
//!
//! `C = A · B` over row-major `f64` matrices, register-blocked over `k` and
//! cache-blocked over `j`, with rows distributed across threads the way the
//! MKL-threaded HPCC kernel spreads work across cores.

use super::chunks;

/// Cache block edge (elements). 64×64 f64 tiles keep the working set of a
/// block multiply inside L2.
const BLOCK: usize = 64;

/// A square row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Matrix { n, data: vec![0.0; n * n] }
    }

    /// An `n × n` matrix filled by `f(row, col)`.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                m.data[i * n + j] = f(i, j);
            }
        }
        m
    }

    /// A deterministic pseudo-random matrix (xorshift-filled), the usual
    /// HPCC initialization stand-in.
    pub fn pseudo_random(n: usize, seed: u64) -> Self {
        let mut state = seed.max(1);
        Matrix::from_fn(n, |_, _| {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let bits = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            // map to [-0.5, 0.5)
            (bits >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element access.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Sum of all elements (cheap checksum for tests and benches).
    pub fn checksum(&self) -> f64 {
        self.data.iter().sum()
    }
}

/// Reference triple-loop multiply; O(n³) with no blocking. Ground truth
/// for testing the optimized kernel.
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.n, b.n);
    let n = a.n;
    let mut c = Matrix::zeros(n);
    for i in 0..n {
        for k in 0..n {
            let aik = a.data[i * n + k];
            for j in 0..n {
                c.data[i * n + j] += aik * b.data[k * n + j];
            }
        }
    }
    c
}

/// Blocked, thread-parallel multiply: rows are split across `threads`
/// workers; each worker runs an `i-k-j` kernel over `BLOCK`-wide `k`/`j`
/// tiles.
pub fn matmul_blocked(a: &Matrix, b: &Matrix, threads: usize) -> Matrix {
    assert_eq!(a.n, b.n, "dimension mismatch");
    let n = a.n;
    let mut c = Matrix::zeros(n);
    let row_ranges = chunks(n, threads.max(1));
    // Split C into disjoint row bands, one per worker.
    let mut bands: Vec<&mut [f64]> = Vec::with_capacity(row_ranges.len());
    {
        let mut rest: &mut [f64] = &mut c.data;
        for r in &row_ranges {
            let (band, tail) = rest.split_at_mut((r.end - r.start) * n);
            bands.push(band);
            rest = tail;
        }
    }
    // re-raise a worker panic instead of wrapping it in a new expect
    if let Err(payload) = crossbeam::scope(|s| {
        for (range, band) in row_ranges.iter().zip(bands) {
            let a = &a.data;
            let b = &b.data;
            let range = range.clone();
            s.spawn(move |_| {
                for kk in (0..n).step_by(BLOCK) {
                    let k_end = (kk + BLOCK).min(n);
                    for jj in (0..n).step_by(BLOCK) {
                        let j_end = (jj + BLOCK).min(n);
                        for (bi, i) in range.clone().enumerate() {
                            let c_row = &mut band[bi * n..(bi + 1) * n];
                            for k in kk..k_end {
                                let aik = a[i * n + k];
                                let b_row = &b[k * n..(k + 1) * n];
                                for j in jj..j_end {
                                    c_row[j] += aik * b_row[j];
                                }
                            }
                        }
                    }
                }
            });
        }
    }) {
        std::panic::resume_unwind(payload);
    }
    c
}

/// Floating point operations performed by an `n × n` multiply.
pub fn flops(n: usize) -> u64 {
    2 * (n as u64).pow(3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &Matrix, b: &Matrix) {
        assert_eq!(a.n(), b.n());
        for i in 0..a.n() {
            for j in 0..a.n() {
                assert!(
                    (a.get(i, j) - b.get(i, j)).abs() < 1e-9,
                    "mismatch at ({i},{j}): {} vs {}",
                    a.get(i, j),
                    b.get(i, j)
                );
            }
        }
    }

    #[test]
    fn identity_multiplication() {
        let n = 33;
        let a = Matrix::pseudo_random(n, 1);
        let id = Matrix::from_fn(n, |i, j| f64::from(i == j));
        assert_close(&matmul_blocked(&a, &id, 4), &a);
        assert_close(&matmul_blocked(&id, &a, 4), &a);
    }

    #[test]
    fn blocked_matches_naive_at_odd_sizes() {
        // sizes straddling the 64-wide block boundary
        for n in [1, 7, 63, 64, 65, 130] {
            let a = Matrix::pseudo_random(n, 2);
            let b = Matrix::pseudo_random(n, 3);
            assert_close(&matmul_blocked(&a, &b, 3), &matmul_naive(&a, &b));
        }
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let a = Matrix::pseudo_random(96, 5);
        let b = Matrix::pseudo_random(96, 6);
        let c1 = matmul_blocked(&a, &b, 1);
        for threads in [2, 4, 7, 96, 200] {
            assert_close(&matmul_blocked(&a, &b, threads), &c1);
        }
    }

    #[test]
    fn pseudo_random_is_deterministic_and_centered() {
        let a = Matrix::pseudo_random(50, 9);
        let b = Matrix::pseudo_random(50, 9);
        assert_eq!(a, b);
        let mean = a.checksum() / (50.0 * 50.0);
        assert!(mean.abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn flop_count() {
        assert_eq!(flops(10), 2000);
        assert_eq!(flops(12_288), 2 * 12_288u64.pow(3));
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let _ = matmul_blocked(&Matrix::zeros(4), &Matrix::zeros(5), 2);
    }
}
