//! The service plane's core guarantee: scrapers cannot perturb the
//! simulation. Exporters only ever *read* the snapshot registry, so the
//! published telemetry stream — and the `vap_obs` journal behind it —
//! is byte-for-byte identical whether 0 or 200 clients are attached.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, Ordering};
use vap_daemon::{DaemonConfig, Mode, Service};
use vap_obs::SnapshotRegistry;
use vap_report::RunOptions;

fn small_opts() -> RunOptions {
    RunOptions { modules: Some(12), seed: 2015, scale: 0.05, threads: Some(1), ..RunOptions::default() }
}

/// Replay the sched campaign, publishing into a registry while `readers`
/// threads hammer the read path; return the checksum stream and report.
fn campaign_stream(readers: usize) -> (Vec<u64>, vap_sched::SchedReport) {
    let registry = SnapshotRegistry::new();
    let done = AtomicBool::new(false);
    let mut checksums = Vec::new();
    let report = std::thread::scope(|scope| {
        for _ in 0..readers {
            scope.spawn(|| {
                while !done.load(Ordering::Relaxed) {
                    let snap = registry.read();
                    assert!(snap.verify(), "reader observed a torn snapshot");
                }
            });
        }
        let campaign = vap_daemon::sensors::SchedCampaign::from_options(&small_opts());
        let report = campaign.run(|snap| {
            let epoch = registry.publish(snap);
            checksums.push(registry.read().checksum);
            assert_eq!(registry.epoch(), epoch);
            ControlFlow::Continue(())
        });
        done.store(true, Ordering::Relaxed);
        report
    });
    (checksums, report)
}

#[test]
fn campaign_stream_is_identical_with_and_without_readers() {
    let (quiet, quiet_report) = campaign_stream(0);
    let (loud, loud_report) = campaign_stream(8);
    assert!(!quiet.is_empty());
    assert_eq!(quiet, loud, "concurrent readers changed the published stream");
    assert_eq!(quiet_report, loud_report, "concurrent readers changed the schedule");
}

/// Run a bounded sweep service, optionally with scraper threads attached
/// to both exporters for the whole run, and return the exit summary.
fn sweep_summary(scrapers: usize) -> vap_daemon::DaemonSummary {
    let cfg = DaemonConfig {
        mode: Mode::Sweep,
        prom_port: 0,
        json_port: 0,
        ticks: 60,
        ..DaemonConfig::default()
    };
    let service = Service::bind(&small_opts(), &cfg).unwrap();
    let prom = service.prom_addr().unwrap();
    let json = service.json_addr().unwrap();
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for i in 0..scrapers {
            if i % 2 == 0 {
                scope.spawn(|| {
                    while !done.load(Ordering::Relaxed) {
                        if let Ok(mut s) = TcpStream::connect(prom) {
                            let _ = write!(s, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
                            let mut out = String::new();
                            let _ = s.read_to_string(&mut out);
                        }
                    }
                });
            } else {
                scope.spawn(|| {
                    while !done.load(Ordering::Relaxed) {
                        if let Ok(s) = TcpStream::connect(json) {
                            let _ = s.set_read_timeout(Some(std::time::Duration::from_millis(50)));
                            let mut line = String::new();
                            let _ = BufReader::new(s).read_line(&mut line);
                        }
                    }
                });
            }
        }
        let summary = service.run().unwrap();
        done.store(true, Ordering::Relaxed);
        summary
    })
}

#[test]
fn sweep_outcome_is_independent_of_scraper_count() {
    let quiet = sweep_summary(0);
    let loud = sweep_summary(6);
    assert_eq!(quiet.published, 60);
    assert_eq!(quiet.published, loud.published);
    assert_eq!(quiet.sim_time_s, loud.sim_time_s);
    assert!(loud.registry_reads >= quiet.registry_reads, "scrapers add reads, nothing else");
}

/// End-to-end on the real binary: the `vap_obs` journal a daemon run
/// writes is byte-identical whether or not scrapers were attached.
#[test]
fn journal_is_byte_identical_under_scrape_load() {
    let dir = std::env::temp_dir().join(format!("vap-daemon-journal-{}", std::process::id()));
    let quiet_dir = dir.join("quiet");
    let loud_dir = dir.join("loud");

    let quiet = run_daemon_collecting_journal(&quiet_dir, 0);
    let loud = run_daemon_collecting_journal(&loud_dir, 200);
    assert!(!quiet.is_empty(), "daemon wrote an empty journal");
    assert_eq!(quiet, loud, "scrapers perturbed the daemon's journal");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Launch `vap-daemon` with `--trace-out`, attach `scrapers` concurrent
/// clients mid-run, wait for exit, and return the journal bytes.
fn run_daemon_collecting_journal(dir: &std::path::Path, scrapers: usize) -> Vec<u8> {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_vap-daemon"))
        .args([
            "--mode",
            "sweep",
            "--modules",
            "8",
            "--ticks",
            "90",
            "--accel",
            "60",
            "--prom-port",
            "0",
            "--json-port",
            "0",
            "--trace-out",
        ])
        .arg(dir)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn vap-daemon");

    // The banner's first two lines carry the ephemeral addresses.
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let prom_line = lines.next().unwrap().unwrap();
    let json_line = lines.next().unwrap().unwrap();
    let prom = prom_line
        .split("http://")
        .nth(1)
        .and_then(|s| s.strip_suffix("/metrics"))
        .expect("prometheus address in banner")
        .to_string();
    let json = json_line.rsplit(' ').next().expect("json address in banner").to_string();

    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for i in 0..scrapers {
            let prom = &prom;
            let json = &json;
            let done = &done;
            scope.spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    if i % 2 == 0 {
                        if let Ok(mut s) = TcpStream::connect(prom) {
                            let _ = write!(s, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
                            let mut out = String::new();
                            let _ = s.read_to_string(&mut out);
                        }
                    } else if let Ok(s) = TcpStream::connect(json) {
                        let _ = s.set_read_timeout(Some(std::time::Duration::from_millis(50)));
                        let mut line = String::new();
                        let _ = BufReader::new(s).read_line(&mut line);
                    }
                }
            });
        }
        // drain the rest of stdout so the child never blocks on a full pipe
        for line in lines.by_ref() {
            let _ = line;
        }
        let status = child.wait().expect("wait for vap-daemon");
        done.store(true, Ordering::Relaxed);
        assert!(status.success(), "vap-daemon exited with {status}");
    });

    std::fs::read(dir.join("journal.jsonl")).expect("daemon wrote journal.jsonl")
}
