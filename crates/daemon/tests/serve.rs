//! End-to-end serving tests: a real `Service` on ephemeral ports, real
//! TCP clients, both wire formats.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use vap_daemon::{DaemonConfig, Mode, Service};
use vap_report::RunOptions;

fn service() -> Service {
    let opts = RunOptions { modules: Some(6), threads: Some(1), ..RunOptions::default() };
    let cfg = DaemonConfig {
        mode: Mode::Sweep,
        prom_port: 0,
        json_port: 0,
        ticks: 0, // unbounded: the test decides when to stop
        ..DaemonConfig::default()
    };
    Service::bind(&opts, &cfg).unwrap()
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    out
}

#[test]
fn prometheus_endpoint_serves_the_live_fleet() {
    let service = service();
    let addr = service.prom_addr().unwrap();
    let stop = service.stop_flag();
    std::thread::scope(|scope| {
        let run = scope.spawn(|| service.run());

        // poll until the sensor has published at least one epoch
        let metrics = loop {
            let body = http_get(addr, "/metrics");
            assert!(body.starts_with("HTTP/1.1 200 OK\r\n"), "{body}");
            if !body.contains("vap_snapshot_epoch 0\n") {
                break body;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        assert!(metrics.contains("# TYPE vap_module_power_watts gauge"));
        for module in 0..6 {
            assert!(
                metrics.contains(&format!("vap_module_power_watts{{module=\"{module}\"}}")),
                "missing module {module} in:\n{metrics}"
            );
        }
        assert!(metrics.contains("vap_cluster_power_watts "));

        let index = http_get(addr, "/");
        assert!(index.contains("GET /metrics"));
        let missing = http_get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        stop.raise();
        let summary = run.join().unwrap().unwrap();
        assert!(summary.published > 0);
        assert!(summary.registry_reads > 0, "the scrapes above count as registry reads");
    });
}

#[test]
fn json_stream_delivers_increasing_epochs() {
    let service = service();
    let addr = service.json_addr().unwrap();
    let stop = service.stop_flag();
    std::thread::scope(|scope| {
        let run = scope.spawn(|| service.run());

        let stream = TcpStream::connect(addr).unwrap();
        let mut epochs = Vec::new();
        for line in BufReader::new(stream).lines() {
            let line = line.unwrap();
            assert!(line.starts_with("{\"epoch\":"), "{line}");
            assert!(line.trim_end().ends_with('}'), "{line}");
            let epoch: u64 = line["{\"epoch\":".len()..line.find(',').unwrap()]
                .parse()
                .expect("epoch is a number");
            if epoch == 0 {
                // the registry's empty initial snapshot, sent to clients
                // that connect before the first tick
                continue;
            }
            assert!(line.contains("\"modules\":[{\"id\":0,"), "{line}");
            epochs.push(epoch);
            if epochs.len() == 3 {
                break;
            }
        }
        assert_eq!(epochs.len(), 3);
        assert!(epochs.windows(2).all(|w| w[0] < w[1]), "epochs not increasing: {epochs:?}");

        stop.raise();
        run.join().unwrap().unwrap();
    });
}
