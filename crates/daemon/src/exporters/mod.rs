//! Exporters: the read side of the service plane.
//!
//! Each exporter runs on its own thread, polls the
//! [`SnapshotRegistry`](vap_obs::SnapshotRegistry) for the latest sealed
//! snapshot, and speaks one wire format to its clients. Exporters never
//! touch the simulation or the `vap_obs` journal — they are pure readers,
//! which is what makes the scraper-count determinism guarantee
//! (`tests/determinism.rs`) hold by construction.

mod json;
mod prometheus;
mod stdout;

pub use json::JsonExporter;
pub use prometheus::{render_prometheus, PrometheusExporter};
pub use stdout::StdoutExporter;

use crate::signal::ShutdownFlag;
use crate::DaemonError;
use vap_obs::SnapshotRegistry;

/// One wire format served from the snapshot registry.
///
/// `serve` blocks until `stop` is raised (the service runs each exporter
/// on a dedicated scoped thread) and returns only once every in-flight
/// client of that exporter has been answered or dropped.
pub trait Exporter: Send {
    /// Short name for logs and the startup banner.
    fn name(&self) -> &'static str;

    /// Serve clients from `registry` until `stop` is raised.
    fn serve(&mut self, registry: &SnapshotRegistry, stop: &ShutdownFlag)
        -> Result<(), DaemonError>;
}
