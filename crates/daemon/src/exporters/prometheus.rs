//! Prometheus text-format exporter: `GET /metrics` over the hand-rolled
//! HTTP server, rendering the latest snapshot in the
//! [exposition format](https://prometheus.io/docs/instrumenting/exposition_formats/)
//! (text version 0.0.4 — `# HELP` / `# TYPE` lines plus labelled
//! samples). Every metric is a gauge: the snapshot is a point-in-time
//! view, not a counter stream.

use crate::http::{self, Request, Response};
use crate::signal::ShutdownFlag;
use crate::{DaemonError, Exporter};
use std::fmt::Write as _;
use std::net::TcpListener;
use vap_obs::{SnapshotRegistry, TelemetrySnapshot};

/// Serves `GET /metrics` (and a small index page on `/`) over HTTP.
#[derive(Debug)]
pub struct PrometheusExporter {
    listener: TcpListener,
}

impl PrometheusExporter {
    /// Bind to `port` on localhost (0 picks an ephemeral port).
    pub fn bind(port: u16) -> Result<Self, DaemonError> {
        let listener = TcpListener::bind(("127.0.0.1", port))
            .map_err(|e| DaemonError::io(format!("bind prometheus exporter :{port}"), e))?;
        Ok(PrometheusExporter { listener })
    }

    /// The bound address (useful when an ephemeral port was requested).
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, DaemonError> {
        self.listener.local_addr().map_err(|e| DaemonError::io("prometheus local_addr", e))
    }
}

impl Exporter for PrometheusExporter {
    fn name(&self) -> &'static str {
        "prometheus"
    }

    fn serve(
        &mut self,
        registry: &SnapshotRegistry,
        stop: &ShutdownFlag,
    ) -> Result<(), DaemonError> {
        http::serve(&self.listener, stop, |req: &Request| match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/metrics") => {
                Response::ok("text/plain; version=0.0.4", render_prometheus(&registry.read()))
            }
            ("GET", "/") => Response::ok(
                "text/plain",
                "vap-daemon: live telemetry for the simulated fleet\n\
                 GET /metrics — Prometheus text format\n"
                    .to_string(),
            ),
            (_, path) => Response::not_found(path),
        })
    }
}

fn gauge_header(out: &mut String, name: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
}

/// Render one snapshot in the Prometheus text exposition format.
pub fn render_prometheus(snap: &TelemetrySnapshot) -> String {
    // ~200 bytes of header lines per family plus ~40 per sample.
    let mut out = String::with_capacity(2048 + 256 * snap.modules.len());

    gauge_header(&mut out, "vap_snapshot_epoch", "Publish sequence number of this snapshot.");
    let _ = writeln!(out, "vap_snapshot_epoch {}", snap.epoch);

    gauge_header(&mut out, "vap_sim_time_seconds", "Simulated time of this snapshot.");
    let _ = writeln!(out, "vap_sim_time_seconds {}", snap.sim_time_s);

    gauge_header(&mut out, "vap_cluster_power_watts", "Fleet-level power draw.");
    let _ = writeln!(out, "vap_cluster_power_watts {}", snap.total_power_w);

    gauge_header(
        &mut out,
        "vap_cluster_cap_watts",
        "Cluster-level power cap in effect (0 when uncapped).",
    );
    let _ = writeln!(out, "vap_cluster_cap_watts {}", snap.cap_w);

    gauge_header(&mut out, "vap_jobs_running", "Jobs currently running.");
    let _ = writeln!(out, "vap_jobs_running {}", snap.running_jobs);

    gauge_header(&mut out, "vap_jobs_queued", "Jobs currently queued.");
    let _ = writeln!(out, "vap_jobs_queued {}", snap.queued_jobs);

    gauge_header(&mut out, "vap_module_power_watts", "Per-module power draw.");
    for m in &snap.modules {
        let _ = writeln!(out, "vap_module_power_watts{{module=\"{}\"}} {}", m.id, m.power_w);
    }

    gauge_header(&mut out, "vap_module_freq_ghz", "Per-module effective frequency.");
    for m in &snap.modules {
        let _ = writeln!(out, "vap_module_freq_ghz{{module=\"{}\"}} {}", m.id, m.freq_ghz);
    }

    gauge_header(
        &mut out,
        "vap_module_cap_watts",
        "Per-module RAPL cap; absent when the module is uncapped.",
    );
    for m in &snap.modules {
        if let Some(cap) = m.cap_w {
            let _ = writeln!(out, "vap_module_cap_watts{{module=\"{}\"}} {}", m.id, cap);
        }
    }

    gauge_header(&mut out, "vap_module_duty", "Per-module clock-modulation run fraction.");
    for m in &snap.modules {
        let _ = writeln!(out, "vap_module_duty{{module=\"{}\"}} {}", m.id, m.duty);
    }

    gauge_header(
        &mut out,
        "vap_module_throttled",
        "1 when RAPL is actively limiting the module, else 0.",
    );
    for m in &snap.modules {
        let _ = writeln!(
            out,
            "vap_module_throttled{{module=\"{}\"}} {}",
            m.id,
            u8::from(m.throttled)
        );
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vap_obs::ModuleSample;

    fn snapshot() -> TelemetrySnapshot {
        TelemetrySnapshot {
            sim_time_s: 30.0,
            total_power_w: 150.5,
            cap_w: 160.0,
            running_jobs: 2,
            queued_jobs: 5,
            modules: vec![
                ModuleSample {
                    id: 0,
                    power_w: 80.25,
                    freq_ghz: 2.4,
                    cap_w: Some(80.0),
                    duty: 0.75,
                    throttled: true,
                },
                ModuleSample {
                    id: 1,
                    power_w: 70.25,
                    freq_ghz: 3.1,
                    cap_w: None,
                    duty: 1.0,
                    throttled: false,
                },
            ],
            ..TelemetrySnapshot::default()
        }
        .seal(9)
    }

    #[test]
    fn renders_cluster_and_module_gauges() {
        let text = render_prometheus(&snapshot());
        assert!(text.contains("# TYPE vap_cluster_power_watts gauge"));
        assert!(text.contains("vap_snapshot_epoch 9\n"));
        assert!(text.contains("vap_sim_time_seconds 30\n"));
        assert!(text.contains("vap_cluster_power_watts 150.5\n"));
        assert!(text.contains("vap_jobs_running 2\n"));
        assert!(text.contains("vap_jobs_queued 5\n"));
        assert!(text.contains("vap_module_power_watts{module=\"0\"} 80.25\n"));
        assert!(text.contains("vap_module_freq_ghz{module=\"1\"} 3.1\n"));
        assert!(text.contains("vap_module_duty{module=\"0\"} 0.75\n"));
        assert!(text.contains("vap_module_throttled{module=\"0\"} 1\n"));
        assert!(text.contains("vap_module_throttled{module=\"1\"} 0\n"));
        // uncapped module 1 must have no cap sample; capped module 0 must
        assert!(text.contains("vap_module_cap_watts{module=\"0\"} 80\n"));
        assert!(!text.contains("vap_module_cap_watts{module=\"1\"}"));
    }

    #[test]
    fn every_sample_line_has_help_and_type() {
        let text = render_prometheus(&snapshot());
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split(['{', ' ']).next().unwrap();
            assert!(text.contains(&format!("# HELP {name} ")), "missing HELP for {name}");
            assert!(text.contains(&format!("# TYPE {name} gauge")), "missing TYPE for {name}");
        }
    }
}
