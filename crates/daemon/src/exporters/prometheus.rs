//! Prometheus text-format exporter: `GET /metrics` over the hand-rolled
//! HTTP server, rendering the latest snapshot in the
//! [exposition format](https://prometheus.io/docs/instrumenting/exposition_formats/)
//! (text version 0.0.4 — `# HELP` / `# TYPE` lines plus labelled
//! samples). Scalar metrics are gauges (the snapshot is a point-in-time
//! view, not a counter stream); the snapshot's log-linear histograms are
//! rendered as real `histogram` families with cumulative
//! `_bucket{le=...}` / `_sum` / `_count` samples. `GET /alerts` serves
//! the snapshot's drift alerts as JSON (hand-rolled — the endpoint works
//! even where serde_json is stubbed out).

use crate::http::{self, Request, Response};
use crate::signal::ShutdownFlag;
use crate::{DaemonError, Exporter};
use std::fmt::Write as _;
use std::net::TcpListener;
use vap_obs::{SnapshotRegistry, TelemetrySnapshot};

/// Serves `GET /metrics` (and a small index page on `/`) over HTTP.
#[derive(Debug)]
pub struct PrometheusExporter {
    listener: TcpListener,
}

impl PrometheusExporter {
    /// Bind to `port` on localhost (0 picks an ephemeral port).
    pub fn bind(port: u16) -> Result<Self, DaemonError> {
        let listener = TcpListener::bind(("127.0.0.1", port))
            .map_err(|e| DaemonError::io(format!("bind prometheus exporter :{port}"), e))?;
        Ok(PrometheusExporter { listener })
    }

    /// The bound address (useful when an ephemeral port was requested).
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, DaemonError> {
        self.listener.local_addr().map_err(|e| DaemonError::io("prometheus local_addr", e))
    }
}

impl Exporter for PrometheusExporter {
    fn name(&self) -> &'static str {
        "prometheus"
    }

    fn serve(
        &mut self,
        registry: &SnapshotRegistry,
        stop: &ShutdownFlag,
    ) -> Result<(), DaemonError> {
        http::serve(&self.listener, stop, |req: &Request| match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/metrics") => {
                Response::ok("text/plain; version=0.0.4", render_prometheus(&registry.read()))
            }
            ("GET", "/alerts") => {
                Response::ok("application/json", render_alerts_json(&registry.read()))
            }
            ("GET", "/") => Response::ok(
                "text/plain",
                "vap-daemon: live telemetry for the simulated fleet\n\
                 GET /metrics — Prometheus text format\n\
                 GET /alerts — drift alerts as JSON\n"
                    .to_string(),
            ),
            (_, path) => Response::not_found(path),
        })
    }
}

fn gauge_header(out: &mut String, name: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
}

/// Render one snapshot in the Prometheus text exposition format.
pub fn render_prometheus(snap: &TelemetrySnapshot) -> String {
    // ~200 bytes of header lines per family plus ~40 per sample.
    let mut out = String::with_capacity(2048 + 256 * snap.modules.len());

    gauge_header(&mut out, "vap_snapshot_epoch", "Publish sequence number of this snapshot.");
    let _ = writeln!(out, "vap_snapshot_epoch {}", snap.epoch);

    gauge_header(&mut out, "vap_sim_time_seconds", "Simulated time of this snapshot.");
    let _ = writeln!(out, "vap_sim_time_seconds {}", snap.sim_time_s);

    gauge_header(&mut out, "vap_cluster_power_watts", "Fleet-level power draw.");
    let _ = writeln!(out, "vap_cluster_power_watts {}", snap.total_power_w);

    gauge_header(
        &mut out,
        "vap_cluster_cap_watts",
        "Cluster-level power cap in effect (0 when uncapped).",
    );
    let _ = writeln!(out, "vap_cluster_cap_watts {}", snap.cap_w);

    gauge_header(&mut out, "vap_jobs_running", "Jobs currently running.");
    let _ = writeln!(out, "vap_jobs_running {}", snap.running_jobs);

    gauge_header(&mut out, "vap_jobs_queued", "Jobs currently queued.");
    let _ = writeln!(out, "vap_jobs_queued {}", snap.queued_jobs);

    gauge_header(&mut out, "vap_module_power_watts", "Per-module power draw.");
    for m in &snap.modules {
        let _ = writeln!(out, "vap_module_power_watts{{module=\"{}\"}} {}", m.id, m.power_w);
    }

    gauge_header(&mut out, "vap_module_freq_ghz", "Per-module effective frequency.");
    for m in &snap.modules {
        let _ = writeln!(out, "vap_module_freq_ghz{{module=\"{}\"}} {}", m.id, m.freq_ghz);
    }

    gauge_header(
        &mut out,
        "vap_module_cap_watts",
        "Per-module RAPL cap; absent when the module is uncapped.",
    );
    for m in &snap.modules {
        if let Some(cap) = m.cap_w {
            let _ = writeln!(out, "vap_module_cap_watts{{module=\"{}\"}} {}", m.id, cap);
        }
    }

    gauge_header(&mut out, "vap_module_duty", "Per-module clock-modulation run fraction.");
    for m in &snap.modules {
        let _ = writeln!(out, "vap_module_duty{{module=\"{}\"}} {}", m.id, m.duty);
    }

    gauge_header(
        &mut out,
        "vap_module_throttled",
        "1 when RAPL is actively limiting the module, else 0.",
    );
    for m in &snap.modules {
        let _ = writeln!(
            out,
            "vap_module_throttled{{module=\"{}\"}} {}",
            m.id,
            u8::from(m.throttled)
        );
    }

    gauge_header(
        &mut out,
        "vap_drift_alerts_total",
        "Drift alerts raised over the producer's lifetime.",
    );
    let _ = writeln!(out, "vap_drift_alerts_total {}", snap.drift_alerts);

    for h in &snap.hists {
        let name = format!("vap_{}", h.name);
        let _ = writeln!(out, "# HELP {name} Log-linear histogram published by the producer.");
        let _ = writeln!(out, "# TYPE {name} histogram");
        // Snapshot buckets are per-bucket counts; Prometheus `le` buckets
        // are cumulative.
        let mut cumulative = 0u64;
        for &vap_obs::BucketCount(le, n) in &h.buckets {
            cumulative += n;
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count);
    }

    out
}

/// Render the snapshot's drift state as JSON, by hand: the fixed field
/// set keeps the serving plane free of any JSON-library dependency.
pub fn render_alerts_json(snap: &TelemetrySnapshot) -> String {
    let mut out = String::with_capacity(128 + 64 * snap.alerts.len());
    let _ = write!(
        out,
        "{{\"epoch\":{},\"sim_time_s\":{},\"drift_alerts\":{},\"alerts\":[",
        snap.epoch, snap.sim_time_s, snap.drift_alerts
    );
    for (i, a) in snap.alerts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"module\":{},\"residual_w\":{},\"z\":{}}}",
            a.module, a.residual_w, a.z
        );
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vap_obs::{BucketCount, DriftAlertSample, HistogramSample, ModuleSample};

    fn snapshot() -> TelemetrySnapshot {
        TelemetrySnapshot {
            sim_time_s: 30.0,
            total_power_w: 150.5,
            cap_w: 160.0,
            running_jobs: 2,
            queued_jobs: 5,
            drift_alerts: 3,
            alerts: vec![DriftAlertSample { module: 1, residual_w: 4.5, z: 5.25 }],
            hists: vec![HistogramSample {
                name: "sched_jct_s".to_string(),
                count: 6,
                sum: 31.5,
                buckets: vec![BucketCount(4.0, 2), BucketCount(8.0, 3), BucketCount(16.0, 1)],
            }],
            modules: vec![
                ModuleSample {
                    id: 0,
                    power_w: 80.25,
                    freq_ghz: 2.4,
                    cap_w: Some(80.0),
                    duty: 0.75,
                    throttled: true,
                },
                ModuleSample {
                    id: 1,
                    power_w: 70.25,
                    freq_ghz: 3.1,
                    cap_w: None,
                    duty: 1.0,
                    throttled: false,
                },
            ],
            ..TelemetrySnapshot::default()
        }
        .seal(9)
    }

    #[test]
    fn renders_cluster_and_module_gauges() {
        let text = render_prometheus(&snapshot());
        assert!(text.contains("# TYPE vap_cluster_power_watts gauge"));
        assert!(text.contains("vap_snapshot_epoch 9\n"));
        assert!(text.contains("vap_sim_time_seconds 30\n"));
        assert!(text.contains("vap_cluster_power_watts 150.5\n"));
        assert!(text.contains("vap_jobs_running 2\n"));
        assert!(text.contains("vap_jobs_queued 5\n"));
        assert!(text.contains("vap_module_power_watts{module=\"0\"} 80.25\n"));
        assert!(text.contains("vap_module_freq_ghz{module=\"1\"} 3.1\n"));
        assert!(text.contains("vap_module_duty{module=\"0\"} 0.75\n"));
        assert!(text.contains("vap_module_throttled{module=\"0\"} 1\n"));
        assert!(text.contains("vap_module_throttled{module=\"1\"} 0\n"));
        // uncapped module 1 must have no cap sample; capped module 0 must
        assert!(text.contains("vap_module_cap_watts{module=\"0\"} 80\n"));
        assert!(!text.contains("vap_module_cap_watts{module=\"1\"}"));
        assert!(text.contains("vap_drift_alerts_total 3\n"));
    }

    #[test]
    fn histograms_render_cumulative_prometheus_buckets() {
        let text = render_prometheus(&snapshot());
        assert!(text.contains("# TYPE vap_sched_jct_s histogram"));
        // per-bucket counts 2/3/1 become cumulative 2/5/6
        assert!(text.contains("vap_sched_jct_s_bucket{le=\"4\"} 2\n"));
        assert!(text.contains("vap_sched_jct_s_bucket{le=\"8\"} 5\n"));
        assert!(text.contains("vap_sched_jct_s_bucket{le=\"16\"} 6\n"));
        assert!(text.contains("vap_sched_jct_s_bucket{le=\"+Inf\"} 6\n"));
        assert!(text.contains("vap_sched_jct_s_sum 31.5\n"));
        assert!(text.contains("vap_sched_jct_s_count 6\n"));
    }

    #[test]
    fn every_sample_line_has_help_and_type() {
        let text = render_prometheus(&snapshot());
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let sample = line.split(['{', ' ']).next().unwrap();
            // histogram samples carry the family's _bucket/_sum/_count suffix
            let name = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|s| sample.strip_suffix(s))
                .unwrap_or(sample);
            assert!(text.contains(&format!("# HELP {name} ")), "missing HELP for {name}");
            let typed = text.contains(&format!("# TYPE {name} gauge"))
                || text.contains(&format!("# TYPE {name} histogram"));
            assert!(typed, "missing TYPE for {name}");
        }
    }

    #[test]
    fn alerts_json_is_parseable_and_complete() {
        let text = render_alerts_json(&snapshot());
        assert!(text.starts_with('{') && text.ends_with("}\n"));
        assert!(text.contains("\"drift_alerts\":3"));
        assert!(text.contains("\"alerts\":[{\"module\":1,\"residual_w\":4.5,\"z\":5.25}]"));
        // an alert-free snapshot renders an empty array, not a null
        let quiet = TelemetrySnapshot::default().seal(1);
        assert!(render_alerts_json(&quiet).contains("\"alerts\":[]"));
    }
}
