//! Stdout exporter: prints every Nth snapshot as a one-line summary —
//! the "just show me it's alive" exporter, scaphandre-style.

use crate::signal::ShutdownFlag;
use crate::{DaemonError, Exporter};
use std::io::Write;
use std::time::Duration;
use vap_obs::{SnapshotRegistry, TelemetrySnapshot};

/// How often the exporter checks for a newer epoch.
const POLL: Duration = Duration::from_millis(20);

/// Prints a compact summary of every `every`-th snapshot to stdout.
#[derive(Debug)]
pub struct StdoutExporter {
    every: u64,
}

impl StdoutExporter {
    /// Print every `every`-th epoch (0 is coerced to 1: constructing a
    /// disabled exporter is the caller's decision, not this type's).
    pub fn new(every: u64) -> Self {
        StdoutExporter { every: every.max(1) }
    }
}

/// One human-scannable line per printed snapshot.
fn summary_line(snap: &TelemetrySnapshot) -> String {
    let throttled = snap.modules.iter().filter(|m| m.throttled).count();
    format!(
        "epoch {:>6}  t={:>10.1}s  power {:>9.1} W  cap {:>8.1} W  jobs {}/{} run/queue  \
         throttled {}/{}",
        snap.epoch,
        snap.sim_time_s,
        snap.total_power_w,
        snap.cap_w,
        snap.running_jobs,
        snap.queued_jobs,
        throttled,
        snap.modules.len()
    )
}

impl Exporter for StdoutExporter {
    fn name(&self) -> &'static str {
        "stdout"
    }

    fn serve(
        &mut self,
        registry: &SnapshotRegistry,
        stop: &ShutdownFlag,
    ) -> Result<(), DaemonError> {
        let mut last_epoch = 0u64;
        let stdout = std::io::stdout();
        while !stop.raised() {
            let epoch = registry.epoch();
            if epoch > last_epoch && epoch.is_multiple_of(self.every) {
                let snap = registry.read();
                last_epoch = snap.epoch;
                let mut out = stdout.lock();
                let _ = writeln!(out, "{}", summary_line(&snap));
            }
            std::thread::sleep(POLL);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vap_obs::ModuleSample;

    #[test]
    fn zero_interval_is_coerced_to_one() {
        assert_eq!(StdoutExporter::new(0).every, 1);
        assert_eq!(StdoutExporter::new(25).every, 25);
    }

    #[test]
    fn summary_counts_throttled_modules() {
        let snap = TelemetrySnapshot {
            sim_time_s: 42.0,
            total_power_w: 240.0,
            cap_w: 320.0,
            running_jobs: 4,
            queued_jobs: 2,
            modules: vec![
                ModuleSample {
                    id: 0,
                    power_w: 80.0,
                    freq_ghz: 2.4,
                    cap_w: Some(80.0),
                    duty: 0.5,
                    throttled: true,
                },
                ModuleSample {
                    id: 1,
                    power_w: 60.0,
                    freq_ghz: 2.8,
                    cap_w: None,
                    duty: 1.0,
                    throttled: false,
                },
            ],
            ..TelemetrySnapshot::default()
        }
        .seal(12);
        let line = summary_line(&snap);
        assert!(line.contains("epoch     12"), "{line}");
        assert!(line.contains("throttled 1/2"), "{line}");
        assert!(line.contains("jobs 4/2"), "{line}");
    }

    #[test]
    fn serve_exits_when_raised() {
        let registry = SnapshotRegistry::new();
        let stop = ShutdownFlag::new();
        stop.raise();
        StdoutExporter::new(1).serve(&registry, &stop).unwrap();
    }
}
