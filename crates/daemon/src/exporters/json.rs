//! Streaming JSON exporter: raw TCP, one line of JSON per published
//! snapshot (newline-delimited JSON, "ndjson"). A client connects and
//! receives the current snapshot immediately, then every subsequent
//! epoch change as its own line — `nc 127.0.0.1 9501 | head` is a
//! perfectly good consumer.

use crate::signal::ShutdownFlag;
use crate::{DaemonError, Exporter};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;
use vap_obs::SnapshotRegistry;

/// How often a connection checks for a newer epoch.
const STREAM_POLL: Duration = Duration::from_millis(10);

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Serves line-delimited JSON snapshots over raw TCP.
#[derive(Debug)]
pub struct JsonExporter {
    listener: TcpListener,
}

impl JsonExporter {
    /// Bind to `port` on localhost (0 picks an ephemeral port).
    pub fn bind(port: u16) -> Result<Self, DaemonError> {
        let listener = TcpListener::bind(("127.0.0.1", port))
            .map_err(|e| DaemonError::io(format!("bind json exporter :{port}"), e))?;
        Ok(JsonExporter { listener })
    }

    /// The bound address (useful when an ephemeral port was requested).
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, DaemonError> {
        self.listener.local_addr().map_err(|e| DaemonError::io("json local_addr", e))
    }
}

/// Stream snapshots to one client until it hangs up or `stop` is raised.
fn stream_snapshots(mut stream: TcpStream, registry: &SnapshotRegistry, stop: &ShutdownFlag) {
    // u64::MAX differs from every real epoch, so the current snapshot is
    // written as soon as the client connects.
    let mut last_epoch = u64::MAX;
    while !stop.raised() {
        let snap = registry.read();
        if snap.epoch != last_epoch {
            last_epoch = snap.epoch;
            let mut line = snap.to_json_line();
            line.push('\n');
            // A write failure means the client left: end this stream.
            if stream.write_all(line.as_bytes()).and_then(|()| stream.flush()).is_err() {
                return;
            }
        }
        std::thread::sleep(STREAM_POLL);
    }
}

impl Exporter for JsonExporter {
    fn name(&self) -> &'static str {
        "json"
    }

    fn serve(
        &mut self,
        registry: &SnapshotRegistry,
        stop: &ShutdownFlag,
    ) -> Result<(), DaemonError> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| DaemonError::io("set_nonblocking on json listener", e))?;
        std::thread::scope(|scope| {
            while !stop.raised() {
                match self.listener.accept() {
                    Ok((stream, _addr)) => {
                        let _ = stream.set_nonblocking(false);
                        scope.spawn(|| stream_snapshots(stream, registry, stop));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => std::thread::sleep(ACCEPT_POLL),
                }
            }
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use vap_obs::TelemetrySnapshot;

    #[test]
    fn streams_each_epoch_once() {
        let registry = SnapshotRegistry::new();
        registry.publish(TelemetrySnapshot { sim_time_s: 1.0, ..TelemetrySnapshot::default() });
        let stop = ShutdownFlag::new();
        let mut exporter = JsonExporter::bind(0).unwrap();
        let addr = exporter.local_addr().unwrap();
        std::thread::scope(|scope| {
            let server = scope.spawn(|| exporter.serve(&registry, &stop));
            let stream = TcpStream::connect(addr).unwrap();
            let mut lines = BufReader::new(stream).lines();
            let first = lines.next().unwrap().unwrap();
            assert!(first.contains("\"epoch\":1"), "{first}");
            assert!(first.contains("\"sim_time_s\":1"), "{first}");
            // publish two more epochs; the stream must deliver each once
            registry
                .publish(TelemetrySnapshot { sim_time_s: 2.0, ..TelemetrySnapshot::default() });
            let second = lines.next().unwrap().unwrap();
            assert!(second.contains("\"epoch\":2"), "{second}");
            registry
                .publish(TelemetrySnapshot { sim_time_s: 3.0, ..TelemetrySnapshot::default() });
            let third = lines.next().unwrap().unwrap();
            assert!(third.contains("\"epoch\":3"), "{third}");
            stop.raise();
            // the server ends the stream and the iterator drains
            assert!(lines.next().is_none());
            server.join().unwrap().unwrap();
        });
    }
}
