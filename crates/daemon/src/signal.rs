//! Cooperative shutdown: one process-wide flag raised by SIGTERM/SIGINT
//! (or programmatically), polled by the sensor loop and every exporter.
//!
//! The handler is registered through `libc`'s `signal(2)` via a
//! one-line `extern` declaration — the workspace takes no external
//! crates, and the handler body is a single atomic store, which is
//! async-signal-safe.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Set from the signal handler; merged into every [`ShutdownFlag`].
// vap:allow(shared-state-in-par): write-once shutdown latch set only by a signal handler; it gates when the run stops, never what it computes
static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// A shared stop flag: raised locally (tests, tick budgets) or by a
/// delivered SIGTERM/SIGINT. Clones observe the same local flag.
#[derive(Debug, Clone, Default)]
pub struct ShutdownFlag {
    local: Arc<AtomicBool>,
}

impl ShutdownFlag {
    /// A fresh, unraised flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request shutdown.
    pub fn raise(&self) {
        self.local.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested, locally or by signal.
    pub fn raised(&self) -> bool {
        self.local.load(Ordering::SeqCst) || SIGNALLED.load(Ordering::SeqCst)
    }
}

#[cfg(unix)]
#[allow(unsafe_code)] // the crate's one FFI call; SAFETY argued at the call site
mod unix {
    use super::{AtomicBool, Ordering, SIGNALLED};

    // Re-assert the default handler disposition contract ourselves: the
    // handler is a plain `extern "C"` function whose body is one atomic
    // store (async-signal-safe per POSIX).
    type SigHandler = extern "C" fn(i32);
    extern "C" {
        fn signal(signum: i32, handler: SigHandler) -> isize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }

    /// Guard so repeated installs (tests, multiple service runs in one
    /// process) register the handler once.
    // vap:allow(shared-state-in-par): write-once install latch for the process-wide signal handler; no simulation state
    static INSTALLED: AtomicBool = AtomicBool::new(false);

    pub fn install() {
        if INSTALLED.swap(true, Ordering::SeqCst) {
            return;
        }
        // SAFETY: registering an async-signal-safe `extern "C"` handler
        // for SIGINT/SIGTERM; `signal` itself has no memory-safety
        // preconditions beyond a valid function pointer.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

/// Install SIGTERM/SIGINT handlers that raise the process-wide shutdown
/// flag. Idempotent; a no-op on non-unix targets.
pub fn install_handlers() {
    #[cfg(unix)]
    unix::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_raise_is_shared_by_clones() {
        let flag = ShutdownFlag::new();
        let clone = flag.clone();
        assert!(!flag.raised());
        assert!(!clone.raised());
        clone.raise();
        assert!(flag.raised());
    }

    #[test]
    fn distinct_flags_are_independent() {
        let a = ShutdownFlag::new();
        let b = ShutdownFlag::new();
        a.raise();
        assert!(a.raised());
        assert!(!b.raised());
    }

    #[test]
    fn install_is_idempotent() {
        install_handlers();
        install_handlers();
    }
}
