//! # vap-daemon
//!
//! The live telemetry service plane: a long-running binary that advances
//! a simulated cluster (or a scheduling campaign) in accelerated virtual
//! time and serves per-module power / frequency / cap / duty-cycle /
//! throttle metrics to many concurrent clients.
//!
//! The layout mirrors scaphandre's sensor/exporter split:
//!
//! * **Sensors** ([`sensors`]) own the deterministic simulation and run
//!   on the main thread (where the `vap_obs` session lives, so the
//!   journal records the campaign). Each tick produces an unsealed
//!   [`vap_obs::TelemetrySnapshot`].
//! * The **registry** ([`vap_obs::SnapshotRegistry`]) is the seam: the
//!   sensor publishes epoch-stamped, checksummed snapshots with an
//!   atomic pointer swap; readers clone the latest without ever taking a
//!   lock. Thousands of scrapers cannot block or perturb the sim loop —
//!   the daemon's journal is byte-identical with 0 or 200 scrapers
//!   attached (`tests/determinism.rs`).
//! * **Exporters** ([`exporters`]) run on their own threads behind one
//!   [`exporters::Exporter`] trait: Prometheus text format over a
//!   hand-rolled HTTP/1.1 server ([`http`]), line-delimited JSON
//!   streaming, and stdout. Exporters never write to `vap_obs` — serving
//!   is a pure read of the registry.
//!
//! Everything is zero-dependency like the rest of the workspace: the
//! HTTP server is `std::net::TcpListener`, the wire formats are
//! hand-rolled, and shutdown is a signal-raised atomic flag
//! ([`signal`]).
//!
//! Wall-clock time exists only in the pacing/soak side channel
//! ([`clock`]); simulation time is stepped explicitly, so the telemetry
//! stream is a pure function of `(mode, modules, seed, scale)`.

// `deny` rather than the workspace-usual `forbid`: the signal module
// carries the workspace's only FFI (one `signal(2)` registration) behind
// a scoped allow with a SAFETY argument.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod config;
pub mod exporters;
pub mod http;
pub mod sensors;
pub mod service;
pub mod signal;

pub use config::{DaemonConfig, Mode};
pub use exporters::Exporter;
pub use sensors::Sensor;
pub use service::{run, DaemonSummary, Service};
pub use signal::ShutdownFlag;

/// The daemon's error type: an operation that failed and why.
#[derive(Debug)]
pub struct DaemonError {
    /// What the daemon was doing.
    pub context: String,
    /// The underlying I/O failure, when there is one.
    pub source: Option<std::io::Error>,
}

impl DaemonError {
    /// An error with an I/O cause.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        DaemonError { context: context.into(), source: Some(source) }
    }

    /// An error without an underlying cause.
    pub fn msg(context: impl Into<String>) -> Self {
        DaemonError { context: context.into(), source: None }
    }
}

impl std::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.context)
    }
}

impl std::error::Error for DaemonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.source.as_ref().map(|e| e as &(dyn std::error::Error + 'static))
    }
}
