//! Wall-clock pacing for the sensor loop.
//!
//! This is the *only* place in the serving plane that reads real time,
//! and it feeds nothing back into the simulation: the sim advances in
//! explicit virtual-time steps, and the pacer merely sleeps the main
//! thread so virtual time tracks `accel ×` wall time. Determinism of the
//! telemetry stream (`tests/determinism.rs`) therefore survives any
//! scheduling jitter — pacing changes *when* a snapshot is published,
//! never *what* it contains.

use std::time::{Duration, Instant};

/// Sleeps the sensor loop so simulated time advances at `accel` virtual
/// seconds per wall second. `accel == 0` disables pacing (free-run).
#[derive(Debug)]
pub struct Pacer {
    accel: f64,
    start: Option<Instant>,
}

impl Pacer {
    /// A pacer for the given acceleration factor.
    pub fn new(accel: f64) -> Self {
        Pacer { accel, start: None }
    }

    /// Block until wall time catches up with `sim_time_s / accel`,
    /// measured from the first call. Free-running pacers return
    /// immediately.
    pub fn pace(&mut self, sim_time_s: f64) {
        if self.accel <= 0.0 {
            return;
        }
        // vap:allow(determinism): wall-clock pacing side channel, feeds nothing into the sim
        let start = *self.start.get_or_insert_with(Instant::now);
        let target = Duration::from_secs_f64((sim_time_s / self.accel).max(0.0));
        let elapsed = start.elapsed();
        if target > elapsed {
            std::thread::sleep(target - elapsed);
        }
    }
}

/// Measures wall time for soak reports and throughput numbers.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        // vap:allow(determinism): wall-clock measurement for soak/bench reporting only
        Stopwatch { started: Instant::now() }
    }

    /// Seconds since [`Stopwatch::start`].
    pub fn elapsed_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// A wall-clock budget: `expired()` flips to true after `limit_s`.
/// A zero (or negative) limit never expires.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    started: Instant,
    limit_s: f64,
}

impl Deadline {
    /// Start a budget of `limit_s` wall seconds (0 = unbounded).
    pub fn start(limit_s: f64) -> Self {
        // vap:allow(determinism): wall-clock run-duration budget, not simulation state
        Deadline { started: Instant::now(), limit_s }
    }

    /// Whether the budget has been used up.
    pub fn expired(&self) -> bool {
        self.limit_s > 0.0 && self.started.elapsed().as_secs_f64() >= self.limit_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_running_pacer_never_sleeps() {
        let mut pacer = Pacer::new(0.0);
        let sw = Stopwatch::start();
        for t in 0..1000 {
            pacer.pace(f64::from(t));
        }
        // 1000 virtual seconds in well under one wall second
        assert!(sw.elapsed_s() < 1.0);
    }

    #[test]
    fn pacer_tracks_accelerated_time() {
        // 1000 virtual seconds per wall second: 50 virtual seconds
        // should take ~50 ms of wall time.
        let mut pacer = Pacer::new(1000.0);
        let sw = Stopwatch::start();
        pacer.pace(50.0);
        let elapsed = sw.elapsed_s();
        assert!(elapsed >= 0.045, "paced too fast: {elapsed}s");
        assert!(elapsed < 5.0, "paced far too slow: {elapsed}s");
    }

    #[test]
    fn zero_deadline_never_expires() {
        assert!(!Deadline::start(0.0).expired());
        assert!(!Deadline::start(-1.0).expired());
    }

    #[test]
    fn short_deadline_expires() {
        let d = Deadline::start(0.01);
        std::thread::sleep(Duration::from_millis(25));
        assert!(d.expired());
    }
}
