//! A deliberately small HTTP/1.1 server over `std::net::TcpListener`.
//!
//! Just enough protocol for a metrics endpoint: parse the request line,
//! drain headers, call a handler, write one `Connection: close`
//! response. The accept loop is non-blocking so it can poll the
//! [`ShutdownFlag`] between connections, and each connection is handled
//! on a scoped thread so the handler can borrow the snapshot registry
//! without `Arc` plumbing.

use crate::signal::ShutdownFlag;
use crate::DaemonError;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Per-connection read timeout: a scraper that stalls mid-request gets
/// cut off rather than pinning a thread.
const READ_TIMEOUT: Duration = Duration::from_millis(500);

/// A parsed request line (headers are drained and ignored — a metrics
/// endpoint needs none of them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `HEAD`, …
    pub method: String,
    /// Path component, e.g. `/metrics`.
    pub path: String,
}

/// A response the handler wants on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code (200, 404, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A `200 OK` plain-text response.
    pub fn ok(content_type: &'static str, body: String) -> Self {
        Response { status: 200, content_type, body }
    }

    /// A `404 Not Found` response naming the path.
    pub fn not_found(path: &str) -> Self {
        Response { status: 404, content_type: "text/plain", body: format!("no route: {path}\n") }
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        _ => "Internal Server Error",
    }
}

/// Read the request line and drain headers until the blank line.
fn read_request(stream: &TcpStream) -> std::io::Result<Request> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    if method.is_empty() || path.is_empty() {
        return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "bad request line"));
    }
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header)?;
        if n == 0 || header.trim_end().is_empty() {
            return Ok(Request { method, path });
        }
    }
}

fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        status_text(response.status),
        response.content_type,
        response.body.len()
    )?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

fn handle_connection(mut stream: TcpStream, handler: &(impl Fn(&Request) -> Response + Sync)) {
    let response = match read_request(&stream) {
        Ok(request) => handler(&request),
        Err(_) => Response {
            status: 400,
            content_type: "text/plain",
            body: "bad request\n".to_string(),
        },
    };
    // A scraper that hung up early is its problem, not ours.
    let _ = write_response(&mut stream, &response);
}

/// Serve `handler` on `listener` until `stop` is raised. Each accepted
/// connection runs on its own scoped thread; the function returns only
/// after all in-flight connections finish.
pub fn serve(
    listener: &TcpListener,
    stop: &ShutdownFlag,
    handler: impl Fn(&Request) -> Response + Sync,
) -> Result<(), DaemonError> {
    listener
        .set_nonblocking(true)
        .map_err(|e| DaemonError::io("set_nonblocking on http listener", e))?;
    std::thread::scope(|scope| {
        while !stop.raised() {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    // Blocking I/O per connection; the listener alone stays
                    // non-blocking so the stop flag is honoured promptly.
                    let _ = stream.set_nonblocking(false);
                    let handler = &handler;
                    scope.spawn(move || handle_connection(stream, handler));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: std::net::SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_and_stops() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = ShutdownFlag::new();
        let stop_serving = stop.clone();
        std::thread::scope(|scope| {
            let server = scope.spawn(move || {
                serve(&listener, &stop_serving, |req| match req.path.as_str() {
                    "/hello" => Response::ok("text/plain", format!("{} says hi\n", req.method)),
                    other => Response::not_found(other),
                })
            });
            let ok = get(addr, "/hello");
            assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
            assert!(ok.contains("Connection: close"));
            assert!(ok.ends_with("GET says hi\n"));
            let missing = get(addr, "/nope");
            assert!(missing.starts_with("HTTP/1.1 404 Not Found\r\n"), "{missing}");
            stop.raise();
            server.join().unwrap().unwrap();
        });
    }

    #[test]
    fn malformed_request_gets_400() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = ShutdownFlag::new();
        let stop_serving = stop.clone();
        std::thread::scope(|scope| {
            let server = scope.spawn(move || {
                serve(&listener, &stop_serving, |_| Response::ok("text/plain", "ok".into()))
            });
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(b"\r\n\r\n").unwrap();
            let mut out = String::new();
            stream.read_to_string(&mut out).unwrap();
            assert!(out.starts_with("HTTP/1.1 400"), "{out}");
            stop.raise();
            server.join().unwrap().unwrap();
        });
    }
}
