//! The scheduling-campaign sensor: a full `vap-sched` trace replay
//! (the `sched_study` recipe's exemplar cell — variation-aware
//! allocation under a cluster-level cap with uniform online
//! rebalancing), publishing one snapshot per scheduler event. Unlike
//! the sweep sensor this campaign *finishes*: the daemon exits cleanly
//! when the trace drains.

use std::ops::ControlFlow;
use vap_core::budgeter::Budgeter;
use vap_model::units::Watts;
use vap_obs::TelemetrySnapshot;
use vap_report::experiments::common;
use vap_report::options::RunOptions;
use vap_scenario::{Scenario, ScenarioRuntime};
use vap_sched::{QueueDiscipline, ReallocPolicy, SchedConfig, SchedReport, SchedRuntime, Trace, TraceGen};
use vap_sim::scheduler::AllocationPolicy;

/// Per-module cap level for the campaign (W): the middle rung of the
/// paper's ladder — tight enough that rebalancing visibly matters,
/// loose enough that the whole trace completes.
const CAP_W_PER_MODULE: f64 = 80.0;

/// Jobs in the generated trace at paper scale.
const JOBS: usize = 36;

/// A ready-to-replay scheduling campaign.
pub struct SchedCampaign {
    runtime: SchedRuntime,
    trace: Trace,
}

impl SchedCampaign {
    /// Build the campaign from the shared options: fleet size
    /// (`--modules`, default 96), `--seed`, and `--scale` exactly as the
    /// `sched-study` experiment interprets them.
    pub fn from_options(opts: &RunOptions) -> Self {
        SchedCampaign::with_scenario(opts, Scenario::Null)
    }

    /// [`Self::from_options`] plus a non-stationary scenario: the
    /// perturbation schedule covers the trace's span (last arrival plus
    /// slack) and merges into the replay's event queue. [`Scenario::Null`]
    /// installs nothing and is byte-identical to the plain campaign.
    pub fn with_scenario(opts: &RunOptions, scenario: Scenario) -> Self {
        let n = opts.modules_or(96);
        let mut cluster = common::ha8k(n, opts.seed);
        let budgeter = Budgeter::install_with_threads(&mut cluster, opts.seed, opts.threads());
        let gen = TraceGen {
            mean_interarrival_s: 10.0 * opts.scale,
            work_scale: opts.scale,
            ..TraceGen::new(JOBS, n)
        };
        let trace = gen.generate(opts.seed);
        let cfg = SchedConfig {
            allocation: AllocationPolicy::LowestPowerFirst,
            realloc: ReallocPolicy::UniformRebalance,
            queue: QueueDiscipline::Backfill,
            cap: Watts(CAP_W_PER_MODULE * n as f64),
        };
        let mut runtime = SchedRuntime::new(cluster, budgeter.pvt().clone(), opts.seed, cfg);
        if scenario != Scenario::Null {
            let last_arrival_s =
                trace.jobs.last().map_or(0.0, |j| j.at_s).max(1.0);
            runtime = runtime.with_scenario(ScenarioRuntime::new(
                scenario,
                n,
                last_arrival_s * 1.5,
                opts.seed,
            ));
        }
        SchedCampaign { runtime, trace }
    }

    /// Jobs in the campaign's trace.
    pub fn jobs(&self) -> usize {
        JOBS
    }

    /// Replay the trace, handing every post-event snapshot to `publish`.
    /// Returning [`ControlFlow::Break`] from `publish` stops the replay
    /// early (shutdown); either way the scheduler's final report comes
    /// back for the exit summary.
    pub fn run(
        self,
        mut publish: impl FnMut(TelemetrySnapshot) -> ControlFlow<()>,
    ) -> SchedReport {
        let SchedCampaign { runtime, trace } = self;
        runtime.run_with(&trace, |rt| {
            vap_obs::incr("daemon.ticks");
            publish(rt.telemetry())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RunOptions {
        RunOptions {
            modules: Some(16),
            seed: 2015,
            scale: 0.05,
            threads: Some(1),
            ..RunOptions::default()
        }
    }

    #[test]
    fn campaign_publishes_consistent_snapshots() {
        let mut snaps: Vec<TelemetrySnapshot> = Vec::new();
        let report = SchedCampaign::from_options(&small()).run(|snap| {
            snaps.push(snap);
            ControlFlow::Continue(())
        });
        assert!(!snaps.is_empty(), "a replay has at least one event");
        assert!(report.completed_count() > 0, "scaled-down trace still completes jobs");
        for snap in &snaps {
            assert_eq!(snap.modules.len(), 16);
            assert_eq!(snap.cap_w, CAP_W_PER_MODULE * 16.0);
        }
        // simulated time never runs backwards across events
        assert!(snaps.windows(2).all(|w| w[0].sim_time_s <= w[1].sim_time_s));
        // at some point the campaign actually ran jobs
        assert!(snaps.iter().any(|s| s.running_jobs > 0));
    }

    #[test]
    fn breaking_stops_the_replay_early() {
        let mut count = 0usize;
        SchedCampaign::from_options(&small()).run(|_| {
            count += 1;
            if count == 3 { ControlFlow::Break(()) } else { ControlFlow::Continue(()) }
        });
        assert_eq!(count, 3);
    }

    #[test]
    fn same_seed_same_event_stream() {
        let stream = || {
            let mut sig = Vec::new();
            SchedCampaign::from_options(&small()).run(|snap| {
                sig.push(snap.seal(sig.len() as u64 + 1).checksum);
                ControlFlow::Continue(())
            });
            sig
        };
        assert_eq!(stream(), stream());
    }

    #[test]
    fn scenario_campaigns_are_deterministic_and_null_matches_plain() {
        let stream = |scenario: Scenario| {
            let mut sig = Vec::new();
            SchedCampaign::with_scenario(&small(), scenario).run(|snap| {
                sig.push(snap.seal(sig.len() as u64 + 1).checksum);
                ControlFlow::Continue(())
            });
            sig
        };
        assert_eq!(
            stream(Scenario::Null),
            stream(Scenario::Null),
            "null scenario must replay identically"
        );
        assert_eq!(stream(Scenario::Mixed), stream(Scenario::Mixed));
        assert_ne!(
            stream(Scenario::Mixed),
            stream(Scenario::Null),
            "a mixed scenario must perturb the campaign"
        );
    }
}
