//! Sensors: the write side of the service plane.
//!
//! A sensor owns a deterministic simulation and advances it one tick at
//! a time on the **main thread** — the thread where the binary's
//! [`vap_obs::Session`] lives, so every tick's counters land in the
//! journal. Each tick yields an unsealed
//! [`vap_obs::TelemetrySnapshot`] for the service loop to publish; the
//! sensor never sees the registry or the exporters, which is what keeps
//! the simulation a pure function of its seed.

mod sched;
mod sweep;

pub use sched::SchedCampaign;
pub use sweep::CapSweepSensor;

use vap_obs::TelemetrySnapshot;

/// A deterministic telemetry source stepped by the service loop.
pub trait Sensor {
    /// Short name for logs and the startup banner.
    fn name(&self) -> &'static str;

    /// Advance one tick and report the fleet's state, or `None` when the
    /// sensor has nothing left to simulate (end of trace / tick budget).
    fn tick(&mut self) -> Option<TelemetrySnapshot>;
}
