//! The cap-sweep sensor: a fixed fleet running DGEMM while the daemon
//! walks the paper's per-module cap ladder (95 W → 80 W → 68 W →
//! uncapped, repeating). Each tick advances one simulated second, so the
//! exporters show RAPL throttling ripple across a heterogeneous fleet as
//! the cap tightens — the paper's §4 story, live.

use crate::sensors::Sensor;
use vap_model::systems::SystemSpec;
use vap_model::units::{Seconds, Watts};
use vap_obs::{DriftAlertSample, DriftConfig, DriftDetector};
use vap_scenario::{Effect, ScenarioRuntime};
use vap_sim::cluster::Cluster;
use vap_sim::rapl::RaplLimit;
use vap_workloads::{catalog, WorkloadId};

/// The cap ladder walked by the sensor: the paper's Cm levels, then a
/// recovery dwell with caps released. `None` means uncapped.
const CAP_LADDER_W: [Option<f64>; 4] = [Some(95.0), Some(80.0), Some(68.0), None];

/// Simulated seconds spent at each ladder rung before stepping.
const DWELL_TICKS: u64 = 30;

/// Live drift alerts kept in each snapshot.
const RECENT_ALERTS: usize = 8;

/// A capped fleet under load, stepped one simulated second per tick.
pub struct CapSweepSensor {
    cluster: Cluster,
    seed: u64,
    sim_time_s: f64,
    ticks: u64,
    max_ticks: u64,
    rung: usize,
    drift: DriftDetector,
    recent_alerts: Vec<DriftAlertSample>,
    scenario: Option<ScenarioRuntime>,
}

impl CapSweepSensor {
    /// Build the fleet: `n` HA8K modules from `seed`, all running DGEMM.
    /// `max_ticks == 0` runs forever.
    pub fn new(n: usize, seed: u64, max_ticks: u64) -> Self {
        let mut cluster = Cluster::with_size(SystemSpec::ha8k(), n, seed);
        catalog::get(WorkloadId::Dgemm).apply_to(&mut cluster, seed);
        let drift = DriftDetector::new(cluster.len(), DriftConfig::default());
        let mut sensor = CapSweepSensor {
            cluster,
            seed,
            sim_time_s: 0.0,
            ticks: 0,
            max_ticks,
            rung: 0,
            drift,
            recent_alerts: Vec::new(),
            scenario: None,
        };
        sensor.apply_rung();
        sensor
    }

    /// Install a non-stationary perturbation schedule: events apply at
    /// their simulated time as the sweep ticks. A schedule with no
    /// events leaves the sweep byte-identical to a plain run.
    pub fn with_scenario(mut self, scenario: ScenarioRuntime) -> Self {
        self.scenario = Some(scenario);
        self
    }

    /// Program the current ladder rung onto every module, scaled by any
    /// active scenario cap shock.
    fn apply_rung(&mut self) {
        let scale = self.scenario.as_ref().map_or(1.0, |s| s.shock_scale());
        match CAP_LADDER_W[self.rung] {
            Some(cap_w) => {
                self.cluster
                    .set_uniform_cap(RaplLimit::with_default_window(Watts(cap_w * scale)));
            }
            None => self.cluster.uncap_all(),
        }
        vap_obs::incr("daemon.cap_transitions");
    }

    /// The per-module cap currently programmed (W); 0 when uncapped.
    fn rung_cap_w(&self) -> f64 {
        let scale = self.scenario.as_ref().map_or(1.0, |s| s.shock_scale());
        CAP_LADDER_W[self.rung].map(|w| w * scale).unwrap_or(0.0)
    }

    /// Apply scenario events due at the current simulated time and react
    /// to their effects: a cap shock re-programs the rung at the shocked
    /// scale, a failed module idles, a replacement picks the workload
    /// back up on fresh silicon.
    fn advance_scenario(&mut self) {
        let Some(mut sc) = self.scenario.take() else {
            return;
        };
        let effects = sc.advance_cluster(self.sim_time_s, &mut self.cluster);
        self.scenario = Some(sc);
        for effect in effects {
            match effect {
                Effect::Module(_) | Effect::Sensor(_) => {}
                Effect::Cap => self.apply_rung(),
                Effect::Failed(m) => {
                    if let Some(module) = self.cluster.get_mut(m) {
                        module.set_activity(vap_model::power::PowerActivity::IDLE);
                    }
                }
                Effect::Replaced(m) => {
                    catalog::get(WorkloadId::Dgemm).apply_to_modules(
                        &mut self.cluster,
                        &[m],
                        self.seed,
                    );
                }
            }
        }
    }
}

impl Sensor for CapSweepSensor {
    fn name(&self) -> &'static str {
        "cap-sweep"
    }

    fn tick(&mut self) -> Option<vap_obs::TelemetrySnapshot> {
        if self.max_ticks > 0 && self.ticks >= self.max_ticks {
            return None;
        }
        if self.ticks > 0 && self.ticks.is_multiple_of(DWELL_TICKS) {
            self.rung = (self.rung + 1) % CAP_LADDER_W.len();
            self.apply_rung();
        }
        self.cluster.step_all(Seconds(1.0));
        self.ticks += 1;
        self.sim_time_s += 1.0;
        self.advance_scenario();
        vap_obs::incr("daemon.ticks");
        for idx in 0..self.cluster.len() {
            let Some(m) = self.cluster.get(idx) else { continue };
            let true_w = m.module_power().value();
            let predicted = m.pvt_predicted_power().value();
            let measured = match self.scenario.as_mut() {
                Some(sc) => sc.read_power(idx, true_w),
                None => true_w,
            };
            let residual = measured - predicted;
            if let Some(alert) = self.drift.observe(idx, self.sim_time_s, residual) {
                vap_obs::incr("daemon.drift_alerts");
                self.recent_alerts.push(DriftAlertSample {
                    module: alert.module,
                    residual_w: alert.residual_w,
                    z: alert.z,
                });
                if self.recent_alerts.len() > RECENT_ALERTS {
                    self.recent_alerts.remove(0);
                }
            }
        }
        let modules = self.cluster.telemetry();
        let total_power_w = modules.iter().map(|m| m.power_w).sum();
        vap_obs::observe("daemon.fleet_power_w", total_power_w);
        Some(vap_obs::TelemetrySnapshot {
            sim_time_s: self.sim_time_s,
            total_power_w,
            cap_w: self.rung_cap_w() * modules.len() as f64,
            running_jobs: 0,
            queued_jobs: 0,
            drift_alerts: self.drift.alerts_total(),
            alerts: self.recent_alerts.clone(),
            modules,
            ..vap_obs::TelemetrySnapshot::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vap_model::variability::DriftSkew;
    use vap_scenario::{PerturbationKind, Scenario, ScenarioEvent};

    #[test]
    fn ticks_advance_time_and_respect_the_budget() {
        let mut sensor = CapSweepSensor::new(4, 2015, 3);
        let first = sensor.tick().unwrap();
        assert_eq!(first.sim_time_s, 1.0);
        assert_eq!(first.modules.len(), 4);
        assert!(first.total_power_w > 0.0, "loaded fleet must draw power");
        assert!(sensor.tick().is_some());
        assert!(sensor.tick().is_some());
        assert!(sensor.tick().is_none(), "tick budget of 3 is exhausted");
    }

    #[test]
    fn ladder_walks_through_uncapped() {
        let mut sensor = CapSweepSensor::new(2, 2015, 0);
        let mut caps = Vec::new();
        for _ in 0..(DWELL_TICKS * 4) {
            caps.push(sensor.tick().unwrap().cap_w);
        }
        // one dwell at each rung: 95, 80, 68, uncapped (0), scaled by n=2
        assert_eq!(caps[0], 190.0);
        assert_eq!(caps[DWELL_TICKS as usize], 160.0);
        assert_eq!(caps[2 * DWELL_TICKS as usize], 136.0);
        assert_eq!(caps[3 * DWELL_TICKS as usize], 0.0);
    }

    #[test]
    fn drift_state_rides_along_in_snapshots() {
        let mut sensor = CapSweepSensor::new(3, 2015, 0);
        let mut last = None;
        for _ in 0..(DWELL_TICKS * 2) {
            last = sensor.tick();
        }
        let snap = last.unwrap();
        // the live window is bounded and never exceeds the lifetime total
        assert!(snap.alerts.len() <= RECENT_ALERTS);
        assert!(snap.drift_alerts >= snap.alerts.len() as u64);
    }

    #[test]
    fn same_seed_same_stream() {
        let run = |seed| {
            let mut sensor = CapSweepSensor::new(3, seed, 50);
            let mut stream = Vec::new();
            while let Some(snap) = sensor.tick() {
                stream.push(snap.seal(stream.len() as u64 + 1).checksum);
            }
            stream
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different fleets must differ somewhere");
    }

    #[test]
    fn null_scenario_is_byte_identical_to_no_scenario() {
        let checksums = |sensor: &mut CapSweepSensor| {
            let mut stream = Vec::new();
            while let Some(snap) = sensor.tick() {
                stream.push(snap.seal(stream.len() as u64 + 1).checksum);
            }
            stream
        };
        let mut plain = CapSweepSensor::new(3, 2015, 40);
        let mut null = CapSweepSensor::new(3, 2015, 40)
            .with_scenario(ScenarioRuntime::new(Scenario::Null, 3, 40.0, 2015));
        assert_eq!(checksums(&mut plain), checksums(&mut null));
    }

    #[test]
    fn injected_drift_alerts_within_bounded_ticks_and_null_does_not() {
        // Null: nothing in the sim evolves between ticks at a fixed rung
        // (power is a pure function of the operating point), so residuals
        // are constant for the whole first dwell and the detector must
        // stay silent even past its warmup.
        let mut null = CapSweepSensor::new(4, 2015, 0);
        for _ in 0..(DWELL_TICKS - 1) {
            let snap = null.tick().unwrap();
            assert_eq!(
                snap.drift_alerts, 0,
                "stationary sweep must not alert at t={}",
                snap.sim_time_s
            );
        }

        // Drift: a step on module 1 at t=20 s — past the detector warmup
        // (16 observations), before the first rung change (tick 30) —
        // must alert within a few ticks, attributed to that module.
        let step = DriftSkew { dynamic: 1.15, leakage: 1.4, dram: 1.05 };
        let events = vec![ScenarioEvent {
            at_s: 20.0,
            seq: 0,
            kind: PerturbationKind::Drift { module: 1, step },
        }];
        let mut drifted = CapSweepSensor::new(4, 2015, 0)
            .with_scenario(ScenarioRuntime::from_events(events, 4, 2015));
        let mut alert_tick = None;
        for t in 1..DWELL_TICKS {
            let snap = drifted.tick().unwrap();
            if snap.drift_alerts > 0 {
                assert!(
                    snap.alerts.iter().any(|a| a.module == 1),
                    "the alert must attribute to the drifted module: {:?}",
                    snap.alerts
                );
                alert_tick = Some(t);
                break;
            }
        }
        let fired = alert_tick.expect("injected drift never alerted within the dwell");
        assert!(
            (20..=23).contains(&fired),
            "alert should fire within a few ticks of the t=20 injection, got tick {fired}"
        );
    }
}
