//! The service loop: wire a sensor, the snapshot registry, and the
//! exporters together and run until the sensor finishes, a budget
//! expires, or a signal arrives.
//!
//! Thread layout: the **sensor runs on the caller's thread** (the main
//! thread in the binary, where the `vap_obs::Session` is installed, so
//! the journal sees the campaign), while each exporter gets one scoped
//! thread borrowing the registry. The registry is the only shared state,
//! and its read path is lock-free — which is why the journal written by
//! a daemon run is byte-identical whether 0 or 200 scrapers are attached
//! (`tests/determinism.rs` holds this to `cmp`-level equality).

use crate::clock::{Deadline, Pacer, Stopwatch};
use crate::config::{DaemonConfig, Mode};
use crate::exporters::{JsonExporter, PrometheusExporter, StdoutExporter};
use crate::sensors::{CapSweepSensor, SchedCampaign, Sensor};
use crate::signal::{self, ShutdownFlag};
use crate::{DaemonError, Exporter};
use std::ops::ControlFlow;
use vap_obs::SnapshotRegistry;
use vap_report::options::RunOptions;
use vap_scenario::{Scenario, ScenarioRuntime};

/// Default fleet size when `--modules` is not given: big enough to show
/// fleet-level variation spread, small enough to tick fast.
const DEFAULT_MODULES: usize = 96;

/// A bound-but-not-yet-running daemon: listeners are open (so ephemeral
/// ports can be reported before the first tick) and the shutdown flag
/// exists (so tests and supervisors can stop a run they started).
pub struct Service {
    opts: RunOptions,
    cfg: DaemonConfig,
    registry: SnapshotRegistry,
    stop: ShutdownFlag,
    prometheus: PrometheusExporter,
    json: JsonExporter,
}

/// What a finished daemon run did, for the exit banner.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonSummary {
    /// The sensor mode that ran.
    pub mode: Mode,
    /// Snapshots published into the registry.
    pub published: u64,
    /// Simulated time reached (seconds).
    pub sim_time_s: f64,
    /// Lock-free registry reads served to exporters and scrapers.
    pub registry_reads: u64,
    /// Wall-clock run time (seconds).
    pub wall_s: f64,
    /// Jobs completed, when the sensor was a scheduling campaign.
    pub completed_jobs: Option<usize>,
}

impl std::fmt::Display for DaemonSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mode = match self.mode {
            Mode::Sweep => "sweep",
            Mode::Sched => "sched",
        };
        write!(
            f,
            "vap-daemon ({mode}): published {} snapshots to {:.1} simulated s \
             in {:.2} wall s; served {} registry reads",
            self.published, self.sim_time_s, self.wall_s, self.registry_reads
        )?;
        if let Some(jobs) = self.completed_jobs {
            write!(f, "; {jobs} jobs completed")?;
        }
        Ok(())
    }
}

impl Service {
    /// Open the exporters' listeners. Nothing is simulated yet.
    pub fn bind(opts: &RunOptions, cfg: &DaemonConfig) -> Result<Self, DaemonError> {
        Ok(Service {
            opts: opts.clone(),
            cfg: cfg.clone(),
            registry: SnapshotRegistry::new(),
            stop: ShutdownFlag::new(),
            prometheus: PrometheusExporter::bind(cfg.prom_port)?,
            json: JsonExporter::bind(cfg.json_port)?,
        })
    }

    /// Address of the Prometheus HTTP endpoint.
    pub fn prom_addr(&self) -> Result<std::net::SocketAddr, DaemonError> {
        self.prometheus.local_addr()
    }

    /// Address of the streaming JSON endpoint.
    pub fn json_addr(&self) -> Result<std::net::SocketAddr, DaemonError> {
        self.json.local_addr()
    }

    /// A handle that stops this service when raised (tests, embedders).
    pub fn stop_flag(&self) -> ShutdownFlag {
        self.stop.clone()
    }

    /// Run to completion: installs SIGTERM/SIGINT handlers, serves until
    /// the sensor finishes or a budget/signal stops the run, then joins
    /// every exporter before returning the summary.
    pub fn run(self) -> Result<DaemonSummary, DaemonError> {
        let Service { opts, cfg, registry, stop, prometheus, json } = self;
        signal::install_handlers();
        let watch = Stopwatch::start();

        let mut exporters: Vec<Box<dyn Exporter>> = vec![Box::new(prometheus), Box::new(json)];
        if cfg.stdout_every > 0 {
            exporters.push(Box::new(StdoutExporter::new(cfg.stdout_every)));
        }

        let outcome = std::thread::scope(|scope| {
            let handles: Vec<_> = exporters
                .iter_mut()
                .map(|exporter| {
                    let registry = &registry;
                    let stop = &stop;
                    scope.spawn(move || {
                        let name = exporter.name();
                        exporter
                            .serve(registry, stop)
                            .map_err(|e| DaemonError::msg(format!("{name} exporter: {e}")))
                    })
                })
                .collect();

            let outcome = drive_sensor(&opts, &cfg, &registry, &stop);
            // Sensor is done (or failed): release the exporters and wait
            // for their in-flight clients to drain.
            stop.raise();
            for handle in handles {
                handle
                    .join()
                    .map_err(|_| DaemonError::msg("exporter thread panicked"))??;
            }
            outcome
        })?;

        Ok(DaemonSummary {
            mode: cfg.mode,
            published: outcome.published,
            sim_time_s: outcome.sim_time_s,
            registry_reads: registry.read_count(),
            wall_s: watch.elapsed_s(),
            completed_jobs: outcome.completed_jobs,
        })
    }
}

/// What the sensor side reports back to the summary.
struct SensorOutcome {
    published: u64,
    sim_time_s: f64,
    completed_jobs: Option<usize>,
}

/// Step the configured sensor on the current thread, publishing every
/// snapshot, until it finishes or a stop condition fires.
fn drive_sensor(
    opts: &RunOptions,
    cfg: &DaemonConfig,
    registry: &SnapshotRegistry,
    stop: &ShutdownFlag,
) -> Result<SensorOutcome, DaemonError> {
    let mut pacer = Pacer::new(cfg.accel);
    let deadline = Deadline::start(cfg.duration_s);
    let mut published = 0u64;
    let mut sim_time_s = 0.0f64;

    let completed_jobs = match cfg.mode {
        Mode::Sweep => {
            let n = opts.modules_or(DEFAULT_MODULES);
            let mut sensor = CapSweepSensor::new(n, opts.seed, cfg.ticks);
            if cfg.scenario != Scenario::Null {
                // Spread the schedule over the tick budget; an unbounded
                // run gets a one-hour horizon (the ladder repeats anyway).
                let horizon_s = if cfg.ticks > 0 { cfg.ticks as f64 } else { 3600.0 };
                sensor = sensor
                    .with_scenario(ScenarioRuntime::new(cfg.scenario, n, horizon_s, opts.seed));
            }
            while !stop.raised() && !deadline.expired() {
                let Some(snap) = sensor.tick() else { break };
                sim_time_s = snap.sim_time_s;
                registry.publish(snap);
                published += 1;
                pacer.pace(sim_time_s);
            }
            None
        }
        Mode::Sched => {
            let campaign = SchedCampaign::with_scenario(opts, cfg.scenario);
            let report = campaign.run(|snap| {
                let budget_spent = cfg.ticks > 0 && published >= cfg.ticks;
                if stop.raised() || deadline.expired() || budget_spent {
                    return ControlFlow::Break(());
                }
                sim_time_s = snap.sim_time_s;
                registry.publish(snap);
                published += 1;
                pacer.pace(sim_time_s);
                ControlFlow::Continue(())
            });
            Some(report.completed_count())
        }
    };

    Ok(SensorOutcome { published, sim_time_s, completed_jobs })
}

/// [`Service::bind`] + [`Service::run`] in one call, for embedders that
/// do not need the addresses up front.
pub fn run(opts: &RunOptions, cfg: &DaemonConfig) -> Result<DaemonSummary, DaemonError> {
    Service::bind(opts, cfg)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(modules: usize) -> RunOptions {
        RunOptions { modules: Some(modules), threads: Some(1), ..RunOptions::default() }
    }

    fn cfg(mode: Mode, ticks: u64) -> DaemonConfig {
        DaemonConfig { mode, prom_port: 0, json_port: 0, ticks, ..DaemonConfig::default() }
    }

    #[test]
    fn sweep_run_honours_the_tick_budget() {
        let summary = run(&opts(4), &cfg(Mode::Sweep, 25)).unwrap();
        assert_eq!(summary.mode, Mode::Sweep);
        assert_eq!(summary.published, 25);
        assert_eq!(summary.sim_time_s, 25.0);
        assert_eq!(summary.completed_jobs, None);
        assert!(summary.to_string().contains("published 25 snapshots"));
    }

    #[test]
    fn sched_run_finishes_the_trace() {
        let options =
            RunOptions { scale: 0.05, ..opts(16) };
        let summary = run(&options, &cfg(Mode::Sched, 0)).unwrap();
        assert_eq!(summary.mode, Mode::Sched);
        assert!(summary.published > 0);
        assert!(summary.completed_jobs.unwrap() > 0);
        assert!(summary.to_string().contains("jobs completed"));
    }

    #[test]
    fn scenario_flag_reaches_both_sensor_modes() {
        let sweep = DaemonConfig { scenario: Scenario::Heatwave, ..cfg(Mode::Sweep, 40) };
        let summary = run(&opts(4), &sweep).unwrap();
        assert_eq!(summary.published, 40, "a perturbed sweep still honours its tick budget");

        let sched = DaemonConfig { scenario: Scenario::Mixed, ..cfg(Mode::Sched, 0) };
        let options = RunOptions { scale: 0.05, ..opts(16) };
        let summary = run(&options, &sched).unwrap();
        assert!(summary.published > 0, "a perturbed campaign still publishes");
    }

    #[test]
    fn stop_flag_ends_an_unbounded_run() {
        let service = Service::bind(&opts(2), &cfg(Mode::Sweep, 0)).unwrap();
        assert!(service.prom_addr().unwrap().port() > 0);
        assert!(service.json_addr().unwrap().port() > 0);
        let stop = service.stop_flag();
        let stopper = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(150));
            stop.raise();
        });
        let summary = service.run().unwrap();
        stopper.join().unwrap();
        assert!(summary.published > 0, "an unbounded free-run publishes until stopped");
    }
}
