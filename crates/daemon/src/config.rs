//! Daemon-specific configuration, layered on top of the shared
//! [`vap_report::options::RunOptions`] via
//! [`RunOptions::parse_partial`](vap_report::options::RunOptions::parse_partial):
//! the shared parser keeps `--modules/--seed/--scale/...` and hands the
//! tokens it does not recognize to [`DaemonConfig::parse`].

use vap_scenario::Scenario;

/// What the sensor side of the daemon simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// A capped fleet running a fixed workload while the daemon walks the
    /// paper's cap ladder (95 W → 80 W → 68 W → uncapped, repeating).
    /// One tick = one simulated second.
    #[default]
    Sweep,
    /// A full scheduling campaign (the `sched_study` recipe): trace
    /// replay under a cluster-level power cap with variation-aware
    /// allocation. One tick = one scheduler event.
    Sched,
}

impl Mode {
    /// Parse `sweep` / `sched`.
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "sweep" => Ok(Mode::Sweep),
            "sched" => Ok(Mode::Sched),
            other => Err(format!("--mode must be `sweep` or `sched`, got `{other}`")),
        }
    }
}

/// Command-line configuration for the daemon's serving and pacing plane.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonConfig {
    /// What to simulate.
    pub mode: Mode,
    /// TCP port for the Prometheus HTTP exporter; 0 picks an ephemeral
    /// port (reported on startup).
    pub prom_port: u16,
    /// TCP port for the line-delimited JSON streaming exporter; 0 picks
    /// an ephemeral port.
    pub json_port: u16,
    /// Print every Nth snapshot to stdout; 0 disables the stdout
    /// exporter.
    pub stdout_every: u64,
    /// Virtual seconds advanced per wall-clock second; 0 free-runs as
    /// fast as the simulation can tick.
    pub accel: f64,
    /// Stop after this much wall-clock time (seconds); 0 runs until the
    /// tick budget, the sensor, or a signal stops the daemon.
    pub duration_s: f64,
    /// Stop after this many sensor ticks; 0 is unbounded (sweep mode
    /// never finishes on its own; sched mode stops when the trace ends).
    pub ticks: u64,
    /// Non-stationary scenario injected into the sensor (`null` keeps
    /// the fleet stationary — the byte-identical historical behavior).
    pub scenario: Scenario,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            mode: Mode::Sweep,
            prom_port: 9500,
            json_port: 9501,
            stdout_every: 0,
            accel: 0.0,
            duration_s: 0.0,
            ticks: 0,
            scenario: Scenario::Null,
        }
    }
}

/// The daemon's flag reference, appended to the shared usage line.
pub const USAGE: &str = "vap-daemon flags: [--mode sweep|sched] [--prom-port N] [--json-port N] \
                         [--stdout-every N] [--accel X] [--duration-s X] [--ticks N] \
                         [--scenario null|heatwave|aging|entropy|faults|shocks|churn|mixed]";

impl DaemonConfig {
    /// Parse the daemon's own flags from the tokens the shared parser
    /// left over. Unknown tokens are an error here — this is the last
    /// parser in the chain.
    pub fn parse(extras: Vec<String>) -> Result<Self, String> {
        let mut cfg = DaemonConfig::default();
        let mut it = extras.into_iter();
        while let Some(flag) = it.next() {
            let mut take = |name: &str| -> Result<String, String> {
                it.next().ok_or_else(|| format!("{name} requires a value"))
            };
            match flag.as_str() {
                "--mode" => cfg.mode = Mode::parse(&take("--mode")?)?,
                "--prom-port" => {
                    cfg.prom_port =
                        take("--prom-port")?.parse().map_err(|e| format!("--prom-port: {e}"))?;
                }
                "--json-port" => {
                    cfg.json_port =
                        take("--json-port")?.parse().map_err(|e| format!("--json-port: {e}"))?;
                }
                "--stdout-every" => {
                    cfg.stdout_every = take("--stdout-every")?
                        .parse()
                        .map_err(|e| format!("--stdout-every: {e}"))?;
                }
                "--accel" => {
                    cfg.accel = take("--accel")?.parse().map_err(|e| format!("--accel: {e}"))?;
                    if cfg.accel < 0.0 {
                        return Err("--accel must be non-negative".into());
                    }
                }
                "--duration-s" => {
                    cfg.duration_s =
                        take("--duration-s")?.parse().map_err(|e| format!("--duration-s: {e}"))?;
                    if cfg.duration_s < 0.0 {
                        return Err("--duration-s must be non-negative".into());
                    }
                }
                "--ticks" => {
                    cfg.ticks = take("--ticks")?.parse().map_err(|e| format!("--ticks: {e}"))?;
                }
                "--scenario" => {
                    let name = take("--scenario")?;
                    cfg.scenario = Scenario::parse(&name).ok_or_else(|| {
                        format!("--scenario: unknown scenario `{name}` ({USAGE})")
                    })?;
                }
                _ => return Err(format!("unknown flag {flag} ({USAGE})")),
            }
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<DaemonConfig, String> {
        DaemonConfig::parse(args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn defaults() {
        let cfg = parse(&[]).unwrap();
        assert_eq!(cfg, DaemonConfig::default());
        assert_eq!(cfg.mode, Mode::Sweep);
        assert_eq!(cfg.prom_port, 9500);
        assert_eq!(cfg.json_port, 9501);
        assert_eq!(cfg.scenario, Scenario::Null);
    }

    #[test]
    fn flags_parse() {
        let cfg = parse(&[
            "--mode",
            "sched",
            "--prom-port",
            "0",
            "--json-port",
            "0",
            "--stdout-every",
            "10",
            "--accel",
            "50",
            "--duration-s",
            "2.5",
            "--ticks",
            "400",
            "--scenario",
            "heatwave",
        ])
        .unwrap();
        assert_eq!(cfg.mode, Mode::Sched);
        assert_eq!(cfg.prom_port, 0);
        assert_eq!(cfg.json_port, 0);
        assert_eq!(cfg.stdout_every, 10);
        assert_eq!(cfg.accel, 50.0);
        assert_eq!(cfg.duration_s, 2.5);
        assert_eq!(cfg.ticks, 400);
        assert_eq!(cfg.scenario, Scenario::Heatwave);
    }

    #[test]
    fn every_scenario_name_parses() {
        for sc in Scenario::ALL {
            let cfg = parse(&["--scenario", sc.name()]).unwrap();
            assert_eq!(cfg.scenario, sc, "{sc}");
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&["--mode", "chaos"]).is_err());
        assert!(parse(&["--prom-port", "99999"]).is_err());
        assert!(parse(&["--accel", "-1"]).is_err());
        assert!(parse(&["--duration-s", "-0.5"]).is_err());
        assert!(parse(&["--ticks"]).is_err());
        assert!(parse(&["--scenario", "meteor"]).is_err());
        assert!(parse(&["--scenario"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
    }
}
