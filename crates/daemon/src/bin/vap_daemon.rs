//! The `vap-daemon` binary: serve live telemetry from a simulated fleet.
//!
//! ```text
//! vap-daemon --mode sweep --modules 96 --accel 50 --stdout-every 30
//! curl -s http://127.0.0.1:9500/metrics | head
//! nc 127.0.0.1 9501 | head -3
//! ```
//!
//! Shared flags (`--modules/--seed/--scale/--metrics/--trace-out/...`)
//! come from `vap_report`'s standard CLI; daemon flags are layered on
//! top via the partial parser. SIGTERM/SIGINT shut the daemon down
//! cleanly — exporters drain, the summary prints, observability
//! artifacts export.

use vap_daemon::{DaemonConfig, Service};

fn main() -> ! {
    vap_report::cli::run_main_with(DaemonConfig::parse, |opts, cfg| {
        let service = Service::bind(opts, &cfg)?;
        println!("vap-daemon: prometheus on http://{}/metrics", service.prom_addr()?);
        println!("vap-daemon: json stream on {}", service.json_addr()?);
        let summary = service.run()?;
        println!("{summary}");
        Ok(())
    })
}
