//! `daemon-loadgen`: a soak client for a running `vap-daemon`.
//!
//! Hammers the Prometheus endpoint with N scrape loops and holds M
//! streaming JSON connections for a wall-clock window, then writes a
//! soak report (hand-rolled JSON, same zero-dependency rule as the rest
//! of the workspace) for `BENCH_daemon.json`:
//!
//! ```text
//! vap-daemon --mode sweep --prom-port 9500 --json-port 9501 &
//! daemon-loadgen --prom 127.0.0.1:9500 --json 127.0.0.1:9501 \
//!     --prom-clients 8 --json-clients 4 --seconds 10 --out BENCH_daemon.json
//! ```
//!
//! Exit code 0 means every client did useful work and saw no protocol
//! errors; 1 means the soak failed.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use vap_daemon::clock::{Deadline, Stopwatch};
use vap_obs::Histogram;

struct Args {
    prom: String,
    json: String,
    prom_clients: usize,
    json_clients: usize,
    seconds: f64,
    out: Option<String>,
}

impl Args {
    fn parse(argv: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut args = Args {
            prom: "127.0.0.1:9500".to_string(),
            json: "127.0.0.1:9501".to_string(),
            prom_clients: 4,
            json_clients: 2,
            seconds: 10.0,
            out: None,
        };
        let mut it = argv;
        while let Some(flag) = it.next() {
            let mut take = |name: &str| -> Result<String, String> {
                it.next().ok_or_else(|| format!("{name} requires a value"))
            };
            match flag.as_str() {
                "--prom" => args.prom = take("--prom")?,
                "--json" => args.json = take("--json")?,
                "--prom-clients" => {
                    args.prom_clients =
                        take("--prom-clients")?.parse().map_err(|e| format!("--prom-clients: {e}"))?;
                }
                "--json-clients" => {
                    args.json_clients =
                        take("--json-clients")?.parse().map_err(|e| format!("--json-clients: {e}"))?;
                }
                "--seconds" => {
                    args.seconds =
                        take("--seconds")?.parse().map_err(|e| format!("--seconds: {e}"))?;
                    if args.seconds <= 0.0 {
                        return Err("--seconds must be positive".into());
                    }
                }
                "--out" => args.out = Some(take("--out")?),
                _ => {
                    return Err(format!(
                        "unknown flag {flag} (usage: [--prom A] [--json A] [--prom-clients N] \
                         [--json-clients N] [--seconds X] [--out PATH])"
                    ))
                }
            }
        }
        Ok(args)
    }
}

/// Shared soak counters, bumped by every client thread.
#[derive(Default)]
struct Counters {
    prom_scrapes: AtomicU64,
    prom_bytes: AtomicU64,
    json_lines: AtomicU64,
    errors: AtomicU64,
    /// Per-scrape wall latency (ms), log-linear bucketed. A mutex is fine
    /// here: one lock per whole HTTP round trip, off the daemon's path.
    scrape_ms: Mutex<Histogram>,
}

/// One Prometheus scrape: connect, GET /metrics, read to EOF.
fn scrape_once(addr: &str) -> Result<u64, ()> {
    let mut stream = TcpStream::connect(addr).map_err(|_| ())?;
    stream.set_read_timeout(Some(Duration::from_secs(2))).map_err(|_| ())?;
    write!(stream, "GET /metrics HTTP/1.1\r\nHost: {addr}\r\n\r\n").map_err(|_| ())?;
    let mut body = String::new();
    stream.read_to_string(&mut body).map_err(|_| ())?;
    let well_formed = body.starts_with("HTTP/1.1 200 OK\r\n")
        && body.contains("# TYPE vap_cluster_power_watts gauge");
    if well_formed {
        Ok(body.len() as u64)
    } else {
        Err(())
    }
}

/// Scrape `/metrics` in a tight loop until the deadline.
fn prom_client(addr: &str, deadline: Deadline, counters: &Counters) {
    while !deadline.expired() {
        let watch = Stopwatch::start();
        match scrape_once(addr) {
            Ok(bytes) => {
                counters.prom_scrapes.fetch_add(1, Ordering::Relaxed);
                counters.prom_bytes.fetch_add(bytes, Ordering::Relaxed);
                if let Ok(mut hist) = counters.scrape_ms.lock() {
                    hist.observe(watch.elapsed_s() * 1e3);
                }
            }
            Err(()) => {
                counters.errors.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Hold one streaming JSON connection, counting lines until the deadline.
fn json_client(addr: &str, deadline: Deadline, counters: &Counters) {
    let Ok(stream) = TcpStream::connect(addr) else {
        counters.errors.fetch_add(1, Ordering::Relaxed);
        return;
    };
    if stream.set_read_timeout(Some(Duration::from_millis(500))).is_err() {
        counters.errors.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    while !deadline.expired() {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // daemon closed the stream
            Ok(_) => {
                if line.starts_with("{\"epoch\":") && line.trim_end().ends_with('}') {
                    counters.json_lines.fetch_add(1, Ordering::Relaxed);
                } else {
                    counters.errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            // timeouts just mean no new epoch inside the read window
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => {
                counters.errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
}

/// The soak report as one hand-rolled JSON document.
fn report_json(args: &Args, wall_s: f64, counters: &Counters) -> String {
    let scrapes = counters.prom_scrapes.load(Ordering::Relaxed);
    let bytes = counters.prom_bytes.load(Ordering::Relaxed);
    let lines = counters.json_lines.load(Ordering::Relaxed);
    let errors = counters.errors.load(Ordering::Relaxed);
    let (p50, p95, p99) = match counters.scrape_ms.lock() {
        Ok(hist) => (
            hist.quantile(0.50).unwrap_or(0.0),
            hist.quantile(0.95).unwrap_or(0.0),
            hist.quantile(0.99).unwrap_or(0.0),
        ),
        Err(_) => (0.0, 0.0, 0.0),
    };
    format!(
        "{{\n  \"bench\": \"daemon_soak\",\n  \"wall_s\": {wall_s:.3},\n  \
         \"prom_clients\": {},\n  \"prom_scrapes\": {scrapes},\n  \
         \"prom_bytes\": {bytes},\n  \"prom_scrapes_per_s\": {:.1},\n  \
         \"prom_scrape_p50_ms\": {p50:.3},\n  \"prom_scrape_p95_ms\": {p95:.3},\n  \
         \"prom_scrape_p99_ms\": {p99:.3},\n  \
         \"json_clients\": {},\n  \"json_lines\": {lines},\n  \"errors\": {errors}\n}}\n",
        args.prom_clients,
        scrapes as f64 / wall_s.max(1e-9),
        args.json_clients,
    )
}

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    let counters = Counters::default();
    let watch = Stopwatch::start();
    let deadline = Deadline::start(args.seconds);
    std::thread::scope(|scope| {
        for _ in 0..args.prom_clients {
            scope.spawn(|| prom_client(&args.prom, deadline, &counters));
        }
        for _ in 0..args.json_clients {
            scope.spawn(|| json_client(&args.json, deadline, &counters));
        }
    });
    let wall_s = watch.elapsed_s();

    let report = report_json(&args, wall_s, &counters);
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &report) {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            }
            println!("wrote {path}");
        }
        None => print!("{report}"),
    }

    let scrapes = counters.prom_scrapes.load(Ordering::Relaxed);
    let lines = counters.json_lines.load(Ordering::Relaxed);
    let errors = counters.errors.load(Ordering::Relaxed);
    let prom_ok = args.prom_clients == 0 || scrapes > 0;
    let json_ok = args.json_clients == 0 || lines > 0;
    if errors > 0 || !prom_ok || !json_ok {
        eprintln!("soak failed: scrapes={scrapes} lines={lines} errors={errors}");
        std::process::exit(1);
    }
}
