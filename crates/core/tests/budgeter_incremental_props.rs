//! Property-based differential tests for the incremental [`Budgeter`]:
//! after any stream of admit / finish / replace events, the cached-extrema
//! ledger must agree **bit for bit** with a from-scratch [`partition`]
//! over the same jobs in the same order, and its cached floor must equal
//! the recomputed one.
//!
//! This is the lockdown for the incremental path: `partition` rescans
//! every PMT on every call, the `Budgeter` never rescans after admission —
//! any drift between the two (stale extrema after a removal, wrong
//! insertion order after a replacement) shows up here as a bitwise
//! mismatch long before it would show up as a subtly unfair schedule.

use proptest::prelude::*;
use vap_core::multijob::{partition, Budgeter, JobBudget, JobRequest, PartitionPolicy};
use vap_core::pmt::PowerModelTable;
use vap_model::units::{GigaHertz, Watts};
use vap_workloads::spec::WorkloadId;

const POLICIES: [PartitionPolicy; 3] = [
    PartitionPolicy::ProportionalToModules,
    PartitionPolicy::FairFloorPlusUniformAlpha,
    PartitionPolicy::ThroughputGreedy,
];

/// One synthetic job: module count, CPU/DRAM anchors (W), and χ.
#[derive(Debug, Clone)]
struct JobShape {
    modules: usize,
    cpu_tdp: f64,
    cpu_floor: f64,
    dram_tdp: f64,
    dram_floor: f64,
    chi: f64,
}

fn job_shape() -> impl Strategy<Value = JobShape> {
    (1usize..12, 80.0f64..140.0, 20.0f64..50.0, 20.0f64..70.0, 5.0f64..15.0, 0.0f64..1.0)
        .prop_map(|(modules, cpu_tdp, cpu_floor, dram_tdp, dram_floor, chi)| JobShape {
            modules,
            cpu_tdp,
            cpu_floor,
            dram_tdp,
            dram_floor,
            chi,
        })
}

/// One scheduler event against the ledger.
#[derive(Debug, Clone)]
enum Op {
    /// A job arrives and is admitted under a fresh key.
    Admit(JobShape),
    /// A running job (picked by index modulo the running count) finishes.
    Finish(usize),
    /// A running job is re-admitted with a new shape under its old key —
    /// the scheduler's shrink/regrow path (replace semantics).
    Readmit(usize, JobShape),
    /// A system-budget shock: re-partition and compare the ledger against
    /// the from-scratch baseline at this headroom.
    Shock(f64),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => job_shape().prop_map(Op::Admit),
        2 => (0usize..64).prop_map(Op::Finish),
        1 => ((0usize..64), job_shape()).prop_map(|(i, s)| Op::Readmit(i, s)),
        2 => (0.0f64..1.2).prop_map(Op::Shock),
    ]
}

/// Materialize a shape into a request. Module ids are keyed off the job
/// key so concurrent jobs always occupy disjoint id ranges.
fn request(key: u64, s: &JobShape) -> JobRequest {
    let base = key as usize * 16;
    let ids: Vec<usize> = (base..base + s.modules).collect();
    JobRequest {
        workload: WorkloadId::Dgemm,
        pmt: PowerModelTable::naive(
            &ids,
            GigaHertz(2.7),
            GigaHertz(1.2),
            Watts(s.cpu_tdp),
            Watts(s.dram_tdp),
            Watts(s.cpu_floor),
            Watts(s.dram_floor),
        ),
        module_ids: ids,
        cpu_fraction: s.chi,
    }
}

/// Field-by-field bitwise equality of two partitions. Panics on drift —
/// proptest catches the panic and shrinks the offending event stream.
fn assert_parts_bitwise_eq(a: &[JobBudget], b: &[JobBudget]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.workload, y.workload);
        assert_eq!(x.budget.value().to_bits(), y.budget.value().to_bits());
        assert_eq!(x.alpha.value().to_bits(), y.alpha.value().to_bits());
        assert_eq!(x.progress.to_bits(), y.progress.to_bits());
        assert_eq!(x.plan.allocations.len(), y.plan.allocations.len());
        for (am, bm) in x.plan.allocations.iter().zip(&y.plan.allocations) {
            assert_eq!(am.module_id, bm.module_id);
            assert_eq!(am.p_module.value().to_bits(), bm.p_module.value().to_bits());
            assert_eq!(am.p_cpu.value().to_bits(), bm.p_cpu.value().to_bits());
            assert_eq!(am.p_dram.value().to_bits(), bm.p_dram.value().to_bits());
            assert_eq!(am.frequency.value().to_bits(), bm.frequency.value().to_bits());
        }
    }
}

/// Partition both ways at `headroom` and compare bitwise under every
/// policy. The mirror is the plain keyed job list the ledger claims to
/// equal.
fn check_against_mirror(ledger: &Budgeter, mirror: &[(u64, JobRequest)], headroom: f64) {
    let jobs: Vec<JobRequest> = mirror.iter().map(|(_, j)| j.clone()).collect();
    let keys: Vec<u64> = mirror.iter().map(|(k, _)| *k).collect();
    assert_eq!(ledger.keys(), &keys[..]);
    assert_eq!(ledger.len(), mirror.len());

    let floor: Watts = jobs.iter().map(|j| j.pmt.fleet_minimum()).sum();
    assert_eq!(ledger.floor_total().value().to_bits(), floor.value().to_bits());
    if jobs.is_empty() {
        assert!(ledger.partition(Watts(1e6), PartitionPolicy::ProportionalToModules).is_err());
        return;
    }

    let ceiling: Watts = jobs.iter().map(|j| j.pmt.fleet_maximum()).sum();
    let budget = floor + (ceiling - floor) * headroom;
    for policy in POLICIES {
        let batch = partition(budget, &jobs, policy);
        let incremental = ledger.partition(budget, policy);
        match (batch, incremental) {
            (Ok(b), Ok(i)) => {
                assert_parts_bitwise_eq(&b, &i);
                let total: Watts = i.iter().map(|p| p.budget).sum();
                assert!(total <= budget + Watts(1e-6));
                for (p, j) in i.iter().zip(&jobs) {
                    assert!(p.budget >= j.pmt.fleet_minimum() - Watts(1e-6));
                }
            }
            (Err(_), Err(_)) => {}
            (b, i) => panic!("{policy:?}: batch {b:?} vs incremental {i:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The core differential property: whatever the event stream, the
    /// incremental ledger and the from-scratch partition agree bitwise.
    #[test]
    fn incremental_budgeter_tracks_batch_partition_through_any_event_stream(
        ops in proptest::collection::vec(op(), 1..24),
        final_headroom in 0.0f64..1.2,
    ) {
        let mut ledger = Budgeter::new();
        let mut mirror: Vec<(u64, JobRequest)> = Vec::new();
        let mut next_key = 0u64;

        for op in ops {
            match op {
                Op::Admit(shape) => {
                    let key = next_key;
                    next_key += 1;
                    let req = request(key, &shape);
                    ledger.admit(key, req.clone());
                    mirror.push((key, req));
                }
                Op::Finish(pick) => {
                    if mirror.is_empty() {
                        continue;
                    }
                    let (key, _) = mirror.remove(pick % mirror.len());
                    prop_assert!(ledger.remove(key));
                    prop_assert!(!ledger.contains(key));
                }
                Op::Readmit(pick, shape) => {
                    if mirror.is_empty() {
                        continue;
                    }
                    let i = pick % mirror.len();
                    let (key, _) = mirror.remove(i);
                    let req = request(key, &shape);
                    // replace semantics: the job moves to the back
                    ledger.admit(key, req.clone());
                    mirror.push((key, req));
                }
                Op::Shock(headroom) => {
                    check_against_mirror(&ledger, &mirror, headroom);
                }
            }
            // the cached floor must track every event, not just shocks
            let floor: Watts = mirror.iter().map(|(_, j)| j.pmt.fleet_minimum()).sum();
            prop_assert_eq!(ledger.floor_total().value().to_bits(), floor.value().to_bits());
        }
        check_against_mirror(&ledger, &mirror, final_headroom);
    }

    /// Removing everything always drains cleanly back to the empty state.
    #[test]
    fn draining_the_ledger_restores_the_empty_state(
        shapes in proptest::collection::vec(job_shape(), 1..8),
    ) {
        let mut ledger = Budgeter::new();
        for (k, s) in shapes.iter().enumerate() {
            ledger.admit(k as u64, request(k as u64, s));
        }
        prop_assert_eq!(ledger.len(), shapes.len());
        for k in 0..shapes.len() {
            prop_assert!(ledger.remove(k as u64));
        }
        prop_assert!(ledger.is_empty());
        prop_assert_eq!(ledger.floor_total().value().to_bits(), 0f64.to_bits());
        prop_assert!(ledger.partition(Watts(1e6), PartitionPolicy::ThroughputGreedy).is_err());
    }
}
