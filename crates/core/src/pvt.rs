//! The Power Variation Table (PVT).
//!
//! "The PVT is generated when the system is installed by executing
//! representative microbenchmarks on each module. The power parameters ...
//! are measured for each module, and the variation scales are obtained by
//! dividing each of these module power values by the respective average"
//! (§5.2). The paper uses *STREAM as the single microbenchmark; the
//! multi-PVT extension in [`crate::dynamic`] explores using several.
//!
//! Generation walks every module of the fleet — an O(fleet) cost paid
//! *once per system*, which is the paper's key scalability argument versus
//! per-job profiling of every allocation.

use crate::testrun::measure_module_snapshot;
use serde::{Deserialize, Serialize};
use vap_model::units::GigaHertz;
use vap_sim::cluster::Cluster;
use vap_sim::fleet::FleetState;
use vap_workloads::spec::WorkloadSpec;

/// Which fleet layout executes the per-module PVT sweep.
///
/// Both engines call the same scalar measurement kernels on the same
/// values in the same order, so they produce bit-identical tables and
/// byte-identical observability journals — `tests/fleet_equiv.rs` holds
/// the differential proof. The struct-of-arrays engine is the production
/// default: it avoids cloning a `SimModule` (MSR file included) per
/// measurement, which is what makes 10⁵–10⁶-module sweeps tractable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PvtEngine {
    /// Flat-column sweep over [`FleetState`] (the default).
    #[default]
    Soa,
    /// The original clone-per-module sweep over [`Cluster`] records, kept
    /// as the differential-testing reference layout.
    Reference,
}

impl PvtEngine {
    /// Stable CLI/debug name.
    pub fn name(self) -> &'static str {
        match self {
            PvtEngine::Soa => "soa",
            PvtEngine::Reference => "reference",
        }
    }

    /// Parse a CLI name (`soa` / `reference`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "soa" => Some(PvtEngine::Soa),
            "reference" => Some(PvtEngine::Reference),
            _ => None,
        }
    }
}

/// Variation scales for one module: its power at each anchor divided by
/// the fleet average at that anchor (Fig. 6's left table).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PvtEntry {
    /// The module this entry describes.
    pub module_id: usize,
    /// CPU power scale at `f_max`.
    pub cpu_max: f64,
    /// CPU power scale at `f_min`.
    pub cpu_min: f64,
    /// DRAM power scale at `f_max`.
    pub dram_max: f64,
    /// DRAM power scale at `f_min`.
    pub dram_min: f64,
}

/// The system-wide, application-independent Power Variation Table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerVariationTable {
    /// Name of the microbenchmark the table was generated with.
    pub microbenchmark: String,
    /// Maximum-frequency anchor.
    pub f_max: GigaHertz,
    /// Minimum-frequency anchor.
    pub f_min: GigaHertz,
    /// Fleet-average raw anchor powers `[cpu_max, cpu_min, dram_max,
    /// dram_min]` in watts, recorded at assembly time. Scales are
    /// normalized by these, so keeping them lets a later *partial*
    /// re-calibration reconstruct every unaffected module's raw anchors
    /// (`scale × mean`) and renormalize the whole table consistently.
    /// Zeroed on tables persisted before this field existed
    /// ([`PowerVariationTable::recalibrate_modules`] falls back to a full
    /// sweep for those).
    #[serde(default)]
    anchor_means: [f64; 4],
    entries: Vec<PvtEntry>,
}

impl PowerVariationTable {
    /// Generate the PVT by sweeping every module of the fleet with the
    /// given microbenchmark at `f_max` and `f_min` (the boot-time
    /// procedure). The fleet is left idle afterwards.
    pub fn generate(cluster: &mut Cluster, micro: &WorkloadSpec, seed: u64) -> Self {
        Self::generate_with_threads(cluster, micro, seed, 1)
    }

    /// [`PowerVariationTable::generate`] with the per-module sweep fanned
    /// over `threads` OS threads.
    ///
    /// The paper runs the microbenchmark "simultaneously on all modules"
    /// at install time; here each module is measured on a private snapshot
    /// ([`measure_module_snapshot`]), so the table is bit-for-bit identical
    /// at any thread count — `threads = 1` is the reference serial sweep.
    pub fn generate_with_threads(
        cluster: &mut Cluster,
        micro: &WorkloadSpec,
        seed: u64,
        threads: usize,
    ) -> Self {
        Self::generate_with_engine(cluster, micro, seed, threads, PvtEngine::default())
    }

    /// [`PowerVariationTable::generate_with_threads`] on the reference
    /// (clone-per-module) layout — the differential-testing baseline the
    /// struct-of-arrays engine is checked against.
    pub fn generate_reference_with_threads(
        cluster: &mut Cluster,
        micro: &WorkloadSpec,
        seed: u64,
        threads: usize,
    ) -> Self {
        Self::generate_with_engine(cluster, micro, seed, threads, PvtEngine::Reference)
    }

    /// [`PowerVariationTable::generate_with_threads`] with an explicit
    /// sweep engine (see [`PvtEngine`] for the equivalence contract).
    pub fn generate_with_engine(
        cluster: &mut Cluster,
        micro: &WorkloadSpec,
        seed: u64,
        threads: usize,
        engine: PvtEngine,
    ) -> Self {
        let f_max = cluster.spec().pstates.f_max();
        let f_min = cluster.spec().pstates.f_min();
        let n = cluster.len();
        assert!(n > 0, "cannot generate a PVT for an empty fleet");

        // Put the microbenchmark on the whole fleet.
        micro.apply_to(cluster, seed);

        let raw: Vec<(f64, f64, f64, f64)> = match engine {
            // Measure every module at both anchors on a private snapshot
            // clone, so modules can be visited in any order by any thread.
            PvtEngine::Reference => {
                vap_exec::par_map_modules(cluster, seed, threads, |m, _module_seed| {
                    vap_obs::incr("pvt.modules_swept");
                    let (cpu_max, dram_max) = measure_module_snapshot(m, f_max);
                    let (cpu_min, dram_min) = measure_module_snapshot(m, f_min);
                    (cpu_max.value(), cpu_min.value(), dram_max.value(), dram_min.value())
                })
            }
            // Same sweep over the columnar transpose: no snapshot clones,
            // no per-module MSR files — `FleetState::measure_anchors`
            // runs the identical meter protocol on two local counters.
            PvtEngine::Soa => {
                let fleet = FleetState::from_cluster(cluster);
                vap_exec::par_map_fleet(n, seed, threads, |i, _module_seed| {
                    vap_obs::incr("pvt.modules_swept");
                    let (cpu_max, dram_max) = fleet.measure_anchors(i, f_max);
                    let (cpu_min, dram_min) = fleet.measure_anchors(i, f_min);
                    (cpu_max.value(), cpu_min.value(), dram_max.value(), dram_min.value())
                })
            }
        };

        // Restore the fleet to idle.
        for m in cluster.modules_mut() {
            m.set_workload_variation(None);
            m.set_activity(vap_model::power::PowerActivity::IDLE);
        }

        Self::assemble(micro, f_max, f_min, raw)
    }

    /// Generate the PVT directly from a struct-of-arrays fleet — the
    /// 10⁵–10⁶-module path, where materializing a [`Cluster`] (one
    /// `SimModule` record per module) just to sweep it is the dominant
    /// cost. The fleet is left idle afterwards, exactly as
    /// [`PowerVariationTable::generate`] leaves a cluster.
    pub fn generate_from_fleet(
        fleet: &mut FleetState,
        micro: &WorkloadSpec,
        seed: u64,
        threads: usize,
    ) -> Self {
        let f_max = fleet.pstates().f_max();
        let f_min = fleet.pstates().f_min();
        let n = fleet.len();
        assert!(n > 0, "cannot generate a PVT for an empty fleet");

        micro.apply_to_fleet(fleet, seed);

        let raw: Vec<(f64, f64, f64, f64)> = {
            let fleet = &*fleet;
            vap_exec::par_map_fleet(n, seed, threads, |i, _module_seed| {
                vap_obs::incr("pvt.modules_swept");
                let (cpu_max, dram_max) = fleet.measure_anchors(i, f_max);
                let (cpu_min, dram_min) = fleet.measure_anchors(i, f_min);
                (cpu_max.value(), cpu_min.value(), dram_max.value(), dram_min.value())
            })
        };

        for i in 0..n {
            fleet.set_workload_variation(i, None);
            fleet.set_activity(i, vap_model::power::PowerActivity::IDLE);
        }

        Self::assemble(micro, f_max, f_min, raw)
    }

    /// Fold raw per-module anchor powers into variation scales (each
    /// module's power divided by the fleet average at that anchor) — the
    /// engine-independent tail of every generation path.
    fn assemble(
        micro: &WorkloadSpec,
        f_max: GigaHertz,
        f_min: GigaHertz,
        raw: Vec<(f64, f64, f64, f64)>,
    ) -> Self {
        let nf = raw.len() as f64;
        let avg = raw.iter().fold([0.0f64; 4], |mut acc, r| {
            acc[0] += r.0 / nf;
            acc[1] += r.1 / nf;
            acc[2] += r.2 / nf;
            acc[3] += r.3 / nf;
            acc
        });
        let entries = raw
            .into_iter()
            .enumerate()
            .map(|(module_id, r)| PvtEntry {
                module_id,
                cpu_max: r.0 / avg[0],
                cpu_min: r.1 / avg[1],
                dram_max: r.2 / avg[2],
                dram_min: r.3 / avg[3],
            })
            .collect();

        PowerVariationTable {
            microbenchmark: micro.id.name().to_string(),
            f_max,
            f_min,
            anchor_means: avg,
            entries,
        }
    }

    /// Online re-calibration: re-run the microbenchmark sweep on the
    /// `affected` modules only — against whatever the silicon looks like
    /// *now*, accumulated drift included — and return a fresh table.
    ///
    /// Unaffected modules are not re-measured: their raw anchors are
    /// reconstructed from the stored scales and fleet means
    /// (`scale × mean`), then the whole table is renormalized, so the
    /// invariant that scales average to 1.0 survives re-calibration.
    /// Out-of-range ids are ignored; the affected modules are left idle,
    /// exactly as the boot-time sweep leaves the fleet. A table loaded
    /// from a pre-drift artifact (no stored anchor means) or sized for a
    /// different fleet falls back to the full boot-time sweep.
    pub fn recalibrate_modules(
        &self,
        cluster: &mut Cluster,
        micro: &WorkloadSpec,
        affected: &[usize],
        seed: u64,
    ) -> Self {
        let reconstructable = self.anchor_means.iter().all(|&m| m > 0.0);
        if !reconstructable || self.entries.len() != cluster.len() {
            return Self::generate_with_threads(cluster, micro, seed, 1);
        }
        let mut raw: Vec<(f64, f64, f64, f64)> = self
            .entries
            .iter()
            .map(|e| {
                (
                    e.cpu_max * self.anchor_means[0],
                    e.cpu_min * self.anchor_means[1],
                    e.dram_max * self.anchor_means[2],
                    e.dram_min * self.anchor_means[3],
                )
            })
            .collect();
        let ids: Vec<usize> = affected.iter().copied().filter(|&i| i < cluster.len()).collect();
        micro.apply_to_modules(cluster, &ids, seed);
        for &i in &ids {
            if let Some(m) = cluster.get(i) {
                vap_obs::incr("pvt.modules_recalibrated");
                let (cpu_max, dram_max) = measure_module_snapshot(m, self.f_max);
                let (cpu_min, dram_min) = measure_module_snapshot(m, self.f_min);
                raw[i] = (cpu_max.value(), cpu_min.value(), dram_max.value(), dram_min.value());
            }
        }
        for &i in &ids {
            if let Some(m) = cluster.get_mut(i) {
                m.set_workload_variation(None);
                m.set_activity(vap_model::power::PowerActivity::IDLE);
            }
        }
        Self::assemble(micro, self.f_max, self.f_min, raw)
    }

    /// Number of modules covered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry for one module.
    pub fn entry(&self, module_id: usize) -> Option<&PvtEntry> {
        self.entries.get(module_id).filter(|e| e.module_id == module_id)
    }

    /// All entries.
    pub fn entries(&self) -> &[PvtEntry] {
        &self.entries
    }

    /// Serialize to JSON (the PVT is a per-system artifact worth
    /// persisting — it is generated once at install time).
    pub fn to_json(&self) -> String {
        // vap:allow(no-panic-in-lib): serde_json cannot fail on this plain
        // data structure (no maps with non-string keys, no custom Serialize)
        serde_json::to_string_pretty(self).expect("PVT serialization cannot fail")
    }

    /// Load from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vap_model::systems::SystemSpec;
    use vap_workloads::catalog;
    use vap_workloads::spec::WorkloadId;

    fn pvt_for(n: usize, seed: u64) -> (Cluster, PowerVariationTable) {
        let mut c = Cluster::with_size(SystemSpec::ha8k(), n, seed);
        let stream = catalog::get(WorkloadId::Stream);
        let pvt = PowerVariationTable::generate(&mut c, &stream, seed);
        (c, pvt)
    }

    #[test]
    fn scales_average_to_one() {
        let (_, pvt) = pvt_for(64, 3);
        assert_eq!(pvt.len(), 64);
        for field in [
            |e: &PvtEntry| e.cpu_max,
            |e: &PvtEntry| e.cpu_min,
            |e: &PvtEntry| e.dram_max,
            |e: &PvtEntry| e.dram_min,
        ] {
            let mean: f64 = pvt.entries().iter().map(field).sum::<f64>() / pvt.len() as f64;
            assert!((mean - 1.0).abs() < 1e-6, "mean scale {mean}");
        }
    }

    #[test]
    fn scales_spread_reflects_manufacturing_variation() {
        let (_, pvt) = pvt_for(256, 5);
        let max = pvt.entries().iter().map(|e| e.cpu_max).fold(f64::MIN, f64::max);
        let min = pvt.entries().iter().map(|e| e.cpu_max).fold(f64::MAX, f64::min);
        assert!(max / min > 1.1, "CPU scale spread {max}/{min}");
        // DRAM varies more than CPU (paper: DRAM Vp ≈ 2.8 vs module ≈ 1.3)
        let dmax = pvt.entries().iter().map(|e| e.dram_max).fold(f64::MIN, f64::max);
        let dmin = pvt.entries().iter().map(|e| e.dram_max).fold(f64::MAX, f64::min);
        assert!(dmax / dmin > max / min, "DRAM spread should exceed CPU spread");
    }

    #[test]
    fn generation_leaves_fleet_idle() {
        let (c, _) = pvt_for(8, 7);
        for m in c.modules() {
            assert_eq!(m.activity(), vap_model::power::PowerActivity::IDLE);
            assert!(m.cap().is_none());
        }
    }

    #[test]
    fn metadata_records_microbenchmark_and_anchors() {
        let (_, pvt) = pvt_for(4, 1);
        assert_eq!(pvt.microbenchmark, "*STREAM");
        assert_eq!(pvt.f_max, GigaHertz(2.7));
        assert_eq!(pvt.f_min, GigaHertz(1.2));
    }

    #[test]
    fn json_round_trip() {
        let (_, pvt) = pvt_for(4, 9);
        let json = pvt.to_json();
        let back = PowerVariationTable::from_json(&json).unwrap();
        assert_eq!(pvt, back);
    }

    #[test]
    fn entry_lookup() {
        let (_, pvt) = pvt_for(8, 11);
        assert_eq!(pvt.entry(3).unwrap().module_id, 3);
        assert!(pvt.entry(8).is_none());
        assert!(!pvt.is_empty());
    }

    #[test]
    fn deterministic_in_seed() {
        let (_, a) = pvt_for(16, 42);
        let (_, b) = pvt_for(16, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn soa_and_reference_engines_agree_bitwise() {
        let stream = catalog::get(WorkloadId::Stream);
        for seed in [1u64, 42] {
            let mut a = Cluster::with_size(SystemSpec::ha8k(), 32, seed);
            let soa = PowerVariationTable::generate_with_threads(&mut a, &stream, seed, 2);
            let mut b = Cluster::with_size(SystemSpec::ha8k(), 32, seed);
            let reference =
                PowerVariationTable::generate_reference_with_threads(&mut b, &stream, seed, 2);
            assert_eq!(soa, reference, "seed = {seed}");
        }
    }

    #[test]
    fn fleet_native_generation_matches_cluster_generation() {
        let stream = catalog::get(WorkloadId::Stream);
        let mut c = Cluster::with_size(SystemSpec::ha8k(), 24, 17);
        let from_cluster = PowerVariationTable::generate(&mut c, &stream, 17);
        let mut fleet = FleetState::new(SystemSpec::ha8k(), 24, 17);
        let from_fleet = PowerVariationTable::generate_from_fleet(&mut fleet, &stream, 17, 1);
        assert_eq!(from_cluster, from_fleet);
        // both entry points leave their fleet idle
        for i in 0..fleet.len() {
            assert_eq!(fleet.activity(i), vap_model::power::PowerActivity::IDLE);
            assert!(fleet.cap(i).is_none());
        }
    }

    #[test]
    fn recalibrating_nothing_reproduces_the_table() {
        let (mut c, pvt) = pvt_for(16, 23);
        let stream = catalog::get(WorkloadId::Stream);
        let again = pvt.recalibrate_modules(&mut c, &stream, &[], 23);
        assert_eq!(again.len(), pvt.len());
        for (a, b) in pvt.entries().iter().zip(again.entries()) {
            assert!((a.cpu_max - b.cpu_max).abs() < 1e-12, "round-trip scale drifted");
            assert!((a.dram_min - b.dram_min).abs() < 1e-12);
        }
    }

    #[test]
    fn recalibration_tracks_silicon_drift() {
        use vap_model::variability::DriftSkew;
        let (mut c, stale) = pvt_for(32, 29);
        let aged = DriftSkew { dynamic: 1.08, leakage: 1.25, dram: 1.05 };
        c.apply_drift(3, &aged);
        let stream = catalog::get(WorkloadId::Stream);
        let fresh = stale.recalibrate_modules(&mut c, &stream, &[3], 29);
        // the drifted module's scale rises against its stale value...
        let before = stale.entry(3).unwrap().cpu_max;
        let after = fresh.entry(3).unwrap().cpu_max;
        assert!(after > before * 1.02, "recalibration must see the drift: {before} -> {after}");
        // ...while unaffected modules only move through renormalization
        for i in [0usize, 7, 31] {
            let b = stale.entry(i).unwrap().cpu_max;
            let a = fresh.entry(i).unwrap().cpu_max;
            assert!((a - b).abs() < 0.01, "module {i} moved {b} -> {a}");
        }
        // scales still average to 1.0 after renormalization
        let mean: f64 = fresh.entries().iter().map(|e| e.cpu_max).sum::<f64>() / fresh.len() as f64;
        assert!((mean - 1.0).abs() < 1e-6);
        // affected module left idle, like the boot-time sweep leaves it
        assert_eq!(c.module(3).activity(), vap_model::power::PowerActivity::IDLE);
        assert!(c.module(3).workload_variation().is_none());
    }

    #[test]
    fn recalibration_falls_back_to_a_full_sweep_on_fleet_resize() {
        let (_, pvt) = pvt_for(8, 31);
        let stream = catalog::get(WorkloadId::Stream);
        let mut bigger = Cluster::with_size(SystemSpec::ha8k(), 12, 31);
        let fresh = pvt.recalibrate_modules(&mut bigger, &stream, &[2], 31);
        assert_eq!(fresh.len(), 12, "resized fleet takes the full-sweep path");
    }

    #[test]
    fn engine_names_round_trip() {
        for e in [PvtEngine::Soa, PvtEngine::Reference] {
            assert_eq!(PvtEngine::parse(e.name()), Some(e));
        }
        assert_eq!(PvtEngine::parse("alien"), None);
        assert_eq!(PvtEngine::default(), PvtEngine::Soa);
    }

    #[test]
    fn thread_count_does_not_change_the_table() {
        let stream = catalog::get(WorkloadId::Stream);
        let mut serial = Cluster::with_size(SystemSpec::ha8k(), 48, 13);
        let reference = PowerVariationTable::generate_with_threads(&mut serial, &stream, 13, 1);
        for threads in [2, 4, 7] {
            let mut c = Cluster::with_size(SystemSpec::ha8k(), 48, 13);
            let pvt = PowerVariationTable::generate_with_threads(&mut c, &stream, 13, threads);
            assert_eq!(pvt, reference, "threads = {threads}");
        }
    }
}
