//! The α solver and per-module power allocations (paper §5.1, Eqs. 5–9).
//!
//! The objective: *determine the maximum application-specific coefficient
//! α such that the total power consumption across all modules does not
//! exceed the given application-level power constraint.* From Eq. 5,
//!
//! ```text
//!       P_budget − Σᵢ P_module_min,i
//! α ≤ ─────────────────────────────────          (6)
//!       Σᵢ (P_module_max,i − P_module_min,i)
//! ```
//!
//! α is **common to all modules** "in order to ensure consistent
//! performance"; what differs per module is the power needed to realize
//! the common frequency:
//!
//! ```text
//! P_module_i = α·(P_module_max,i − P_module_min,i) + P_module_min,i   (7)
//! P_cpu_i    = P_module_i − P_dram_i                                  (8, 9)
//! ```

use crate::error::BudgetError;
use crate::pmt::PowerModelTable;
use serde::{Deserialize, Serialize};
use vap_model::linear::Alpha;
use vap_model::units::{GigaHertz, Watts};

/// The raw (unclamped) Eq. 6 bound. Negative values mean the budget
/// cannot sustain `f_min` everywhere; values above 1 mean the budget does
/// not bind.
// vap:allow(unit-flow): α is the paper's dimensionless scaling coefficient
pub fn raw_alpha(budget: Watts, pmt: &PowerModelTable) -> f64 {
    let min_sum = pmt.fleet_minimum();
    let span_sum: f64 = pmt.entries().iter().map(|e| e.module().span().value()).sum();
    if span_sum <= 0.0 {
        // Power-flat fleet: any budget above the floor admits α = 1.
        return if budget >= min_sum { 1.0 } else { -1.0 };
    }
    (budget - min_sum).value() / span_sum
}

/// Solve Eq. 6 for the maximum feasible α.
///
/// * Budget below the fleet minimum → [`BudgetError::InfeasibleBudget`]
///   (Table 4's "–").
/// * Budget above the fleet maximum → `α = 1` ("α is set to 1.0 when we
///   do not have any power constraints").
pub fn max_alpha(budget: Watts, pmt: &PowerModelTable) -> Result<Alpha, BudgetError> {
    vap_obs::incr("alpha.solves");
    if pmt.is_empty() {
        return Err(BudgetError::NoModules);
    }
    let raw = raw_alpha(budget, pmt);
    Alpha::try_new(raw).ok_or(BudgetError::InfeasibleBudget {
        budget,
        fleet_minimum: pmt.fleet_minimum(),
    })
}

/// One module's derived power allocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModuleAllocation {
    /// The module allocated to.
    pub module_id: usize,
    /// Total module budget `P_module_i` (Eq. 7).
    pub p_module: Watts,
    /// CPU power cap `P_cpu_i` (Eqs. 8–9) — what PC programs into RAPL.
    pub p_cpu: Watts,
    /// Predicted DRAM power `P_dram_i` at this α.
    pub p_dram: Watts,
    /// The common target frequency (Eq. 1) — what FS pins via cpufreq.
    pub frequency: GigaHertz,
}

/// Derive every module's allocation at coefficient `alpha` (Eqs. 1, 7–9).
pub fn allocations(pmt: &PowerModelTable, alpha: Alpha) -> Vec<ModuleAllocation> {
    pmt.entries()
        .iter()
        .map(|e| {
            let p_cpu = e.cpu.power(alpha);
            let p_dram = e.dram.power(alpha);
            ModuleAllocation {
                module_id: e.module_id,
                p_module: p_cpu + p_dram,
                p_cpu,
                p_dram,
                frequency: e.cpu.frequency(alpha),
            }
        })
        .collect()
}

/// Total allocated power across modules (must not exceed the budget the
/// α was solved for — checked in tests and by the Fig. 9 experiment).
pub fn total_allocated(allocs: &[ModuleAllocation]) -> Watts {
    allocs.iter().map(|a| a.p_module).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmt::PowerModelTable;
    use vap_model::units::GigaHertz;

    /// A hand-built PMT: two modules, one 20% hungrier than the other.
    fn pmt() -> PowerModelTable {
        // module 0: cpu 100→50, dram 12→8  (module 112→58)
        // module 1: cpu 120→60, dram 12→8  (module 132→68)
        let json = serde_json::json!({
            "entries": [
                {"module_id": 0,
                 "cpu":  {"f_max": 2.7, "f_min": 1.2, "p_max": 100.0, "p_min": 50.0},
                 "dram": {"f_max": 2.7, "f_min": 1.2, "p_max": 12.0, "p_min": 8.0}},
                {"module_id": 1,
                 "cpu":  {"f_max": 2.7, "f_min": 1.2, "p_max": 120.0, "p_min": 60.0},
                 "dram": {"f_max": 2.7, "f_min": 1.2, "p_max": 12.0, "p_min": 8.0}}
            ]
        });
        serde_json::from_value(json).expect("valid PMT json")
    }

    #[test]
    fn eq6_alpha_matches_hand_computation() {
        let t = pmt();
        // fleet min = 58 + 68 = 126; spans = 54 + 64 = 118
        assert_eq!(t.fleet_minimum(), Watts(126.0));
        let a = max_alpha(Watts(185.0), &t).unwrap();
        assert!((a.value() - (185.0 - 126.0) / 118.0).abs() < 1e-12);
    }

    #[test]
    fn generous_budget_saturates_alpha() {
        let t = pmt();
        assert_eq!(t.fleet_maximum(), Watts(244.0));
        let a = max_alpha(Watts(500.0), &t).unwrap();
        assert_eq!(a, Alpha::MAX);
    }

    #[test]
    fn starvation_budget_is_infeasible() {
        let t = pmt();
        let err = max_alpha(Watts(100.0), &t).unwrap_err();
        assert_eq!(
            err,
            BudgetError::InfeasibleBudget { budget: Watts(100.0), fleet_minimum: Watts(126.0) }
        );
    }

    #[test]
    fn allocations_respect_the_budget_exactly() {
        let t = pmt();
        let budget = Watts(185.0);
        let a = max_alpha(budget, &t).unwrap();
        let allocs = allocations(&t, a);
        let total = total_allocated(&allocs);
        assert!((total.value() - budget.value()).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn hungrier_module_gets_more_power_same_frequency() {
        // The core of variation-awareness: equal frequency, unequal power.
        let t = pmt();
        let a = max_alpha(Watts(185.0), &t).unwrap();
        let allocs = allocations(&t, a);
        assert_eq!(allocs[0].frequency, allocs[1].frequency);
        assert!(allocs[1].p_module > allocs[0].p_module);
        assert!(allocs[1].p_cpu > allocs[0].p_cpu);
    }

    #[test]
    fn cpu_cap_is_module_minus_dram() {
        let t = pmt();
        let a = max_alpha(Watts(200.0), &t).unwrap();
        for al in allocations(&t, a) {
            assert!((al.p_cpu + al.p_dram - al.p_module).abs() < Watts(1e-9));
        }
    }

    #[test]
    fn alpha_endpoints_give_anchor_frequencies() {
        let t = pmt();
        let hi = allocations(&t, Alpha::MAX);
        assert_eq!(hi[0].frequency, GigaHertz(2.7));
        assert_eq!(hi[0].p_module, Watts(112.0));
        let lo = allocations(&t, Alpha::MIN);
        assert_eq!(lo[0].frequency, GigaHertz(1.2));
        assert_eq!(lo[1].p_module, Watts(68.0));
    }

    #[test]
    fn empty_pmt_rejected() {
        let t: PowerModelTable = serde_json::from_value(serde_json::json!({"entries": []})).unwrap();
        assert_eq!(max_alpha(Watts(100.0), &t), Err(BudgetError::NoModules));
    }

    #[test]
    fn raw_alpha_reports_unclamped_bound() {
        let t = pmt();
        assert!(raw_alpha(Watts(500.0), &t) > 1.0);
        assert!(raw_alpha(Watts(100.0), &t) < 0.0);
    }
}
