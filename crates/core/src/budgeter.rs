//! The end-to-end budgeting framework (paper Fig. 4).
//!
//! A [`Budgeter`] owns the once-per-system PVT and turns
//! (application, budget, module list) requests into [`PowerPlan`]s under
//! any of the six schemes, exposing the feasibility test that generates
//! Table 4 along the way.

use crate::error::BudgetError;
use crate::feasibility::Feasibility;
use crate::pmt::PowerModelTable;
use crate::pvt::{PowerVariationTable, PvtEngine};
use crate::schemes::{PlanRequest, PowerPlan, SchemeId};
use crate::testrun::single_module_test_run;
use vap_model::units::Watts;
use vap_sim::cluster::Cluster;
use vap_workloads::catalog;
use vap_workloads::spec::{WorkloadId, WorkloadSpec};

/// The variation-aware power budgeting framework.
#[derive(Debug, Clone)]
pub struct Budgeter {
    pvt: PowerVariationTable,
    seed: u64,
}

impl Budgeter {
    /// Install-time setup: generate the PVT by sweeping the fleet with the
    /// *STREAM microbenchmark (the paper's choice — "it exhibited both
    /// memory and CPU boundedness").
    pub fn install(cluster: &mut Cluster, seed: u64) -> Self {
        Self::install_with_threads(cluster, seed, 1)
    }

    /// [`Budgeter::install`] with the PVT sweep fanned over `threads` OS
    /// threads. The resulting PVT — and therefore every plan — is
    /// identical at any thread count.
    pub fn install_with_threads(cluster: &mut Cluster, seed: u64, threads: usize) -> Self {
        Self::install_with_engine(cluster, seed, threads, PvtEngine::default())
    }

    /// [`Budgeter::install_with_threads`] with an explicit sweep engine.
    ///
    /// Both engines produce bit-identical PVTs; `engine` only selects the
    /// data layout the sweep runs over (see [`PvtEngine`]).
    pub fn install_with_engine(
        cluster: &mut Cluster,
        seed: u64,
        threads: usize,
        engine: PvtEngine,
    ) -> Self {
        let micro = catalog::get(WorkloadId::Stream);
        let pvt = PowerVariationTable::generate_with_engine(cluster, &micro, seed, threads, engine);
        Budgeter { pvt, seed }
    }

    /// Adopt a previously generated (e.g. persisted) PVT.
    pub fn with_pvt(pvt: PowerVariationTable, seed: u64) -> Self {
        Budgeter { pvt, seed }
    }

    /// The system PVT.
    pub fn pvt(&self) -> &PowerVariationTable {
        &self.pvt
    }

    /// Produce a plan for `workload` under `budget` on `module_ids` with
    /// `scheme`.
    pub fn plan(
        &self,
        cluster: &mut Cluster,
        scheme: SchemeId,
        workload: &WorkloadSpec,
        budget: Watts,
        module_ids: &[usize],
    ) -> Result<PowerPlan, BudgetError> {
        let req = PlanRequest {
            budget,
            module_ids,
            workload,
            pvt: &self.pvt,
            seed: self.seed,
        };
        scheme.plan(cluster, &req)
    }

    /// The application's calibrated PMT (test run on `module_ids[0]` plus
    /// PVT scaling) — the model every prediction-based decision uses.
    pub fn calibrated_pmt(
        &self,
        cluster: &mut Cluster,
        workload: &WorkloadSpec,
        module_ids: &[usize],
    ) -> Result<PowerModelTable, BudgetError> {
        if module_ids.is_empty() {
            return Err(BudgetError::NoModules);
        }
        let test = single_module_test_run(cluster, module_ids[0], workload, self.seed);
        PowerModelTable::calibrate(&self.pvt, &test, module_ids)
    }

    /// Classify a budget for Table 4 (from the application's predicted
    /// power profile, as the paper did offline).
    pub fn feasibility(
        &self,
        cluster: &mut Cluster,
        workload: &WorkloadSpec,
        budget: Watts,
        module_ids: &[usize],
    ) -> Result<Feasibility, BudgetError> {
        let pmt = self.calibrated_pmt(cluster, workload, module_ids)?;
        Ok(Feasibility::classify(budget, &pmt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vap_model::systems::SystemSpec;

    const SEED: u64 = 31;

    fn setup(n: usize) -> (Cluster, Budgeter) {
        let mut c = Cluster::with_size(SystemSpec::ha8k(), n, SEED);
        let b = Budgeter::install(&mut c, SEED);
        (c, b)
    }

    #[test]
    fn install_generates_stream_pvt() {
        let (c, b) = setup(12);
        assert_eq!(b.pvt().microbenchmark, "*STREAM");
        assert_eq!(b.pvt().len(), c.len());
    }

    #[test]
    fn both_engines_install_identical_pvts() {
        let mut c = Cluster::with_size(SystemSpec::ha8k(), 10, SEED);
        let soa = Budgeter::install_with_engine(&mut c, SEED, 2, PvtEngine::Soa);
        let reference = Budgeter::install_with_engine(&mut c, SEED, 2, PvtEngine::Reference);
        assert_eq!(soa.pvt(), reference.pvt());
    }

    #[test]
    fn pvt_round_trips_through_persistence() {
        let (_, b) = setup(6);
        let json = b.pvt().to_json();
        let b2 = Budgeter::with_pvt(PowerVariationTable::from_json(&json).unwrap(), SEED);
        assert_eq!(b.pvt(), b2.pvt());
    }

    #[test]
    fn feasibility_tracks_table4_regimes() {
        let (mut c, b) = setup(16);
        let mhd = catalog::get(WorkloadId::Mhd);
        let ids: Vec<usize> = (0..16).collect();
        // MHD: • at Cm=110, X in the middle band, – at Cm=50
        let f110 = b.feasibility(&mut c, &mhd, Watts(110.0 * 16.0), &ids).unwrap();
        let f80 = b.feasibility(&mut c, &mhd, Watts(80.0 * 16.0), &ids).unwrap();
        let f50 = b.feasibility(&mut c, &mhd, Watts(50.0 * 16.0), &ids).unwrap();
        assert_eq!(f110, Feasibility::NotConstrained);
        assert_eq!(f80, Feasibility::Constrained);
        assert_eq!(f50, Feasibility::Infeasible);
    }

    #[test]
    fn plans_are_produced_for_all_schemes() {
        let (mut c, b) = setup(12);
        let w = catalog::get(WorkloadId::Sp);
        let ids: Vec<usize> = (0..12).collect();
        for scheme in SchemeId::ALL {
            let plan = b.plan(&mut c, scheme, &w, Watts(80.0 * 12.0), &ids).unwrap();
            assert_eq!(plan.scheme, scheme);
            assert_eq!(plan.allocations.len(), 12);
        }
    }

    #[test]
    fn subset_allocation_plans_only_those_modules() {
        let (mut c, b) = setup(16);
        let w = catalog::get(WorkloadId::Mvmc);
        let ids = [2usize, 5, 9, 14];
        let plan = b.plan(&mut c, SchemeId::VaPc, &w, Watts(4.0 * 85.0), &ids).unwrap();
        let planned: Vec<usize> = plan.allocations.iter().map(|a| a.module_id).collect();
        assert_eq!(planned, ids);
    }
}
