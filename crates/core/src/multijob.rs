//! Extension (paper §7 future work): multiple applications under one
//! system-level power constraint.
//!
//! "Future research includes analyzing multiple applications under a
//! system-level power constraint and optimizing for overall system
//! throughput. This involves integrating our work with a power-aware
//! resource manager such as RMAP, which can determine application-level
//! power constraints and physical node allocations in a fair yet
//! intelligent manner."
//!
//! This module implements that integration point: given several jobs, each
//! with its own module allocation and calibrated PMT, partition the system
//! budget into per-application budgets, then let the per-application
//! budgeting (the paper's core) do the rest. Three partition policies:
//!
//! * [`PartitionPolicy::ProportionalToModules`] — the naive resource
//!   manager: watts ∝ module count, blind to what runs where.
//! * [`PartitionPolicy::FairFloorPlusUniformAlpha`] — every job first gets
//!   its predicted `f_min` floor (nobody starves), then the *remaining*
//!   watts are spread so all jobs reach the **same α**: uniform relative
//!   progress, the natural multi-job generalization of the paper's
//!   "common frequency" objective.
//! * [`PartitionPolicy::ThroughputGreedy`] — spend each spare watt where
//!   it buys the most system throughput (marginal-utility greedy over
//!   jobs' α-per-watt and frequency sensitivity).
//!
//! Long-lived resource managers should hold a [`Budgeter`]: it keys jobs
//! by id, caches each job's PMT extrema at admission, and re-partitions
//! from the cached columns — bit-identical to [`partition`] without the
//! per-event PMT rescans.

use crate::alpha::{allocations, raw_alpha};
use crate::error::BudgetError;
use crate::pmt::PowerModelTable;
use crate::schemes::{ControlKind, PowerPlan, SchemeId};
use serde::{Deserialize, Serialize};
use vap_model::linear::Alpha;
use vap_model::units::Watts;
use vap_workloads::spec::WorkloadId;

/// One job awaiting a power budget.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// The application (for reporting and frequency-sensitivity lookup).
    pub workload: WorkloadId,
    /// Modules the scheduler allocated to this job.
    pub module_ids: Vec<usize>,
    /// The job's calibrated PMT over exactly those modules.
    pub pmt: PowerModelTable,
    /// CPU-bound fraction χ of the job (how much α buys it).
    pub cpu_fraction: f64,
}

impl JobRequest {
    fn fleet_minimum(&self) -> Watts {
        self.pmt.fleet_minimum()
    }

    fn fleet_maximum(&self) -> Watts {
        self.pmt.fleet_maximum()
    }

    /// Relative progress rate at coefficient α (1.0 at α = 1): the
    /// boundedness-weighted frequency ratio.
    fn progress(&self, alpha: Alpha) -> f64 {
        let e = &self.pmt.entries()[0].cpu;
        let f = e.frequency(alpha).value();
        let f_max = e.f_max.value();
        1.0 / (self.cpu_fraction * (f_max / f) + (1.0 - self.cpu_fraction))
    }
}

/// How the system budget is split across jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionPolicy {
    /// Watts proportional to module count (variation- and
    /// application-unaware resource manager).
    ProportionalToModules,
    /// Feasibility floors first, then equalize α across jobs.
    FairFloorPlusUniformAlpha,
    /// Feasibility floors first, then greedy marginal-throughput watts.
    ThroughputGreedy,
}

/// The outcome for one job.
#[derive(Debug, Clone)]
pub struct JobBudget {
    /// The application.
    pub workload: WorkloadId,
    /// The job's awarded application-level budget.
    pub budget: Watts,
    /// The job's α under that budget.
    pub alpha: Alpha,
    /// The per-module plan realizing it (PC flavor).
    pub plan: PowerPlan,
    /// The job's relative progress rate (1.0 = unconstrained).
    pub progress: f64,
}

/// Partition `system_budget` across `jobs`.
///
/// Errors if even the feasibility floors (every job at `f_min`) exceed the
/// system budget — the resource manager must then queue rather than start
/// all jobs, exactly the RMAP-style decision the paper defers to.
pub fn partition(
    system_budget: Watts,
    jobs: &[JobRequest],
    policy: PartitionPolicy,
) -> Result<Vec<JobBudget>, BudgetError> {
    let mins: Vec<Watts> = jobs.iter().map(|j| j.fleet_minimum()).collect();
    let maxs: Vec<Watts> = jobs.iter().map(|j| j.fleet_maximum()).collect();
    partition_with_extrema(system_budget, jobs, &mins, &maxs, policy)
}

/// [`partition`] with the per-job PMT extrema (`fleet_minimum` /
/// `fleet_maximum`) supplied by the caller instead of recomputed.
///
/// This is the hot path behind [`Budgeter`]: the extrema are per-module
/// reductions over each job's PMT, so a resource manager re-partitioning
/// on every event would otherwise rescan every PMT every time. The result
/// is bit-identical to [`partition`] — the extrema are pure functions of
/// the PMTs, and every fold here visits the same values in the same order.
///
/// `mins`/`maxs` must be index-aligned with `jobs`.
pub fn partition_with_extrema(
    system_budget: Watts,
    jobs: &[JobRequest],
    mins: &[Watts],
    maxs: &[Watts],
    policy: PartitionPolicy,
) -> Result<Vec<JobBudget>, BudgetError> {
    assert_eq!(jobs.len(), mins.len(), "mins must be index-aligned with jobs");
    assert_eq!(jobs.len(), maxs.len(), "maxs must be index-aligned with jobs");
    if jobs.is_empty() {
        return Err(BudgetError::NoModules);
    }
    let floor: Watts = mins.iter().copied().sum();
    if system_budget < floor {
        return Err(BudgetError::InfeasibleBudget { budget: system_budget, fleet_minimum: floor });
    }

    let budgets: Vec<Watts> = match policy {
        PartitionPolicy::ProportionalToModules => {
            let total_modules: usize = jobs.iter().map(|j| j.module_ids.len()).sum();
            jobs.iter()
                .map(|j| system_budget * (j.module_ids.len() as f64 / total_modules as f64))
                .collect()
        }
        PartitionPolicy::FairFloorPlusUniformAlpha => {
            // Common α across jobs: Σ_j (min_j + α·span_j) = budget.
            let span: f64 = mins.iter().zip(maxs).map(|(mn, mx)| (*mx - *mn).value()).sum();
            let alpha = if span <= 0.0 {
                1.0
            } else {
                ((system_budget - floor).value() / span).clamp(0.0, 1.0)
            };
            mins.iter().zip(maxs).map(|(mn, mx)| *mn + (*mx - *mn) * alpha).collect()
        }
        PartitionPolicy::ThroughputGreedy => greedy_budgets(system_budget, jobs, mins, maxs),
    };

    // A job's proportional share can fall below its own floor; clamp up and
    // renormalize the excess out of the slack-holders so the system budget
    // is respected.
    let budgets = clamp_to_floors(&budgets, mins, system_budget);

    budgets
        .into_iter()
        .zip(jobs)
        .map(|(budget, job)| {
            let alpha = Alpha::saturating(raw_alpha(budget, &job.pmt));
            let allocs = allocations(&job.pmt, alpha);
            Ok(JobBudget {
                workload: job.workload,
                budget,
                alpha,
                progress: job.progress(alpha),
                plan: PowerPlan {
                    scheme: SchemeId::VaPc,
                    alpha,
                    allocations: allocs,
                    control: ControlKind::PowerCapping,
                    budget,
                },
            })
        })
        .collect()
}

/// Greedy marginal-throughput allocation: start every job at its floor,
/// then hand out the remaining watts in small quanta to whichever job's
/// progress improves most per watt.
fn greedy_budgets(
    system_budget: Watts,
    jobs: &[JobRequest],
    mins: &[Watts],
    maxs: &[Watts],
) -> Vec<Watts> {
    let mut budgets: Vec<f64> = mins.iter().map(|mn| mn.value()).collect();
    let spans: Vec<f64> = mins.iter().zip(maxs).map(|(mn, mx)| (*mx - *mn).value()).collect();
    let mut spare = system_budget.value() - budgets.iter().sum::<f64>();
    // quantum: 1/500 of the spare pool, bounded below for termination
    let quantum = (spare / 500.0).max(1e-3);
    while spare > 1e-9 {
        let step = quantum.min(spare);
        let mut best: Option<(usize, f64)> = None;
        for (i, job) in jobs.iter().enumerate() {
            if spans[i] <= 0.0 {
                continue;
            }
            let a0 = ((budgets[i] - mins[i].value()) / spans[i]).clamp(0.0, 1.0);
            if a0 >= 1.0 {
                continue; // already unconstrained
            }
            let a1 = ((budgets[i] + step - mins[i].value()) / spans[i]).clamp(0.0, 1.0);
            let gain = (job.progress(Alpha::saturating(a1))
                - job.progress(Alpha::saturating(a0)))
                * job.module_ids.len() as f64;
            if best.is_none_or(|(_, g)| gain > g) {
                best = Some((i, gain));
            }
        }
        match best {
            Some((i, gain)) if gain > 0.0 => {
                budgets[i] += step;
                spare -= step;
            }
            _ => break, // every job unconstrained; leave the rest unspent
        }
    }
    budgets.into_iter().map(Watts).collect()
}

fn clamp_to_floors(budgets: &[Watts], mins: &[Watts], system_budget: Watts) -> Vec<Watts> {
    let mut out: Vec<f64> = budgets.iter().map(|b| b.value()).collect();
    let floors: Vec<f64> = mins.iter().map(|mn| mn.value()).collect();
    // raise the starved to their floors
    let mut deficit = 0.0;
    for (b, f) in out.iter_mut().zip(&floors) {
        if *b < *f {
            deficit += *f - *b;
            *b = *f;
        }
    }
    // take the deficit from whoever holds slack, proportionally
    if deficit > 0.0 {
        let slack: f64 = out.iter().zip(&floors).map(|(b, f)| (b - f).max(0.0)).sum();
        if slack > 0.0 {
            for (b, f) in out.iter_mut().zip(&floors) {
                let s = (*b - f).max(0.0);
                *b -= deficit * s / slack;
            }
        }
    }
    // never exceed the system budget (floating point dust)
    let total: f64 = out.iter().sum();
    if total > system_budget.value() {
        let scale = system_budget.value() / total;
        for (b, f) in out.iter_mut().zip(&floors) {
            *b = f + (*b - f) * scale;
        }
    }
    out.into_iter().map(Watts).collect()
}

/// An incremental, keyed front-end to [`partition`] for long-lived
/// resource managers.
///
/// A scheduler that re-partitions the system budget on every event (job
/// start, job completion, a power shock) would otherwise rebuild its job
/// slice and rescan every job's PMT for the `fleet_minimum` /
/// `fleet_maximum` extrema each time. The `Budgeter` keeps the admitted
/// jobs in insertion order alongside their cached extrema, so each event
/// touches only the admitted or removed entry, and
/// [`Budgeter::partition`] is a delegation to [`partition_with_extrema`]
/// over the cached columns — bit-identical to calling [`partition`] on
/// the same jobs in the same order, because the extrema are pure
/// functions of each PMT and every fold visits the same values in the
/// same order.
#[derive(Debug, Clone, Default)]
pub struct Budgeter {
    keys: Vec<u64>,
    jobs: Vec<JobRequest>,
    mins: Vec<Watts>,
    maxs: Vec<Watts>,
}

impl Budgeter {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of admitted jobs.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no jobs are admitted.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Whether `key` is currently admitted.
    pub fn contains(&self, key: u64) -> bool {
        self.keys.contains(&key)
    }

    /// The admitted keys, in insertion order (aligned with
    /// [`Budgeter::partition`]'s result).
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// The admitted jobs, in insertion order.
    pub fn jobs(&self) -> &[JobRequest] {
        &self.jobs
    }

    /// Admit a job under `key`, caching its PMT extrema once.
    ///
    /// Re-admitting an existing key replaces the previous request (the
    /// job moves to the back of the insertion order).
    pub fn admit(&mut self, key: u64, request: JobRequest) {
        self.remove(key);
        self.mins.push(request.fleet_minimum());
        self.maxs.push(request.fleet_maximum());
        self.keys.push(key);
        self.jobs.push(request);
    }

    /// Remove the job under `key`, preserving the order of the rest.
    /// Returns whether the key was present.
    pub fn remove(&mut self, key: u64) -> bool {
        match self.keys.iter().position(|k| *k == key) {
            Some(i) => {
                self.keys.remove(i);
                self.jobs.remove(i);
                self.mins.remove(i);
                self.maxs.remove(i);
                true
            }
            None => false,
        }
    }

    /// Combined feasibility floor of the admitted jobs: the least system
    /// budget under which [`Budgeter::partition`] succeeds.
    pub fn floor_total(&self) -> Watts {
        self.mins.iter().copied().sum()
    }

    /// Partition `system_budget` across the admitted jobs (insertion
    /// order), using the cached extrema. Bit-identical to
    /// [`partition`]`(system_budget, self.jobs(), policy)`.
    pub fn partition(
        &self,
        system_budget: Watts,
        policy: PartitionPolicy,
    ) -> Result<Vec<JobBudget>, BudgetError> {
        partition_with_extrema(system_budget, &self.jobs, &self.mins, &self.maxs, policy)
    }
}

/// System throughput of a partition: module-weighted mean progress (each
/// module contributes its job's relative rate — "how much science per
/// second is the machine doing versus unconstrained").
pub fn system_throughput(budgets: &[JobBudget], jobs: &[JobRequest]) -> f64 {
    let total_modules: usize = jobs.iter().map(|j| j.module_ids.len()).sum();
    budgets
        .iter()
        .zip(jobs)
        .map(|(b, j)| b.progress * j.module_ids.len() as f64)
        .sum::<f64>()
        / total_modules as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pvt::PowerVariationTable;
    use crate::testrun::single_module_test_run;
    use vap_model::systems::SystemSpec;
    use vap_sim::cluster::Cluster;
    use vap_workloads::catalog;

    const SEED: u64 = 61;

    /// Two jobs sharing a 96-module fleet: DGEMM (hot, frequency-hungry)
    /// and STREAM (cool in CPU terms, frequency-insensitive).
    fn setup() -> (Vec<JobRequest>, Watts) {
        let n = 96;
        let mut cluster = Cluster::with_size(SystemSpec::ha8k(), n, SEED);
        let pvt = PowerVariationTable::generate(
            &mut cluster,
            &catalog::get(WorkloadId::Stream),
            SEED,
        );
        let mut jobs = Vec::new();
        for (w, ids) in [
            (WorkloadId::Dgemm, (0..48).collect::<Vec<_>>()),
            (WorkloadId::Stream, (48..96).collect::<Vec<_>>()),
        ] {
            let spec = catalog::get(w);
            let test = single_module_test_run(&mut cluster, ids[0], &spec, SEED);
            let pmt = PowerModelTable::calibrate(&pvt, &test, &ids).unwrap();
            jobs.push(JobRequest {
                workload: w,
                module_ids: ids,
                pmt,
                cpu_fraction: spec.cpu_fraction,
            });
        }
        (jobs, Watts(85.0 * n as f64))
    }

    #[test]
    fn all_policies_respect_the_system_budget() {
        let (jobs, budget) = setup();
        for policy in [
            PartitionPolicy::ProportionalToModules,
            PartitionPolicy::FairFloorPlusUniformAlpha,
            PartitionPolicy::ThroughputGreedy,
        ] {
            let parts = partition(budget, &jobs, policy).unwrap();
            let total: Watts = parts.iter().map(|p| p.plan.total_allocated()).sum();
            assert!(total <= budget + Watts(1e-6), "{policy:?}: {total} > {budget}");
            assert_eq!(parts.len(), 2);
            for p in &parts {
                assert!(p.alpha.value() >= 0.0 && p.alpha.value() <= 1.0);
                assert!(p.progress > 0.0 && p.progress <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn floors_guarantee_no_job_starves() {
        let (jobs, _) = setup();
        // budget barely above the combined floor
        let floor: Watts = jobs.iter().map(|j| j.pmt.fleet_minimum()).sum();
        let parts =
            partition(floor + Watts(50.0), &jobs, PartitionPolicy::ThroughputGreedy).unwrap();
        for (p, j) in parts.iter().zip(&jobs) {
            assert!(p.budget >= j.pmt.fleet_minimum() - Watts(1e-6), "{} starved", p.workload);
        }
    }

    #[test]
    fn below_floor_budget_errors() {
        let (jobs, _) = setup();
        let floor: Watts = jobs.iter().map(|j| j.pmt.fleet_minimum()).sum();
        let err = partition(floor * 0.9, &jobs, PartitionPolicy::FairFloorPlusUniformAlpha)
            .unwrap_err();
        assert!(matches!(err, BudgetError::InfeasibleBudget { .. }));
        assert!(partition(Watts(1e6), &[], PartitionPolicy::ThroughputGreedy).is_err());
    }

    #[test]
    fn greedy_feeds_the_frequency_sensitive_job() {
        // DGEMM (χ=0.95) converts watts into progress; STREAM (χ=0.35)
        // barely does. The greedy policy should give DGEMM a higher α than
        // the uniform-α policy does.
        let (jobs, budget) = setup();
        let uniform =
            partition(budget, &jobs, PartitionPolicy::FairFloorPlusUniformAlpha).unwrap();
        let greedy = partition(budget, &jobs, PartitionPolicy::ThroughputGreedy).unwrap();
        let dgemm_uniform = uniform.iter().find(|p| p.workload == WorkloadId::Dgemm).unwrap();
        let dgemm_greedy = greedy.iter().find(|p| p.workload == WorkloadId::Dgemm).unwrap();
        assert!(
            dgemm_greedy.alpha.value() > dgemm_uniform.alpha.value(),
            "greedy should prioritize DGEMM: {} vs {}",
            dgemm_greedy.alpha.value(),
            dgemm_uniform.alpha.value()
        );
        // and total throughput should not be worse
        let t_uniform = system_throughput(&uniform, &jobs);
        let t_greedy = system_throughput(&greedy, &jobs);
        assert!(t_greedy >= t_uniform - 1e-9, "greedy {t_greedy} < uniform {t_uniform}");
    }

    #[test]
    fn generous_budget_makes_everyone_unconstrained() {
        let (jobs, _) = setup();
        for policy in [
            PartitionPolicy::FairFloorPlusUniformAlpha,
            PartitionPolicy::ThroughputGreedy,
        ] {
            let parts = partition(Watts(1e6), &jobs, policy).unwrap();
            for p in &parts {
                assert_eq!(p.alpha, Alpha::MAX, "{policy:?}/{}", p.workload);
                assert!((p.progress - 1.0).abs() < 1e-9);
            }
        }
    }

    /// Field-by-field bitwise equality of two partitions (floats compared
    /// via `to_bits`, so `-0.0 != 0.0` and NaNs would fail loudly).
    fn assert_parts_bitwise_eq(a: &[JobBudget], b: &[JobBudget]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.workload, y.workload);
            assert_eq!(x.budget.value().to_bits(), y.budget.value().to_bits());
            assert_eq!(x.alpha.value().to_bits(), y.alpha.value().to_bits());
            assert_eq!(x.progress.to_bits(), y.progress.to_bits());
            assert_eq!(x.plan.scheme, y.plan.scheme);
            assert_eq!(x.plan.control, y.plan.control);
            assert_eq!(x.plan.budget.value().to_bits(), y.plan.budget.value().to_bits());
            assert_eq!(x.plan.allocations.len(), y.plan.allocations.len());
            for (am, bm) in x.plan.allocations.iter().zip(&y.plan.allocations) {
                assert_eq!(am.module_id, bm.module_id);
                assert_eq!(am.p_module.value().to_bits(), bm.p_module.value().to_bits());
                assert_eq!(am.p_cpu.value().to_bits(), bm.p_cpu.value().to_bits());
                assert_eq!(am.p_dram.value().to_bits(), bm.p_dram.value().to_bits());
                assert_eq!(am.frequency.value().to_bits(), bm.frequency.value().to_bits());
            }
        }
    }

    #[test]
    fn incremental_budgeter_matches_batch_partition_bitwise() {
        let (jobs, budget) = setup();
        let mut ledger = Budgeter::new();
        for (k, j) in jobs.iter().enumerate() {
            ledger.admit(k as u64, j.clone());
        }
        assert_eq!(ledger.len(), jobs.len());
        assert_eq!(ledger.keys(), &[0, 1]);
        for policy in [
            PartitionPolicy::ProportionalToModules,
            PartitionPolicy::FairFloorPlusUniformAlpha,
            PartitionPolicy::ThroughputGreedy,
        ] {
            let batch = partition(budget, &jobs, policy).unwrap();
            let incremental = ledger.partition(budget, policy).unwrap();
            assert_parts_bitwise_eq(&batch, &incremental);
        }
    }

    #[test]
    fn budgeter_floor_total_matches_summed_minimums() {
        let (jobs, _) = setup();
        let mut ledger = Budgeter::new();
        assert_eq!(ledger.floor_total(), Watts(0.0));
        for (k, j) in jobs.iter().enumerate() {
            ledger.admit(k as u64, j.clone());
        }
        let expected: Watts = jobs.iter().map(|j| j.pmt.fleet_minimum()).sum();
        assert_eq!(ledger.floor_total().value().to_bits(), expected.value().to_bits());
    }

    #[test]
    fn budgeter_removal_preserves_order_and_replacement_moves_to_back() {
        let (jobs, budget) = setup();
        let mut ledger = Budgeter::new();
        // admit A, B, A-clone: re-admitting key 0 moves it behind key 1
        ledger.admit(0, jobs[0].clone());
        ledger.admit(1, jobs[1].clone());
        ledger.admit(0, jobs[0].clone());
        assert_eq!(ledger.keys(), &[1, 0]);
        assert_eq!(ledger.len(), 2);
        let reordered = [jobs[1].clone(), jobs[0].clone()];
        let batch = partition(budget, &reordered, PartitionPolicy::ThroughputGreedy).unwrap();
        let incremental = ledger.partition(budget, PartitionPolicy::ThroughputGreedy).unwrap();
        assert_parts_bitwise_eq(&batch, &incremental);
        // removal
        assert!(ledger.remove(1));
        assert!(!ledger.remove(1));
        assert!(!ledger.contains(1));
        assert_eq!(ledger.keys(), &[0]);
        let solo = partition(budget, &jobs[..1], PartitionPolicy::ThroughputGreedy).unwrap();
        let incremental = ledger.partition(budget, PartitionPolicy::ThroughputGreedy).unwrap();
        assert_parts_bitwise_eq(&solo, &incremental);
        // draining the ledger brings back the empty-jobs error
        assert!(ledger.remove(0));
        assert!(ledger.is_empty());
        assert!(ledger.partition(budget, PartitionPolicy::ThroughputGreedy).is_err());
    }

    #[test]
    fn proportional_ignores_applications() {
        let (jobs, budget) = setup();
        let parts = partition(budget, &jobs, PartitionPolicy::ProportionalToModules).unwrap();
        // equal module counts → equal budgets, whatever the workloads are
        assert!((parts[0].budget - parts[1].budget).abs() < Watts(1e-6));
    }
}
