//! Power Measurement and Management Directives (PMMDs).
//!
//! The paper instruments applications with TAU-based directives "just
//! after `MPI_Init` and just before `MPI_Finalize`" (§5, step 1): the
//! region of interest where power settings are applied and power is
//! measured. [`run_region`] is that bracket for simulated applications:
//! it installs the workload, applies the plan at region entry, executes
//! the SPMD program, accounts power and energy, and restores the fleet at
//! region exit.

use crate::schemes::{apply_plan, release_plan, PowerPlan};
use serde::{Deserialize, Serialize};
use vap_model::power::PowerActivity;
use vap_model::units::{Joules, Seconds, Watts};
use vap_mpi::comm::CommParams;
use vap_mpi::engine::{self, RunResult};
use vap_mpi::program::Program;
use vap_sim::cluster::Cluster;
use vap_workloads::spec::WorkloadSpec;

/// What the PMMD bracket measured across the region of interest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionReport {
    /// Per-rank execution results.
    pub run: RunResult,
    /// Per-module average power while the module's rank was running.
    pub module_power: Vec<Watts>,
    /// Σ of per-module busy power — the fleet draw while the application
    /// executes, the quantity Fig. 9 audits against the constraint.
    pub total_power: Watts,
    /// Total energy: Σᵢ (module power × that rank's execution time).
    pub energy: Joules,
}

impl RegionReport {
    /// Application completion time.
    pub fn makespan(&self) -> Seconds {
        self.run.makespan()
    }
}

/// Execute `program` for `workload` on `module_ids` of `cluster` under
/// `plan`, with full PMMD bracketing.
pub fn run_region(
    cluster: &mut Cluster,
    plan: &PowerPlan,
    workload: &WorkloadSpec,
    program: &Program,
    module_ids: &[usize],
    comm: &CommParams,
    seed: u64,
) -> RegionReport {
    assert!(!module_ids.is_empty(), "a region needs at least one rank");
    let _region_span = vap_obs::span("pmmd.region");
    // --- region entry (just after MPI_Init) ---
    // Only the job's own modules run the application; the rest of the
    // fleet is untouched (other jobs may own it).
    workload.apply_to_modules(cluster, module_ids, seed);
    apply_plan(plan, cluster);

    // Execute: module operating points are in steady state for the whole
    // region (RAPL converges in milliseconds; regions run for minutes).
    let boundedness = workload.boundedness(cluster.spec().pstates.f_max());
    let run = engine::run_on_cluster(program, cluster, module_ids, &boundedness, comm);

    // Measure while settings are still applied. Ids outside the fleet were
    // skipped at apply time; skip them here too so the power/time zip stays
    // rank-aligned.
    let module_power: Vec<Watts> =
        module_ids.iter().filter_map(|&id| cluster.get(id).map(|m| m.module_power())).collect();
    let total_power: Watts = module_power.iter().copied().sum();
    let energy: Joules = module_power
        .iter()
        .zip(&run.rank_times)
        .map(|(&p, &t)| if t.value().is_finite() { p * t } else { Joules::ZERO })
        .sum();

    vap_obs::incr("region.runs");
    vap_obs::observe("region.makespan_s", run.makespan().value());
    vap_obs::observe("region.total_power_w", total_power.value());

    // Watt-provenance: attribute the plan's budget over the whole region
    // while settings are still applied. One tick, dt = makespan.
    vap_obs::ledger_tick(|| region_ledger_tick(cluster, plan, run.makespan()));

    // --- region exit (just before MPI_Finalize) ---
    release_plan(plan, cluster);
    for &id in module_ids {
        let Some(m) = cluster.get_mut(id) else {
            continue;
        };
        m.set_workload_variation(None);
        m.set_activity(PowerActivity::IDLE);
    }

    RegionReport { run, module_power, total_power, energy }
}

/// Attribute one region's budget to `(job, module, domain)` watt bins.
///
/// The region is a single implicit job (id 0). Telescoping keeps the
/// bins summing to the budget exactly: per-domain `useful + loss`
/// recovers each grant (`useful = min(measured, granted)`, the loss
/// classified as throttle when RAPL is actively limiting, headroom
/// otherwise), and the job-residue row absorbs `budget − Σ grants` —
/// so the ledger's conservation invariant holds by construction, not by
/// measurement luck.
fn region_ledger_tick(
    cluster: &Cluster,
    plan: &PowerPlan,
    makespan: Seconds,
) -> vap_obs::LedgerTick {
    use vap_obs::{Category, Domain, LedgerEntry, LedgerTick};
    let mut entries = Vec::new();
    let mut granted_total = 0.0;
    for a in &plan.allocations {
        let Some(m) = cluster.get(a.module_id) else {
            continue;
        };
        let id = a.module_id as u64;
        let throttled = m.rapl_throttled();
        for (domain, granted, measured) in [
            (Domain::Cpu, a.p_cpu.value(), m.cpu_power().value()),
            (Domain::Dram, a.p_dram.value(), m.dram_power().value()),
        ] {
            let useful = measured.min(granted);
            entries.push(LedgerEntry::module(0, id, domain, Category::Useful, useful));
            let cat = if throttled { Category::Throttle } else { Category::Headroom };
            entries.push(LedgerEntry::module(0, id, domain, cat, granted - useful));
            granted_total += granted;
        }
    }
    entries.push(LedgerEntry::job_residue(0, plan.budget.value() - granted_total));
    LedgerTick { t_s: 0.0, dt_s: makespan.value(), cap_w: plan.budget.value(), entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pvt::PowerVariationTable;
    use crate::schemes::{PlanRequest, SchemeId};
    use vap_model::systems::SystemSpec;
    use vap_workloads::catalog;
    use vap_workloads::spec::WorkloadId;

    const SEED: u64 = 23;

    fn setup(n: usize) -> (Cluster, PowerVariationTable) {
        let mut c = Cluster::with_size(SystemSpec::ha8k(), n, SEED);
        let pvt = PowerVariationTable::generate(&mut c, &catalog::get(WorkloadId::Stream), SEED);
        (c, pvt)
    }

    fn run_with(scheme: SchemeId, per_module: Watts, n: usize) -> RegionReport {
        let (mut c, pvt) = setup(n);
        let w = catalog::get(WorkloadId::Mhd);
        let ids: Vec<usize> = (0..n).collect();
        let req = PlanRequest {
            budget: per_module * n as f64,
            module_ids: &ids,
            workload: &w,
            pvt: &pvt,
            seed: SEED,
        };
        let plan = scheme.plan(&mut c, &req).unwrap();
        let program = w.program(0.02); // short run for tests
        run_region(&mut c, &plan, &w, &program, &ids, &CommParams::infiniband_fdr(), SEED)
    }

    #[test]
    fn region_reports_power_within_budget_for_pc() {
        let n = 16;
        let report = run_with(SchemeId::VaPc, Watts(80.0), n);
        assert!(report.total_power <= Watts(80.0 * n as f64) * 1.01);
        assert_eq!(report.module_power.len(), n);
        assert!(report.makespan().value() > 0.0);
        assert!(report.energy.value() > 0.0);
    }

    #[test]
    fn fleet_is_restored_after_region() {
        let (mut c, pvt) = setup(8);
        let w = catalog::get(WorkloadId::Bt);
        let ids: Vec<usize> = (0..8).collect();
        let req = PlanRequest {
            budget: Watts(8.0 * 80.0),
            module_ids: &ids,
            workload: &w,
            pvt: &pvt,
            seed: SEED,
        };
        let plan = SchemeId::VaFs.plan(&mut c, &req).unwrap();
        let before: Vec<f64> = c.module_powers().iter().map(|p| p.value()).collect();
        let program = w.program(0.01);
        let _ = run_region(&mut c, &plan, &w, &program, &ids, &CommParams::ideal(), SEED);
        let after: Vec<f64> = c.module_powers().iter().map(|p| p.value()).collect();
        assert_eq!(before, after, "region must leave the fleet as it found it");
    }

    #[test]
    fn tighter_budget_runs_slower() {
        let loose = run_with(SchemeId::VaFs, Watts(90.0), 8);
        let tight = run_with(SchemeId::VaFs, Watts(65.0), 8);
        assert!(tight.makespan() > loose.makespan());
        assert!(tight.total_power < loose.total_power);
    }

    #[test]
    fn region_ledger_conserves_the_budget() {
        let (mut c, pvt) = setup(8);
        let w = catalog::get(WorkloadId::Mhd);
        let ids: Vec<usize> = (0..8).collect();
        let req = PlanRequest {
            budget: Watts(8.0 * 80.0),
            module_ids: &ids,
            workload: &w,
            pvt: &pvt,
            seed: SEED,
        };
        let plan = SchemeId::VaPc.plan(&mut c, &req).unwrap();
        w.apply_to_modules(&mut c, &ids, SEED);
        apply_plan(&plan, &mut c);

        let tick = region_ledger_tick(&c, &plan, Seconds(120.0));
        // 8 modules × 2 domains × 2 rows + job residue
        assert_eq!(tick.entries.len(), 8 * 2 * 2 + 1);
        let mut table = vap_obs::LedgerTable::new();
        table.record(tick);
        assert_eq!(table.violations, 0, "telescoped bins must sum to the budget");
        let [useful, throttle, headroom, _stranded] = table.energy_by_category();
        assert!(useful > 0.0, "a busy region burns useful watts");
        assert!(
            throttle + headroom >= 0.0,
            "losses are non-negative by construction"
        );

        release_plan(&plan, &mut c);
    }

    #[test]
    fn energy_is_power_times_time_per_rank() {
        let report = run_with(SchemeId::VaPc, Watts(85.0), 4);
        let hand: f64 = report
            .module_power
            .iter()
            .zip(&report.run.rank_times)
            .map(|(p, t)| p.value() * t.value())
            .sum();
        assert!((report.energy.value() - hand).abs() < 1e-9);
    }
}
