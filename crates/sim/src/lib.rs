//! # vap-sim
//!
//! A simulated, power-managed HPC fleet: the hardware substrate the paper's
//! measurements and mechanisms ran on, rebuilt in software.
//!
//! * [`msr`] — Intel-style model-specific registers for the RAPL interface
//!   (power-limit encoding, wrapping energy counters), the layer `libMSR`
//!   talks to on real hardware.
//! * [`rapl`] — the Running Average Power Limit mechanism: windowed
//!   average-power enforcement through an internal DVFS feedback loop, with
//!   duty-cycle clock modulation when even the lowest P-state exceeds the
//!   cap (the regime responsible for the paper's worst-case slowdowns).
//! * [`cpufreq`] — a `cpufrequtils`-style governor interface used by the
//!   paper's Frequency Selection (FS) implementation.
//! * [`dynamics`] — time-stepped RAPL co-simulation validating the
//!   steady-state solve the campaign experiments rely on.
//! * [`module`] — one module (CPU socket + DRAM) with its manufacturing
//!   fingerprint, operating point resolution and energy accounting.
//! * [`measurement`] — the three sensing technologies of Table 1 (RAPL,
//!   PowerInsight, BG/Q EMON) with their granularities and noise.
//! * [`cluster`] — a fleet of modules built from a
//!   [`vap_model::SystemSpec`], plus fleet-wide power operations.
//! * [`fleet`] — the same fleet in struct-of-arrays layout
//!   ([`fleet::FleetState`]): flat per-field columns and shared model
//!   tables for 10⁴–10⁶-module campaigns, bit-identical to [`cluster`]
//!   by construction (both call the same scalar kernels).
//! * [`scheduler`] — job-scheduler module-allocation policies (the paper
//!   notes performance "will depend significantly on the physical
//!   processors allocated").
//! * [`trace`] — time-series power traces and energy integration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod cpufreq;
pub mod dynamics;
pub mod fleet;
pub mod measurement;
pub mod module;
pub mod msr;
pub mod rapl;
pub mod scheduler;
pub mod trace;

pub use cluster::Cluster;
pub use cpufreq::Governor;
pub use fleet::FleetState;
pub use measurement::PowerSensor;
pub use module::{OperatingPoint, SimModule};
pub use rapl::{RaplLimit, RaplSteadyState};
pub use scheduler::{AllocationPolicy, Scheduler};
pub use trace::PowerTrace;
