//! Struct-of-arrays fleet state: the cache-friendly layout for
//! 10⁴–10⁶-module campaigns.
//!
//! [`crate::cluster::Cluster`] stores one [`SimModule`] per module — an
//! array-of-structs layout where a batch operation (program every cap,
//! resolve every operating point, advance every energy counter) strides
//! over ~400-byte records and drags the MSR register file, the serde
//! plumbing and the P-state table pointer of every module through cache.
//! [`FleetState`] transposes that: one flat column per field, shared
//! model/P-state tables, and batch loops that touch only the columns they
//! need.
//!
//! # Equivalence contract
//!
//! `FleetState` is **not** a reimplementation of the physics. Every
//! per-module computation calls the *same* scalar kernels the
//! array-of-structs path calls — [`rapl::steady_state`] for the RAPL
//! feedback step, [`vap_model::power::CpuPowerModel::power`] /
//! [`vap_model::power::CpuPowerModel::gated_power`] /
//! [`vap_model::power::DramPowerModel::power`] for the power oracles,
//! [`Governor::resolve`] for the cpufreq proposal, and
//! [`EnergyCounter::accumulate`] for the MSR counter quantization — in the
//! same order on the same values. The result is *bit-identical*, not
//! approximately equal, to driving a [`crate::cluster::Cluster`] through
//! the mirrored operation sequence; `tests/fleet_equiv.rs` in the
//! workspace root holds the differential suite that locks this down.
//!
//! The RAPL cap quantization (1/8 W power units, Y·2^Z time windows) is
//! preserved by round-tripping caps through
//! [`PowerLimitRegister::encode`]/[`PowerLimitRegister::decode`] — the
//! same pair of functions the per-module MSR file applies — without
//! materializing a register file per module.

use crate::cpufreq::Governor;
#[cfg(doc)]
use crate::module::SimModule;
use crate::module::OperatingPoint;
use crate::msr::{EnergyCounter, PowerLimitRegister};
use crate::rapl::{self, RaplLimit, RaplSteadyState};
use crate::cluster::{Cluster, ClusterError};
use std::sync::Arc;
use vap_model::power::{ModulePowerModel, PowerActivity};
use vap_model::pstate::PStateTable;
use vap_model::systems::SystemSpec;
use vap_model::thermal::{RackGradient, ThermalEnv};
use vap_model::units::{GigaHertz, Joules, Seconds, Watts};
use vap_model::variability::{DriftSkew, ModuleVariation};

/// A fleet of simulated modules in struct-of-arrays layout.
///
/// Columns are indexed by module id (`0..len()`); the shared system
/// tables (power model, P-state table) are stored once. See the module
/// docs for the equivalence contract with [`Cluster`].
#[derive(Debug, Clone)]
pub struct FleetState {
    spec: SystemSpec,
    /// One P-state table for the whole fleet (same hoist as
    /// [`Cluster::with_thermal`]).
    pstates: Arc<PStateTable>,
    power_model: ModulePowerModel,
    /// Base manufacturing fingerprints, sampled at "fabrication" time.
    variation: Vec<ModuleVariation>,
    /// Workload-specific fingerprint overrides (`None` = base applies).
    workload_variation: Vec<Option<ModuleVariation>>,
    /// Accumulated in-field drift per module (identity = pristine).
    drift: Vec<DriftSkew>,
    /// Cached drift-composed fingerprints (`None` while the module's skew
    /// is the identity), mirroring the `SimModule` cache bit-for-bit.
    drifted: Vec<Option<ModuleVariation>>,
    /// Precomputed [`ThermalEnv::factor`] per module. The factor is a pure
    /// function of the (immutable) thermal environment, so caching it is
    /// exact.
    thermal_factor: Vec<f64>,
    governor: Vec<Governor>,
    rapl_limit: Vec<Option<RaplLimit>>,
    activity: Vec<PowerActivity>,
    /// Resolved operating clock while ungated (column of
    /// [`OperatingPoint::clock`]).
    clock: Vec<GigaHertz>,
    /// Resolved run fraction (column of [`OperatingPoint::duty`]).
    duty: Vec<f64>,
    throttled: Vec<bool>,
    pkg_counter: Vec<EnergyCounter>,
    dram_counter: Vec<EnergyCounter>,
    pkg_energy: Vec<Joules>,
    dram_energy: Vec<Joules>,
}

impl FleetState {
    /// Build a fleet of `n` modules directly in columnar form,
    /// deterministically in `seed`.
    ///
    /// State-equivalent to `FleetState::from_cluster(&Cluster::with_size(
    /// spec, n, seed))` — same fingerprints, same initial operating
    /// points — without constructing `n` `SimModule` records.
    pub fn new(spec: SystemSpec, n: usize, seed: u64) -> Self {
        Self::with_thermal(spec, n, seed, None)
    }

    /// [`FleetState::new`] with an optional rack thermal gradient,
    /// mirroring [`Cluster::with_thermal`].
    pub fn with_thermal(
        spec: SystemSpec,
        n: usize,
        seed: u64,
        gradient: Option<RackGradient>,
    ) -> Self {
        let variation = spec.variability.sample_fleet(n, spec.cores_per_proc, seed);
        let thermal_factor: Vec<f64> = (0..n)
            .map(|i| {
                match gradient {
                    Some(g) => g.env_for(i, n),
                    None => ThermalEnv::reference(),
                }
                .factor()
            })
            .collect();
        let pstates = Arc::new(spec.pstates.clone());
        let power_model = spec.power_model;
        let mut fleet = FleetState {
            spec,
            pstates,
            power_model,
            variation,
            workload_variation: vec![None; n],
            drift: vec![DriftSkew::IDENTITY; n],
            drifted: vec![None; n],
            thermal_factor,
            governor: vec![Governor::Performance; n],
            rapl_limit: vec![None; n],
            activity: vec![PowerActivity::IDLE; n],
            clock: vec![GigaHertz::ZERO; n],
            duty: vec![1.0; n],
            throttled: vec![false; n],
            pkg_counter: vec![EnergyCounter::default(); n],
            dram_counter: vec![EnergyCounter::default(); n],
            pkg_energy: vec![Joules::ZERO; n],
            dram_energy: vec![Joules::ZERO; n],
        };
        fleet.resolve_all();
        fleet
    }

    /// Transpose an existing [`Cluster`] into columnar form, preserving
    /// every module's full state (fingerprints, caps, governors, resolved
    /// operating points, energy counters) exactly.
    pub fn from_cluster(cluster: &Cluster) -> Self {
        let n = cluster.len();
        let spec = cluster.spec().clone();
        let pstates = Arc::new(spec.pstates.clone());
        let power_model = spec.power_model;
        let mut fleet = FleetState {
            spec,
            pstates,
            power_model,
            variation: Vec::with_capacity(n),
            workload_variation: Vec::with_capacity(n),
            drift: Vec::with_capacity(n),
            drifted: Vec::with_capacity(n),
            thermal_factor: Vec::with_capacity(n),
            governor: Vec::with_capacity(n),
            rapl_limit: Vec::with_capacity(n),
            activity: Vec::with_capacity(n),
            clock: Vec::with_capacity(n),
            duty: Vec::with_capacity(n),
            throttled: Vec::with_capacity(n),
            pkg_counter: Vec::with_capacity(n),
            dram_counter: Vec::with_capacity(n),
            pkg_energy: Vec::with_capacity(n),
            dram_energy: Vec::with_capacity(n),
        };
        for m in cluster.modules() {
            fleet.variation.push(m.base_variation().clone());
            fleet.workload_variation.push(m.workload_variation().cloned());
            let skew = *m.drift_skew();
            // recompute the cache with the same `skewed` kernel the module
            // used, so the transpose stays bit-identical
            fleet.drifted.push(if skew.is_identity() {
                None
            } else {
                Some(m.workload_variation().unwrap_or(m.base_variation()).skewed(&skew))
            });
            fleet.drift.push(skew);
            fleet.thermal_factor.push(m.thermal().factor());
            fleet.governor.push(m.governor());
            fleet.rapl_limit.push(m.cap());
            fleet.activity.push(m.activity());
            fleet.clock.push(m.operating_point().clock);
            fleet.duty.push(m.operating_point().duty);
            fleet.throttled.push(m.rapl_throttled());
            fleet.pkg_counter.push(m.pkg_counter());
            fleet.dram_counter.push(m.dram_counter());
            fleet.pkg_energy.push(m.pkg_energy());
            fleet.dram_energy.push(m.dram_energy());
        }
        fleet
    }

    /// The system this fleet instantiates.
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// The shared P-state table.
    pub fn pstates(&self) -> &PStateTable {
        &self.pstates
    }

    /// Number of modules.
    pub fn len(&self) -> usize {
        self.variation.len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.variation.is_empty()
    }

    /// The fingerprint in effect on module `i` (workload override if
    /// installed, else base, composed with any accumulated drift) —
    /// column analogue of [`SimModule::variation`].
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn variation(&self, i: usize) -> &ModuleVariation {
        self.drifted[i]
            .as_ref()
            .or(self.workload_variation[i].as_ref())
            .unwrap_or(&self.variation[i])
    }

    /// The base (PVT-microbenchmark) fingerprint of module `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn base_variation(&self, i: usize) -> &ModuleVariation {
        &self.variation[i]
    }

    /// Install (or clear) a workload-specific fingerprint override on
    /// module `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn set_workload_variation(&mut self, i: usize, v: Option<ModuleVariation>) {
        self.workload_variation[i] = v;
        self.refresh_drift(i);
        self.resolve(i);
    }

    /// The accumulated in-field drift on module `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn drift_skew(&self, i: usize) -> &DriftSkew {
        &self.drift[i]
    }

    /// Set module `i`'s accumulated drift (absolute skew), mirroring
    /// [`SimModule::set_drift_skew`].
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn set_drift_skew(&mut self, i: usize, skew: DriftSkew) {
        self.drift[i] = skew;
        self.refresh_drift(i);
        self.resolve(i);
    }

    /// Compose one more drift step onto module `i`'s accumulated skew.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn apply_drift(&mut self, i: usize, step: &DriftSkew) {
        self.set_drift_skew(i, self.drift[i].compose(step));
    }

    /// Swap fresh silicon into slot `i`, mirroring
    /// [`SimModule::replace_silicon`]: new base fingerprint, no drift, no
    /// workload override, zeroed energy counters; slot-level settings
    /// (governor, cap, activity, thermal) stay programmed.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn replace_silicon(&mut self, i: usize, variation: ModuleVariation) {
        self.variation[i] = variation;
        self.workload_variation[i] = None;
        self.drift[i] = DriftSkew::IDENTITY;
        self.drifted[i] = None;
        self.pkg_counter[i] = EnergyCounter::default();
        self.dram_counter[i] = EnergyCounter::default();
        self.pkg_energy[i] = Joules::ZERO;
        self.dram_energy[i] = Joules::ZERO;
        self.resolve(i);
    }

    /// Recompute the cached drift-composed fingerprint of module `i` —
    /// the same refresh rule as the private `SimModule` cache.
    fn refresh_drift(&mut self, i: usize) {
        self.drifted[i] = if self.drift[i].is_identity() {
            None
        } else {
            let active = self.workload_variation[i].as_ref().unwrap_or(&self.variation[i]);
            Some(active.skewed(&self.drift[i]))
        };
    }

    /// Current workload activity on module `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn activity(&self, i: usize) -> PowerActivity {
        self.activity[i]
    }

    /// Set the workload activity factors on module `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn set_activity(&mut self, i: usize, activity: PowerActivity) {
        self.activity[i] = activity;
        self.resolve(i);
    }

    /// The cpufreq governor installed on module `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn governor(&self, i: usize) -> Governor {
        self.governor[i]
    }

    /// Install a cpufreq governor on module `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn set_governor(&mut self, i: usize, governor: Governor) {
        self.governor[i] = governor;
        self.resolve(i);
    }

    /// Program a RAPL cap on module `i`, with the same 1/8-W MSR
    /// quantization as [`SimModule::set_cap`] (the cap round-trips through
    /// the register encoding; no register file is materialized).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn set_cap(&mut self, i: usize, limit: RaplLimit) {
        let reg = PowerLimitRegister {
            limit: limit.cap,
            enabled: true,
            clamp: true,
            window: limit.window,
        };
        let quantized = PowerLimitRegister::decode(reg.encode());
        self.rapl_limit[i] = Some(RaplLimit { cap: quantized.limit, window: quantized.window });
        self.resolve(i);
    }

    /// Remove any RAPL cap from module `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn clear_cap(&mut self, i: usize) {
        self.rapl_limit[i] = None;
        self.resolve(i);
    }

    /// The programmed cap on module `i`, if any.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn cap(&self, i: usize) -> Option<RaplLimit> {
        self.rapl_limit[i]
    }

    /// The resolved operating point of module `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn operating_point(&self, i: usize) -> OperatingPoint {
        OperatingPoint { clock: self.clock[i], duty: self.duty[i] }
    }

    /// Whether RAPL is actively limiting module `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn rapl_throttled(&self, i: usize) -> bool {
        self.throttled[i]
    }

    /// Lifetime package energy of module `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn pkg_energy(&self, i: usize) -> Joules {
        self.pkg_energy[i]
    }

    /// Lifetime DRAM energy of module `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn dram_energy(&self, i: usize) -> Joules {
        self.dram_energy[i]
    }

    /// Put the same workload activity on every module (an SPMD job).
    pub fn set_activity_all(&mut self, activity: PowerActivity) {
        for i in 0..self.len() {
            self.activity[i] = activity;
            self.resolve(i);
        }
    }

    /// Program the same RAPL cap on every module (the Naive / Pc schemes).
    pub fn set_uniform_cap(&mut self, limit: RaplLimit) {
        for i in 0..self.len() {
            self.set_cap(i, limit);
        }
    }

    /// Program per-module RAPL caps (the VaPc scheme); mirrors
    /// [`Cluster::set_caps`].
    pub fn set_caps(&mut self, caps: &[Watts]) -> Result<(), ClusterError> {
        if caps.len() != self.len() {
            return Err(ClusterError::LengthMismatch { expected: self.len(), got: caps.len() });
        }
        for (i, &c) in caps.iter().enumerate() {
            self.set_cap(i, RaplLimit::with_default_window(c));
        }
        Ok(())
    }

    /// Pin per-module frequencies through the userspace governor (the VaFs
    /// scheme); mirrors [`Cluster::set_frequencies`].
    pub fn set_frequencies(&mut self, freqs: &[GigaHertz]) -> Result<(), ClusterError> {
        if freqs.len() != self.len() {
            return Err(ClusterError::LengthMismatch { expected: self.len(), got: freqs.len() });
        }
        for (i, &f) in freqs.iter().enumerate() {
            self.set_governor(i, Governor::Userspace(f));
        }
        Ok(())
    }

    /// Remove all caps and restore the performance governor.
    pub fn uncap_all(&mut self) {
        for i in 0..self.len() {
            self.rapl_limit[i] = None;
            self.governor[i] = Governor::Performance;
            self.resolve(i);
        }
    }

    /// Ground-truth CPU (package) power of module `i` — the same
    /// duty-weighted run/gated blend as [`SimModule::cpu_power`].
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn cpu_power(&self, i: usize) -> Watts {
        let v = self.variation(i);
        let run =
            self.power_model.cpu.power(self.clock[i], self.activity[i].cpu, v, self.thermal_factor[i]);
        if self.duty[i] >= 1.0 {
            run
        } else {
            let gated = self.power_model.cpu.gated_power(v, self.thermal_factor[i]);
            run * self.duty[i] + gated * (1.0 - self.duty[i])
        }
    }

    /// Ground-truth DRAM power of module `i` (duty-weighted traffic,
    /// always-on standby), as in [`SimModule::dram_power`].
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn dram_power(&self, i: usize) -> Watts {
        self.power_model.dram.power(self.clock[i], self.activity[i].dram * self.duty[i], self.variation(i))
    }

    /// Ground-truth module (CPU + DRAM) power of module `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn module_power(&self, i: usize) -> Watts {
        self.cpu_power(i) + self.dram_power(i)
    }

    /// Module power *predicted from the base PVT fingerprint* at the
    /// current operating point — column analogue of
    /// [`SimModule::pvt_predicted_power`]. Workload overrides and
    /// accumulated drift are deliberately ignored: the residual against
    /// [`FleetState::module_power`] is what the drift detector watches.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn pvt_predicted_power(&self, i: usize) -> Watts {
        let base = &self.variation[i];
        let run =
            self.power_model.cpu.power(self.clock[i], self.activity[i].cpu, base, self.thermal_factor[i]);
        let cpu = if self.duty[i] >= 1.0 {
            run
        } else {
            let gated = self.power_model.cpu.gated_power(base, self.thermal_factor[i]);
            run * self.duty[i] + gated * (1.0 - self.duty[i])
        };
        cpu + self.power_model.dram.power(self.clock[i], self.activity[i].dram * self.duty[i], base)
    }

    /// Per-module CPU powers (batch analogue of [`Cluster::cpu_powers`]).
    pub fn cpu_powers(&self) -> Vec<Watts> {
        (0..self.len()).map(|i| self.cpu_power(i)).collect()
    }

    /// Per-module DRAM powers.
    pub fn dram_powers(&self) -> Vec<Watts> {
        (0..self.len()).map(|i| self.dram_power(i)).collect()
    }

    /// Per-module module (CPU+DRAM) powers.
    pub fn module_powers(&self) -> Vec<Watts> {
        (0..self.len()).map(|i| self.module_power(i)).collect()
    }

    /// Current duty-weighted effective frequencies.
    pub fn effective_frequencies(&self) -> Vec<GigaHertz> {
        (0..self.len()).map(|i| self.operating_point(i).effective_frequency()).collect()
    }

    /// Total fleet power right now.
    pub fn total_power(&self) -> Watts {
        (0..self.len()).map(|i| self.module_power(i)).sum()
    }

    /// Per-module telemetry in module-id order, field-identical to
    /// [`Cluster::telemetry`].
    pub fn telemetry(&self) -> Vec<vap_obs::ModuleSample> {
        (0..self.len())
            .map(|i| vap_obs::ModuleSample {
                id: i as u64,
                power_w: self.module_power(i).value(),
                freq_ghz: self.operating_point(i).effective_frequency().value(),
                cap_w: self.rapl_limit[i].map(|l| l.cap.value()),
                duty: self.duty[i],
                throttled: self.throttled[i],
            })
            .collect()
    }

    /// Advance every module by `dt`: the flat batch loop over the energy
    /// columns, with the same counter quantization as [`SimModule::step`].
    pub fn step_all(&mut self, dt: Seconds) {
        for i in 0..self.len() {
            let pkg = self.cpu_power(i) * dt;
            let dram = self.dram_power(i) * dt;
            self.pkg_energy[i] += pkg;
            self.dram_energy[i] += dram;
            self.pkg_counter[i].accumulate(pkg);
            self.dram_counter[i].accumulate(dram);
        }
    }

    /// Measure module `i`'s `(pkg, dram)` average power pinned at `f`
    /// through the RAPL energy-counter protocol — the columnar analogue of
    /// `vap-core`'s `measure_module_snapshot`, which clones the module,
    /// uncaps it, pins the userspace governor and averages ten 10 ms
    /// steps through [`crate::measurement::RaplEnergyMeter`].
    ///
    /// Here the transient state lives in two local [`EnergyCounter`]
    /// copies instead of a cloned module, so the sweep allocates nothing
    /// per module; the arithmetic (counter quantization included) is
    /// identical, and `&self` guarantees the fleet is untouched.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn measure_anchors(&self, i: usize, f: GigaHertz) -> (Watts, Watts) {
        // Uncapped + userspace governor resolve to: clock = floor(f),
        // duty 1.0, no throttle (the governor proposes, no cap contests).
        let clock = self.pstates.floor(f);
        let v = self.variation(i);
        let act = self.activity[i];
        let cpu = self.power_model.cpu.power(clock, act.cpu, v, self.thermal_factor[i]);
        let dram = self.power_model.dram.power(clock, act.dram, v);
        let mut pkg_counter = self.pkg_counter[i];
        let mut dram_counter = self.dram_counter[i];
        let pkg_before = pkg_counter.raw();
        let dram_before = dram_counter.raw();
        let dt = Seconds::from_millis(10.0);
        for _ in 0..10 {
            pkg_counter.accumulate(cpu * dt);
            dram_counter.accumulate(dram * dt);
        }
        let elapsed = Seconds(0.1);
        (
            EnergyCounter::delta(pkg_before, pkg_counter.raw()) / elapsed,
            EnergyCounter::delta(dram_before, dram_counter.raw()) / elapsed,
        )
    }

    /// Recompute the operating point of module `i` from governor + cap +
    /// activity: the same min-wise composition as the private
    /// `SimModule::resolve`, over the columns.
    fn resolve(&mut self, i: usize) {
        let gov_clock = self.governor[i].resolve(&self.pstates);
        let (clock, duty, throttled) = match self.rapl_limit[i] {
            None => (gov_clock, 1.0, false),
            Some(limit) => {
                let v = self.variation(i);
                let s = rapl::steady_state(
                    limit.cap,
                    &self.power_model.cpu,
                    self.activity[i].cpu,
                    v,
                    self.thermal_factor[i],
                    &self.pstates,
                );
                match s {
                    RaplSteadyState::Unconstrained { .. } => (gov_clock, 1.0, false),
                    RaplSteadyState::Dvfs { freq } => {
                        let binding = freq < gov_clock;
                        (freq.min(gov_clock), 1.0, binding)
                    }
                    RaplSteadyState::ClockModulated { duty, .. } => {
                        (self.pstates.f_min().min(gov_clock), duty, true)
                    }
                }
            }
        };
        self.clock[i] = clock;
        self.duty[i] = duty;
        self.throttled[i] = throttled;
    }

    fn resolve_all(&mut self) {
        for i in 0..self.len() {
            self.resolve(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vap_model::systems::SystemSpec;

    fn busy() -> PowerActivity {
        PowerActivity { cpu: 1.0, dram: 0.25 }
    }

    /// Drive a Cluster and a FleetState through the same op sequence and
    /// assert bit-identical observable state. The heavyweight differential
    /// suite lives in `tests/fleet_equiv.rs`; this is the in-crate smoke.
    fn assert_mirrors(cluster: &Cluster, fleet: &FleetState) {
        assert_eq!(cluster.len(), fleet.len());
        for (i, m) in cluster.modules().iter().enumerate() {
            assert_eq!(m.operating_point(), fleet.operating_point(i), "module {i} op");
            assert_eq!(m.cap(), fleet.cap(i), "module {i} cap");
            assert_eq!(m.rapl_throttled(), fleet.rapl_throttled(i), "module {i} throttle");
            assert_eq!(m.cpu_power(), fleet.cpu_power(i), "module {i} cpu power");
            assert_eq!(m.dram_power(), fleet.dram_power(i), "module {i} dram power");
            assert_eq!(m.pkg_energy(), fleet.pkg_energy(i), "module {i} pkg energy");
            assert_eq!(m.dram_energy(), fleet.dram_energy(i), "module {i} dram energy");
        }
    }

    #[test]
    fn fresh_fleet_matches_fresh_cluster_bitwise() {
        let spec = SystemSpec::ha8k();
        let cluster = Cluster::with_size(spec.clone(), 24, 42);
        let fleet = FleetState::new(spec, 24, 42);
        for (i, m) in cluster.modules().iter().enumerate() {
            assert_eq!(m.base_variation(), fleet.base_variation(i));
        }
        assert_mirrors(&cluster, &fleet);
    }

    #[test]
    fn from_cluster_preserves_mid_campaign_state() {
        let spec = SystemSpec::ha8k();
        let mut cluster = Cluster::with_size(spec, 16, 7);
        cluster.set_activity_all(busy());
        cluster.set_uniform_cap(RaplLimit::with_default_window(Watts(68.25)));
        cluster.step_all(Seconds::from_millis(3.0));
        let fleet = FleetState::from_cluster(&cluster);
        assert_mirrors(&cluster, &fleet);
    }

    #[test]
    fn mirrored_op_sequence_stays_bit_identical() {
        let spec = SystemSpec::ha8k();
        let mut cluster = Cluster::with_size(spec.clone(), 12, 3);
        let mut fleet = FleetState::new(spec, 12, 3);
        cluster.set_activity_all(busy());
        fleet.set_activity_all(busy());
        cluster.set_uniform_cap(RaplLimit::with_default_window(Watts(77.3)));
        fleet.set_uniform_cap(RaplLimit::with_default_window(Watts(77.3)));
        cluster.step_all(Seconds::from_millis(10.0));
        fleet.step_all(Seconds::from_millis(10.0));
        assert_mirrors(&cluster, &fleet);

        let caps: Vec<Watts> = (0..12).map(|i| Watts(50.0 + 2.5 * i as f64)).collect();
        cluster.set_caps(&caps).unwrap();
        fleet.set_caps(&caps).unwrap();
        cluster.step_all(Seconds::from_millis(1.0));
        fleet.step_all(Seconds::from_millis(1.0));
        assert_mirrors(&cluster, &fleet);

        cluster.uncap_all();
        fleet.uncap_all();
        let freqs: Vec<GigaHertz> = (0..12).map(|i| GigaHertz(1.2 + 0.1 * i as f64)).collect();
        cluster.set_frequencies(&freqs).unwrap();
        fleet.set_frequencies(&freqs).unwrap();
        assert_mirrors(&cluster, &fleet);
        assert_eq!(cluster.total_power(), fleet.total_power());
        assert_eq!(cluster.effective_frequencies(), fleet.effective_frequencies());
    }

    #[test]
    fn telemetry_matches_cluster_field_for_field() {
        let spec = SystemSpec::ha8k();
        let mut cluster = Cluster::with_size(spec, 8, 11);
        cluster.set_activity_all(busy());
        cluster.set_uniform_cap(RaplLimit::with_default_window(Watts(60.0)));
        let fleet = FleetState::from_cluster(&cluster);
        let a = cluster.telemetry();
        let b = fleet.telemetry();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.power_w, y.power_w);
            assert_eq!(x.freq_ghz, y.freq_ghz);
            assert_eq!(x.cap_w, y.cap_w);
            assert_eq!(x.duty, y.duty);
            assert_eq!(x.throttled, y.throttled);
        }
    }

    #[test]
    fn drift_and_churn_mirror_cluster_bitwise() {
        let spec = SystemSpec::ha8k();
        let mut cluster = Cluster::with_size(spec.clone(), 10, 21);
        let mut fleet = FleetState::new(spec, 10, 21);
        cluster.set_activity_all(busy());
        fleet.set_activity_all(busy());
        cluster.set_uniform_cap(RaplLimit::with_default_window(Watts(80.0)));
        fleet.set_uniform_cap(RaplLimit::with_default_window(Watts(80.0)));

        let hot = DriftSkew { dynamic: 1.07, leakage: 1.2, dram: 1.03 };
        for i in [1usize, 4, 7] {
            cluster.apply_drift(i, &hot);
            fleet.apply_drift(i, &hot);
        }
        assert_mirrors(&cluster, &fleet);
        for i in 0..cluster.len() {
            assert_eq!(
                cluster.module(i).pvt_predicted_power(),
                fleet.pvt_predicted_power(i),
                "module {i} stale-PVT prediction"
            );
            assert_eq!(cluster.module(i).drift_skew(), fleet.drift_skew(i));
        }
        // drifted modules genuinely overshoot their stale prediction
        let residual = fleet.module_power(4) - fleet.pvt_predicted_power(4);
        assert!(residual > Watts(1.0), "drift residual {residual}");

        // the transpose preserves drift state exactly
        assert_mirrors(&cluster, &FleetState::from_cluster(&cluster));

        // replacement churn: fresh silicon in slot 4, both layouts
        let v = {
            let s = cluster.spec();
            s.variability.sample_replacement(4, s.cores_per_proc, 99)
        };
        cluster.replace_silicon(4, v.clone());
        fleet.replace_silicon(4, v);
        cluster.step_all(Seconds::from_millis(5.0));
        fleet.step_all(Seconds::from_millis(5.0));
        assert_mirrors(&cluster, &fleet);
        assert!(fleet.drift_skew(4).is_identity());
    }

    #[test]
    fn measure_anchors_matches_the_meter_protocol_and_leaves_state_alone() {
        let spec = SystemSpec::ha8k();
        let mut cluster = Cluster::with_size(spec, 6, 9);
        cluster.set_activity_all(busy());
        // pre-age the counters so the residual paths are exercised
        cluster.step_all(Seconds::from_millis(7.0));
        let fleet = FleetState::from_cluster(&cluster);
        let f = cluster.spec().pstates.f_max();
        for i in 0..cluster.len() {
            // reference protocol: clone, uncap, pin, meter over 10×10 ms
            let mut probe = cluster.module(i).clone();
            probe.clear_cap();
            probe.set_governor(Governor::Userspace(f));
            let meter = crate::measurement::RaplEnergyMeter::begin(&probe);
            for _ in 0..10 {
                probe.step(Seconds::from_millis(10.0));
            }
            let (pkg, dram) = meter.end(&probe, Seconds(0.1));
            let (pkg2, dram2) = fleet.measure_anchors(i, f);
            assert_eq!(pkg, pkg2, "module {i} pkg");
            assert_eq!(dram, dram2, "module {i} dram");
        }
        // &self measurement left the fleet untouched
        assert_mirrors(&cluster, &fleet);
    }

    #[test]
    fn mismatched_vectors_are_rejected() {
        let mut fleet = FleetState::new(SystemSpec::ha8k(), 4, 1);
        assert_eq!(
            fleet.set_caps(&[Watts(50.0); 3]),
            Err(ClusterError::LengthMismatch { expected: 4, got: 3 })
        );
        assert_eq!(
            fleet.set_frequencies(&[GigaHertz(1.5); 5]),
            Err(ClusterError::LengthMismatch { expected: 4, got: 5 })
        );
        assert!(!fleet.is_empty());
    }
}
