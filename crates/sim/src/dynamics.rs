//! Time-stepped RAPL co-simulation.
//!
//! The campaign experiments use the *analytic* steady state of
//! [`crate::rapl::steady_state`] — justified because RAPL's control loop
//! converges within milliseconds while application regions run for
//! minutes. This module is the justification's receipts: it steps a
//! module through the actual feedback loop (measure window average →
//! throttle/unthrottle one P-state, or adjust the modulation duty) and
//! records the power/frequency trajectory, so convergence time and
//! steady-state agreement can be measured rather than assumed.
//!
//! It also powers the `rapl_dynamics` example and the window-length
//! ablation bench.

use crate::module::SimModule;
use crate::rapl::{self, RaplController, RaplDecision, RaplLimit, MIN_DUTY};
use crate::trace::{PowerTrace, TraceError};
use serde::{Deserialize, Serialize};
use vap_model::units::{GigaHertz, Seconds, Watts};

/// Why a dynamics run could not start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DynamicsError {
    /// The control interval is not a positive, finite duration.
    InvalidInterval(TraceError),
    /// Zero control intervals were requested.
    NoSteps,
}

impl std::fmt::Display for DynamicsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynamicsError::InvalidInterval(_) => write!(f, "invalid control interval"),
            DynamicsError::NoSteps => write!(f, "need at least one control interval"),
        }
    }
}

impl std::error::Error for DynamicsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DynamicsError::InvalidInterval(e) => Some(e),
            DynamicsError::NoSteps => None,
        }
    }
}

/// Outcome of a dynamic enforcement run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicsResult {
    /// Package power per control interval.
    pub power: PowerTrace,
    /// Effective (duty-weighted) clock frequency per control interval.
    pub freq: Vec<GigaHertz>,
    /// Modulation duty per control interval.
    pub duty: Vec<f64>,
    /// First interval index at which the operating point stopped changing
    /// for the rest of the run; `None` if it never settled.
    pub settled_at: Option<usize>,
}

impl DynamicsResult {
    /// Time to convergence, if the loop settled.
    pub fn settling_time(&self) -> Option<Seconds> {
        self.settled_at.map(|i| self.power.dt() * i as f64)
    }

    /// Mean power over the final quarter of the run (the converged
    /// regime).
    pub fn converged_power(&self) -> Watts {
        let s = self.power.samples();
        let tail = &s[s.len() - s.len() / 4 - 1..];
        tail.iter().copied().sum::<Watts>() / tail.len() as f64
    }

    /// Mean frequency over the final quarter of the run.
    pub fn converged_frequency(&self) -> GigaHertz {
        let tail = &self.freq[self.freq.len() - self.freq.len() / 4 - 1..];
        GigaHertz(tail.iter().map(|f| f.value()).sum::<f64>() / tail.len() as f64)
    }
}

/// Step `module` under `limit` for `steps` control intervals of `dt`,
/// running the real feedback loop instead of the analytic solve.
///
/// The module's cap is *not* installed through [`SimModule::set_cap`]
/// (which would jump straight to the steady state); instead the governor
/// is driven interval by interval the way RAPL firmware drives P-states.
pub fn enforce(
    module: &mut SimModule,
    limit: RaplLimit,
    dt: Seconds,
    steps: usize,
) -> Result<DynamicsResult, DynamicsError> {
    if steps == 0 {
        return Err(DynamicsError::NoSteps);
    }
    let pstates = module.pstates().clone();
    let mut controller = RaplController::new(limit);
    let mut clock = pstates.uncapped();
    let mut duty = 1.0f64;

    let mut power = PowerTrace::new(dt).map_err(DynamicsError::InvalidInterval)?;
    let mut freq = Vec::with_capacity(steps);
    let mut duties = Vec::with_capacity(steps);
    let mut last_change = 0usize;

    for step in 0..steps {
        // pin the trial operating point through the governor
        module.set_governor(crate::cpufreq::Governor::Userspace(clock));
        let p_run = module.cpu_power();
        let p_gated = module
            .power_model()
            .cpu
            .gated_power(module.variation(), module.thermal().factor());
        let p_avg = p_run * duty + p_gated * (1.0 - duty);

        power.record(p_avg);
        freq.push(GigaHertz(clock.value() * duty));
        duties.push(duty);
        module.step(dt);

        controller.observe(p_avg, dt);
        let before = (clock, duty);
        match controller.decide() {
            RaplDecision::Throttle => {
                if duty < 1.0 || pstates.step_down(clock).is_none() {
                    // already at the bottom P-state: deepen modulation
                    duty = (duty - MIN_DUTY).max(MIN_DUTY);
                    clock = pstates.f_min();
                } else if let Some(f) = pstates.step_down(clock) {
                    clock = f;
                }
            }
            RaplDecision::Unthrottle => {
                if duty < 1.0 {
                    duty = (duty + MIN_DUTY).min(1.0);
                } else if let Some(f) = pstates.step_up(clock) {
                    // only step up if the new point would still respect
                    // the cap (mirrors hardware's guard band)
                    module.set_governor(crate::cpufreq::Governor::Userspace(f));
                    if module.cpu_power() <= limit.cap {
                        clock = f;
                    }
                    module.set_governor(crate::cpufreq::Governor::Userspace(clock));
                }
            }
            RaplDecision::Hold => {}
        }
        if (clock, duty) != before {
            last_change = step + 1;
        }
    }
    module.set_governor(crate::cpufreq::Governor::Performance);

    let settled_at = if last_change < steps { Some(last_change) } else { None };
    Ok(DynamicsResult { power, freq, duty: duties, settled_at })
}

/// Compare the dynamic loop's converged operating point against the
/// analytic steady state; returns `(analytic_freq, dynamic_freq)`
/// (effective, duty-weighted).
pub fn validate_against_steady_state(
    module: &mut SimModule,
    limit: RaplLimit,
    dt: Seconds,
    steps: usize,
) -> Result<(GigaHertz, GigaHertz), DynamicsError> {
    let analytic = rapl::steady_state(
        limit.cap,
        &module.power_model().cpu,
        module.activity().cpu,
        &module.variation().clone(),
        module.thermal().factor(),
        module.pstates(),
    )
    .effective_frequency(module.pstates());
    let dynamic = enforce(module, limit, dt, steps)?.converged_frequency();
    Ok((analytic, dynamic))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vap_model::power::PowerActivity;
    use vap_model::systems::SystemSpec;
    use vap_model::thermal::ThermalEnv;
    use vap_model::variability::ModuleVariation;

    fn busy_module() -> SimModule {
        let spec = SystemSpec::ha8k();
        let mut m = SimModule::new(
            0,
            ModuleVariation::nominal(0, 12),
            spec.power_model,
            spec.pstates,
            ThermalEnv::reference(),
        );
        m.set_activity(PowerActivity { cpu: 1.0, dram: 0.28 });
        m
    }

    #[test]
    fn loop_converges_fast_and_respects_the_cap() {
        let mut m = busy_module();
        let limit = RaplLimit::with_default_window(Watts(70.0));
        let r = enforce(&mut m, limit, Seconds::from_millis(1.0), 500).unwrap();
        // settles within tens of control intervals (tens of ms)
        let settle = r.settling_time().expect("loop should settle");
        assert!(settle.millis() < 100.0, "settled after {settle:?}");
        // converged power at-or-under the cap
        assert!(r.converged_power() <= Watts(70.0) + Watts(0.5), "{}", r.converged_power());
        // but close to it (no sandbagging)
        assert!(r.converged_power() > Watts(60.0));
    }

    #[test]
    fn dynamic_matches_analytic_steady_state_within_one_pstate() {
        let mut m = busy_module();
        for cap_w in [95.0, 80.0, 65.0, 55.0] {
            let limit = RaplLimit::with_default_window(Watts(cap_w));
            let (analytic, dynamic) =
                validate_against_steady_state(&mut m, limit, Seconds::from_millis(1.0), 400)
                    .unwrap();
            assert!(
                (analytic.value() - dynamic.value()).abs() <= 0.11,
                "cap {cap_w} W: analytic {analytic:.3} GHz vs dynamic {dynamic:.3} GHz"
            );
        }
    }

    #[test]
    fn sub_fmin_cap_drives_duty_modulation_dynamically() {
        let mut m = busy_module();
        let limit = RaplLimit::with_default_window(Watts(40.0));
        let r = enforce(&mut m, limit, Seconds::from_millis(1.0), 600).unwrap();
        let final_duty = *r.duty.last().unwrap();
        assert!(final_duty < 1.0, "expected modulation, duty = {final_duty}");
        assert!(r.converged_power() <= Watts(41.0));
        // effective frequency below f_min
        assert!(r.converged_frequency().value() < 1.2);
    }

    #[test]
    fn generous_cap_never_throttles() {
        let mut m = busy_module();
        let limit = RaplLimit::with_default_window(Watts(150.0));
        let r = enforce(&mut m, limit, Seconds::from_millis(1.0), 100).unwrap();
        assert!(r.freq.iter().all(|f| (f.value() - 2.7).abs() < 1e-9));
        assert_eq!(r.settled_at, Some(0));
    }

    #[test]
    fn trace_is_fully_recorded() {
        let mut m = busy_module();
        let r = enforce(&mut m, RaplLimit::with_default_window(Watts(70.0)),
                        Seconds::from_millis(1.0), 123).unwrap();
        assert_eq!(r.power.len(), 123);
        assert_eq!(r.freq.len(), 123);
        assert_eq!(r.duty.len(), 123);
        assert_eq!(r.power.duration(), Seconds(0.123));
    }

    #[test]
    fn bad_arguments_are_errors_not_panics() {
        let mut m = busy_module();
        let limit = RaplLimit::with_default_window(Watts(70.0));
        assert_eq!(
            enforce(&mut m, limit, Seconds::from_millis(1.0), 0),
            Err(DynamicsError::NoSteps)
        );
        let err = enforce(&mut m, limit, Seconds(0.0), 10).unwrap_err();
        assert!(matches!(err, DynamicsError::InvalidInterval(_)));
        // the error chain names the offending interval
        let source = std::error::Error::source(&err).expect("chained cause");
        assert!(source.to_string().contains("sampling interval"));
        assert!(
            validate_against_steady_state(&mut m, limit, Seconds(-1.0), 10).is_err()
        );
    }

    #[test]
    fn module_is_restored_after_enforcement() {
        let mut m = busy_module();
        let _ = enforce(&mut m, RaplLimit::with_default_window(Watts(60.0)),
                        Seconds::from_millis(1.0), 50).unwrap();
        assert_eq!(m.operating_point().clock, GigaHertz(2.7));
    }
}
