//! Time-series power traces.
//!
//! A [`PowerTrace`] records equally spaced power samples and supports the
//! integrations the experiments need: total energy, interval averages, and
//! peak detection. Traces back the dynamic-RAPL validation experiments and
//! the total-power accounting of Fig. 9.

use serde::{Deserialize, Serialize};
use vap_model::units::{Joules, Seconds, Watts};

/// A rejected trace configuration: the sampling interval must be a
/// positive, finite duration for the integrations to make sense.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceError {
    /// The rejected sampling interval.
    pub dt: Seconds,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sampling interval must be positive and finite, got {}", self.dt)
    }
}

impl std::error::Error for TraceError {}

/// An equally sampled power time series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerTrace {
    dt: Seconds,
    samples: Vec<Watts>,
}

impl PowerTrace {
    /// Create an empty trace sampled every `dt`. Rejects non-positive and
    /// non-finite intervals instead of panicking, so callers fed from
    /// config files or CLI flags get a recoverable error.
    pub fn new(dt: Seconds) -> Result<Self, TraceError> {
        if dt.value() > 0.0 && dt.value().is_finite() {
            Ok(PowerTrace { dt, samples: Vec::new() })
        } else {
            Err(TraceError { dt })
        }
    }

    /// Sampling interval.
    pub fn dt(&self) -> Seconds {
        self.dt
    }

    /// Record one sample.
    pub fn record(&mut self, p: Watts) {
        self.samples.push(p);
    }

    /// All samples.
    pub fn samples(&self) -> &[Watts] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total traced duration.
    pub fn duration(&self) -> Seconds {
        self.dt * self.samples.len() as f64
    }

    /// Total energy (rectangle rule — exact for the piecewise-constant
    /// power the simulator produces).
    pub fn energy(&self) -> Joules {
        self.samples.iter().map(|&p| p * self.dt).sum()
    }

    /// Mean power over the whole trace. `None` if empty.
    pub fn average(&self) -> Option<Watts> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().copied().sum::<Watts>() / self.samples.len() as f64)
        }
    }

    /// Peak power. `None` if empty.
    pub fn peak(&self) -> Option<Watts> {
        self.samples.iter().copied().reduce(Watts::max)
    }

    /// Rolling average over a window of `w` seconds, evaluated at each
    /// sample — what a RAPL-style limiter "sees". Windows are truncated at
    /// the start of the trace.
    pub fn rolling_average(&self, w: Seconds) -> Vec<Watts> {
        let win = ((w.value() / self.dt.value()).round() as usize).max(1);
        let mut out = Vec::with_capacity(self.samples.len());
        let mut acc = Watts::ZERO;
        for (i, &p) in self.samples.iter().enumerate() {
            acc += p;
            if i >= win {
                acc -= self.samples[i - win];
            }
            out.push(acc / win.min(i + 1) as f64);
        }
        out
    }

    /// Fraction of samples whose rolling average exceeds `cap` — the
    /// constraint-violation check used by the Fig. 9 power accounting.
    // vap:allow(unit-flow): a fraction of samples is dimensionless
    pub fn violation_fraction(&self, cap: Watts, window: Seconds) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let rolled = self.rolling_average(window);
        rolled.iter().filter(|&&p| p > cap).count() as f64 / rolled.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_of(vals: &[f64]) -> PowerTrace {
        let mut t = PowerTrace::new(Seconds(0.001)).unwrap();
        for &v in vals {
            t.record(Watts(v));
        }
        t
    }

    #[test]
    fn energy_and_average() {
        let t = trace_of(&[100.0; 1000]);
        assert!((t.energy().value() - 100.0).abs() < 1e-9);
        assert_eq!(t.average(), Some(Watts(100.0)));
        assert_eq!(t.duration(), Seconds(1.0));
        assert_eq!(t.peak(), Some(Watts(100.0)));
    }

    #[test]
    fn empty_trace() {
        let t = PowerTrace::new(Seconds(0.001)).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.average(), None);
        assert_eq!(t.peak(), None);
        assert_eq!(t.energy(), Joules::ZERO);
        assert_eq!(t.violation_fraction(Watts(1.0), Seconds(0.01)), 0.0);
    }

    #[test]
    fn rolling_average_smooths() {
        let t = trace_of(&[0.0, 100.0, 0.0, 100.0, 0.0, 100.0]);
        let rolled = t.rolling_average(Seconds(0.002)); // window = 2 samples
        assert_eq!(rolled[0], Watts(0.0));
        assert_eq!(rolled[1], Watts(50.0));
        assert_eq!(rolled[2], Watts(50.0));
    }

    #[test]
    fn violation_fraction_counts_window_averages() {
        // spiky 0/100 signal: instantaneous peaks 100, 2-sample average 50.
        let t = trace_of(&[0.0, 100.0, 0.0, 100.0, 0.0, 100.0, 0.0, 100.0]);
        assert_eq!(t.violation_fraction(Watts(60.0), Seconds(0.002)), 0.0);
        assert!(t.violation_fraction(Watts(40.0), Seconds(0.002)) > 0.0);
    }

    #[test]
    fn invalid_intervals_are_rejected_not_panicked() {
        for dt in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = PowerTrace::new(Seconds(dt)).unwrap_err();
            assert_eq!(err.dt.value().to_bits(), dt.to_bits());
            assert!(err.to_string().contains("sampling interval"));
        }
    }
}
