//! One simulated module: a CPU socket plus its DRAM.
//!
//! A [`SimModule`] owns a manufacturing fingerprint sampled at "fabrication"
//! time, a ground-truth power model, an MSR file, a cpufreq governor and an
//! optional RAPL limit. Power management composes the way it does on real
//! hardware: the governor proposes a clock, RAPL throttles below it if the
//! package would exceed the cap, and clock modulation kicks in below the
//! lowest P-state.

use crate::cpufreq::Governor;
use crate::msr::{EnergyCounter, MsrFile, PowerLimitRegister, MSR_DRAM_ENERGY_STATUS, MSR_PKG_ENERGY_STATUS};
use crate::rapl::{self, RaplLimit, RaplSteadyState};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use vap_model::boundedness::Boundedness;
use vap_model::power::{ModulePowerModel, PowerActivity};
use vap_model::pstate::PStateTable;
use vap_model::thermal::ThermalEnv;
use vap_model::units::{GigaHertz, Joules, Seconds, Watts};
use vap_model::variability::{DriftSkew, ModuleVariation};

/// The resolved operating point of a module: the clock it runs at while
/// ungated, and the fraction of time it runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Clock frequency while running.
    pub clock: GigaHertz,
    /// Run fraction in `[0, 1]` (1.0 except under clock modulation;
    /// 0.0 when the cap is infeasible).
    pub duty: f64,
}

impl OperatingPoint {
    /// Cycles delivered per unit time, as a frequency: `clock × duty`.
    pub fn effective_frequency(&self) -> GigaHertz {
        self.clock * self.duty
    }
}

/// One module of the simulated fleet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimModule {
    /// Fleet-wide module index.
    pub id: usize,
    variation: ModuleVariation,
    /// Workload-specific override of the fingerprint: different
    /// instruction mixes stress differently-varying circuit paths, so a
    /// module's power deviation under workload W is correlated with — but
    /// not identical to — its deviation under the PVT microbenchmark.
    /// `None` means the base fingerprint applies.
    workload_variation: Option<ModuleVariation>,
    /// Accumulated in-field drift (thermal, aging, input entropy) applied
    /// on top of whichever fingerprint is in effect. Identity for a
    /// pristine module. The PVT prediction deliberately ignores it: drift
    /// is exactly the part of reality the calibration hasn't seen.
    #[serde(default)]
    drift: DriftSkew,
    /// Cached composition of the active fingerprint with `drift`
    /// (`None` while `drift` is the identity, keeping the pristine path
    /// allocation-free). Refreshed whenever either input changes.
    #[serde(default)]
    drifted: Option<ModuleVariation>,
    thermal: ThermalEnv,
    power_model: ModulePowerModel,
    /// Shared across the fleet: every module of a cluster runs the same
    /// P-state table, so construction hoists one allocation instead of
    /// cloning the table per module (serde's `rc` feature serializes the
    /// table by value, so persistence is unchanged).
    pstates: Arc<PStateTable>,
    governor: Governor,
    cap: Option<RaplLimit>,
    activity: PowerActivity,
    op: OperatingPoint,
    /// Whether the programmed cap is actively limiting the module (RAPL's
    /// dynamic control is in the loop, with its dithering cost).
    rapl_throttled: bool,
    msrs: MsrFile,
    pkg_counter: EnergyCounter,
    dram_counter: EnergyCounter,
    pkg_energy: Joules,
    dram_energy: Joules,
}

impl SimModule {
    /// Create a module with the given fingerprint and models, initially
    /// idle under the performance governor with no cap.
    pub fn new(
        id: usize,
        variation: ModuleVariation,
        power_model: ModulePowerModel,
        pstates: PStateTable,
        thermal: ThermalEnv,
    ) -> Self {
        Self::with_shared_pstates(id, variation, power_model, Arc::new(pstates), thermal)
    }

    /// [`SimModule::new`] over an already-shared P-state table — the
    /// fleet-construction path, which builds one `Arc` for the whole
    /// cluster instead of one table clone per module.
    pub fn with_shared_pstates(
        id: usize,
        variation: ModuleVariation,
        power_model: ModulePowerModel,
        pstates: Arc<PStateTable>,
        thermal: ThermalEnv,
    ) -> Self {
        let mut m = SimModule {
            id,
            variation,
            workload_variation: None,
            drift: DriftSkew::IDENTITY,
            drifted: None,
            thermal,
            power_model,
            pstates,
            governor: Governor::Performance,
            cap: None,
            activity: PowerActivity::IDLE,
            op: OperatingPoint { clock: GigaHertz::ZERO, duty: 1.0 },
            rapl_throttled: false,
            msrs: MsrFile::new(),
            pkg_counter: EnergyCounter::default(),
            dram_counter: EnergyCounter::default(),
            pkg_energy: Joules::ZERO,
            dram_energy: Joules::ZERO,
        };
        m.resolve();
        m
    }

    /// The fingerprint currently in effect: the workload-specific
    /// override if one is installed, else the base manufacturing
    /// fingerprint — composed with any accumulated [`DriftSkew`].
    pub fn variation(&self) -> &ModuleVariation {
        self.drifted
            .as_ref()
            .or(self.workload_variation.as_ref())
            .unwrap_or(&self.variation)
    }

    /// The base (PVT-microbenchmark) manufacturing fingerprint.
    pub fn base_variation(&self) -> &ModuleVariation {
        &self.variation
    }

    /// The workload-specific fingerprint override, if one is installed.
    pub fn workload_variation(&self) -> Option<&ModuleVariation> {
        self.workload_variation.as_ref()
    }

    /// Install (or clear) a workload-specific fingerprint override.
    pub fn set_workload_variation(&mut self, v: Option<ModuleVariation>) {
        self.workload_variation = v;
        self.refresh_drift();
        self.resolve();
    }

    /// The accumulated in-field drift on this module (identity if
    /// pristine).
    pub fn drift_skew(&self) -> &DriftSkew {
        &self.drift
    }

    /// Set the accumulated drift to `skew` (absolute, not incremental)
    /// and re-resolve the operating point: RAPL's dynamic control reacts
    /// to the *real* power curve, so a cap that was loose on pristine
    /// silicon can start throttling a drifted module.
    pub fn set_drift_skew(&mut self, skew: DriftSkew) {
        self.drift = skew;
        self.refresh_drift();
        self.resolve();
    }

    /// Compose one more drift step onto the accumulated skew.
    pub fn apply_drift(&mut self, step: &DriftSkew) {
        self.set_drift_skew(self.drift.compose(step));
    }

    /// Swap in fresh silicon (module replacement churn): a new base
    /// fingerprint, no drift, no workload override, zeroed energy
    /// counters. Slot-level settings — governor, cap, activity, thermal
    /// environment — stay programmed, as they belong to the rack position
    /// rather than the part.
    pub fn replace_silicon(&mut self, variation: ModuleVariation) {
        self.variation = variation;
        self.workload_variation = None;
        self.drift = DriftSkew::IDENTITY;
        self.drifted = None;
        self.pkg_counter = EnergyCounter::default();
        self.dram_counter = EnergyCounter::default();
        self.pkg_energy = Joules::ZERO;
        self.dram_energy = Joules::ZERO;
        self.msrs.write(MSR_PKG_ENERGY_STATUS, 0);
        self.msrs.write(MSR_DRAM_ENERGY_STATUS, 0);
        self.resolve();
    }

    /// Recompute the cached drift-composed fingerprint after either input
    /// (active fingerprint, accumulated skew) changes.
    fn refresh_drift(&mut self) {
        self.drifted = if self.drift.is_identity() {
            None
        } else {
            let active = self.workload_variation.as_ref().unwrap_or(&self.variation);
            Some(active.skewed(&self.drift))
        };
    }

    /// The module's P-state table.
    pub fn pstates(&self) -> &PStateTable {
        &self.pstates
    }

    /// The module's thermal environment.
    pub fn thermal(&self) -> ThermalEnv {
        self.thermal
    }

    /// Ground-truth power model (the experiment oracles use this; the
    /// budgeting algorithm must not).
    pub fn power_model(&self) -> &ModulePowerModel {
        &self.power_model
    }

    /// The register file (what a `libMSR`-style tool would read/write).
    pub fn msrs(&self) -> &MsrFile {
        &self.msrs
    }

    /// Current workload activity.
    pub fn activity(&self) -> PowerActivity {
        self.activity
    }

    /// Current resolved operating point.
    pub fn operating_point(&self) -> OperatingPoint {
        self.op
    }

    /// Set the workload activity factors (what code the module is running).
    pub fn set_activity(&mut self, activity: PowerActivity) {
        self.activity = activity;
        self.resolve();
    }

    /// The currently installed cpufreq governor.
    pub fn governor(&self) -> Governor {
        self.governor
    }

    /// Install a cpufreq governor (the FS control path).
    pub fn set_governor(&mut self, governor: Governor) {
        self.governor = governor;
        self.resolve();
    }

    /// Program a RAPL package power cap (the PC control path). The cap is
    /// written through the MSR encoding, so it inherits hardware
    /// quantization (1/8 W).
    pub fn set_cap(&mut self, limit: RaplLimit) {
        self.msrs.set_pkg_power_limit(PowerLimitRegister {
            limit: limit.cap,
            enabled: true,
            clamp: true,
            window: limit.window,
        });
        let quantized = self.msrs.pkg_power_limit();
        self.cap = Some(RaplLimit { cap: quantized.limit, window: quantized.window });
        self.resolve();
    }

    /// Remove any RAPL cap.
    pub fn clear_cap(&mut self) {
        self.msrs.set_pkg_power_limit(PowerLimitRegister {
            limit: Watts::ZERO,
            enabled: false,
            clamp: false,
            window: Seconds::from_millis(1.0),
        });
        self.cap = None;
        self.resolve();
    }

    /// The currently programmed cap, if any.
    pub fn cap(&self) -> Option<RaplLimit> {
        self.cap
    }

    /// Whether RAPL's dynamic control is actively limiting the module.
    pub fn rapl_throttled(&self) -> bool {
        self.rapl_throttled
    }

    /// The module's live telemetry sample (the daemon's sensor view):
    /// current power draw, effective frequency, programmed cap, duty
    /// cycle and throttle state.
    pub fn telemetry(&self) -> vap_obs::ModuleSample {
        vap_obs::ModuleSample {
            id: self.id as u64,
            power_w: self.module_power().value(),
            freq_ghz: self.op.effective_frequency().value(),
            cap_w: self.cap.map(|l| l.cap.value()),
            duty: self.op.duty,
            throttled: self.rapl_throttled,
        }
    }

    /// Recompute the operating point from governor + cap + activity.
    ///
    /// The governor proposes a clock; if a cap is installed, RAPL's steady
    /// state is computed and the *more restrictive* of the two wins (RAPL
    /// cannot raise the clock above the governor's choice, and the governor
    /// cannot override the power limit).
    fn resolve(&mut self) {
        let gov_clock = self.governor.resolve(&self.pstates);
        let (op, throttled) = match self.cap {
            None => (OperatingPoint { clock: gov_clock, duty: 1.0 }, false),
            Some(limit) => {
                let s = rapl::steady_state(
                    limit.cap,
                    &self.power_model.cpu,
                    self.activity.cpu,
                    self.variation(),
                    self.thermal.factor(),
                    &self.pstates,
                );
                match s {
                    RaplSteadyState::Unconstrained { .. } => {
                        (OperatingPoint { clock: gov_clock, duty: 1.0 }, false)
                    }
                    RaplSteadyState::Dvfs { freq } => {
                        // RAPL only dithers when it, not the governor, is
                        // the binding constraint.
                        let binding = freq < gov_clock;
                        (OperatingPoint { clock: freq.min(gov_clock), duty: 1.0 }, binding)
                    }
                    RaplSteadyState::ClockModulated { duty, .. } => {
                        (OperatingPoint { clock: self.pstates.f_min().min(gov_clock), duty }, true)
                    }
                }
            }
        };
        self.op = op;
        self.rapl_throttled = throttled;
    }

    /// Average CPU (package) power at the current operating point,
    /// duty-weighted across run and gated phases.
    pub fn cpu_power(&self) -> Watts {
        let run = self.power_model.cpu.power(
            self.op.clock,
            self.activity.cpu,
            self.variation(),
            self.thermal.factor(),
        );
        if self.op.duty >= 1.0 {
            run
        } else {
            let gated = self.power_model.cpu.gated_power(self.variation(), self.thermal.factor());
            run * self.op.duty + gated * (1.0 - self.op.duty)
        }
    }

    /// Average DRAM power at the current operating point. Memory traffic
    /// only flows while the CPU runs, so activity is duty-weighted; standby
    /// power is always drawn. DRAM is never capped (the paper notes DRAM
    /// capping "rarely exists" in production systems).
    pub fn dram_power(&self) -> Watts {
        self.power_model.dram.power(self.op.clock, self.activity.dram * self.op.duty, self.variation())
    }

    /// Average module (CPU + DRAM) power.
    pub fn module_power(&self) -> Watts {
        self.cpu_power() + self.dram_power()
    }

    /// Module power *predicted from the base PVT fingerprint* at the
    /// current operating point — what an operator who calibrated on the
    /// PVT microbenchmark would expect this module to draw. When a
    /// workload-specific fingerprint override is installed, the actual
    /// draw ([`Self::module_power`]) diverges from this prediction; the
    /// scheduler's drift detector watches that residual.
    pub fn pvt_predicted_power(&self) -> Watts {
        let base = self.base_variation();
        let run = self.power_model.cpu.power(
            self.op.clock,
            self.activity.cpu,
            base,
            self.thermal.factor(),
        );
        let cpu = if self.op.duty >= 1.0 {
            run
        } else {
            let gated = self.power_model.cpu.gated_power(base, self.thermal.factor());
            run * self.op.duty + gated * (1.0 - self.op.duty)
        };
        cpu + self.power_model.dram.power(self.op.clock, self.activity.dram * self.op.duty, base)
    }

    /// Relative execution rate (1.0 = this workload at the reference
    /// frequency on a nominal part): the boundedness-dependent DVFS
    /// slowdown, the duty cycle, and the module's silicon-speed multiplier.
    pub fn effective_rate(&self, boundedness: &Boundedness) -> f64 {
        if self.op.duty <= 0.0 || self.op.clock.value() <= 0.0 {
            return 0.0;
        }
        let dither = if self.rapl_throttled { rapl::DVFS_DITHER_EFFICIENCY } else { 1.0 };
        self.op.duty
            * dither
            * rapl::modulation_efficiency(self.op.duty)
            * boundedness.relative_rate(self.op.clock)
            * self.variation().perf
    }

    /// Advance time by `dt`: accumulate energy into the MSR counters and
    /// the lifetime totals.
    pub fn step(&mut self, dt: Seconds) {
        let pkg = self.cpu_power() * dt;
        let dram = self.dram_power() * dt;
        self.pkg_energy += pkg;
        self.dram_energy += dram;
        self.pkg_counter.accumulate(pkg);
        self.dram_counter.accumulate(dram);
        self.msrs.write(MSR_PKG_ENERGY_STATUS, self.pkg_counter.raw() as u64);
        self.msrs.write(MSR_DRAM_ENERGY_STATUS, self.dram_counter.raw() as u64);
    }

    /// The package-domain energy counter (the value behind
    /// `MSR_PKG_ENERGY_STATUS`, plus its sub-quantum residual).
    pub fn pkg_counter(&self) -> EnergyCounter {
        self.pkg_counter
    }

    /// The DRAM-domain energy counter.
    pub fn dram_counter(&self) -> EnergyCounter {
        self.dram_counter
    }

    /// Lifetime package energy.
    pub fn pkg_energy(&self) -> Joules {
        self.pkg_energy
    }

    /// Lifetime DRAM energy.
    pub fn dram_energy(&self) -> Joules {
        self.dram_energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vap_model::systems::SystemSpec;

    fn module_with(variation: ModuleVariation) -> SimModule {
        let spec = SystemSpec::ha8k();
        SimModule::new(0, variation, spec.power_model, spec.pstates, ThermalEnv::reference())
    }

    fn nominal_module() -> SimModule {
        module_with(ModuleVariation::nominal(0, 12))
    }

    fn busy() -> PowerActivity {
        PowerActivity { cpu: 1.0, dram: 0.25 }
    }

    #[test]
    fn uncapped_runs_at_fmax() {
        let mut m = nominal_module();
        m.set_activity(busy());
        assert_eq!(m.operating_point().clock, GigaHertz(2.7));
        assert_eq!(m.operating_point().duty, 1.0);
        assert!((m.cpu_power().value() - 100.8).abs() < 3.0);
    }

    #[test]
    fn cap_throttles_clock() {
        let mut m = nominal_module();
        m.set_activity(busy());
        m.set_cap(RaplLimit::with_default_window(Watts(77.25)));
        let op = m.operating_point();
        assert!(op.clock < GigaHertz(2.7));
        assert!(op.duty == 1.0);
        assert!(m.cpu_power() <= Watts(77.25 + 0.01));
        // DRAM unaffected by the CPU cap except through frequency
        assert!(m.dram_power() > Watts(0.0));
    }

    #[test]
    fn cap_goes_through_msr_quantization() {
        let mut m = nominal_module();
        m.set_cap(RaplLimit::with_default_window(Watts(77.3)));
        // 77.3 W is not a multiple of 1/8 W; the effective cap is the
        // quantized value read back from the register.
        let eff = m.cap().unwrap().cap;
        assert!((eff.value() * 8.0).fract().abs() < 1e-9);
        assert!((eff.value() - 77.3).abs() <= 0.0625 + 1e-9);
    }

    #[test]
    fn deep_cap_duty_cycles_and_guts_performance() {
        let mut m = nominal_module();
        m.set_activity(busy());
        m.set_cap(RaplLimit::with_default_window(Watts(35.0)));
        let op = m.operating_point();
        assert_eq!(op.clock, GigaHertz(1.2));
        assert!(op.duty < 1.0);
        let b = Boundedness::cpu_bound(GigaHertz(2.7));
        let rate = m.effective_rate(&b);
        // far below the f_min rate of 1.2/2.7 ≈ 0.44
        assert!(rate < 0.35, "rate = {rate}");
    }

    #[test]
    fn governor_pins_frequency() {
        let mut m = nominal_module();
        m.set_activity(busy());
        m.set_governor(Governor::Userspace(GigaHertz(1.8)));
        assert_eq!(m.operating_point().clock, GigaHertz(1.8));
        // FS controls frequency but not power: power follows the module's
        // silicon at 1.8 GHz.
        let p = m.cpu_power();
        assert!(p < Watts(100.0) && p > Watts(40.0));
    }

    #[test]
    fn governor_and_cap_compose_min_wise() {
        let mut m = nominal_module();
        m.set_activity(busy());
        // generous cap + low governor: governor wins
        m.set_cap(RaplLimit::with_default_window(Watts(120.0)));
        m.set_governor(Governor::Userspace(GigaHertz(1.5)));
        assert_eq!(m.operating_point().clock, GigaHertz(1.5));
        // tight cap + high governor: cap wins
        m.set_governor(Governor::Userspace(GigaHertz(2.7)));
        m.set_cap(RaplLimit::with_default_window(Watts(60.0)));
        assert!(m.operating_point().clock < GigaHertz(2.7));
    }

    #[test]
    fn clear_cap_restores_full_speed() {
        let mut m = nominal_module();
        m.set_activity(busy());
        m.set_cap(RaplLimit::with_default_window(Watts(50.0)));
        assert!(m.operating_point().clock < GigaHertz(2.7));
        m.clear_cap();
        assert_eq!(m.operating_point().clock, GigaHertz(2.7));
        assert!(m.cap().is_none());
    }

    #[test]
    fn power_hungry_module_is_slower_under_same_cap() {
        let mut hungry_var = ModuleVariation::nominal(1, 12);
        hungry_var.dynamic = 1.08;
        hungry_var.leakage = 1.4;
        let mut nom = nominal_module();
        let mut hungry = module_with(hungry_var);
        for m in [&mut nom, &mut hungry] {
            m.set_activity(busy());
            m.set_cap(RaplLimit::with_default_window(Watts(68.25)));
        }
        let b = Boundedness::cpu_bound(GigaHertz(2.7));
        assert!(hungry.effective_rate(&b) < nom.effective_rate(&b));
    }

    #[test]
    fn energy_accounting_matches_power_times_time() {
        let mut m = nominal_module();
        m.set_activity(busy());
        let p_pkg = m.cpu_power();
        let p_dram = m.dram_power();
        for _ in 0..1000 {
            m.step(Seconds::from_millis(1.0));
        }
        assert!((m.pkg_energy().value() - p_pkg.value()).abs() < 1e-6);
        assert!((m.dram_energy().value() - p_dram.value()).abs() < 1e-6);
        // MSR counters agree with lifetime totals (1 s elapsed, no wrap)
        let pkg_msr = EnergyCounter::delta(0, m.msrs().read(MSR_PKG_ENERGY_STATUS) as u32);
        assert!((pkg_msr.value() - m.pkg_energy().value()).abs() < 1e-3);
    }

    #[test]
    fn idle_module_draws_base_power_only() {
        let m = nominal_module();
        // idle: no dynamic power, leakage + idle + DRAM standby
        let p = m.module_power();
        assert!(p.value() < 35.0, "idle power {p}");
        assert!(p.value() > 15.0);
    }

    #[test]
    fn pvt_prediction_matches_actual_until_workload_override() {
        let mut m = nominal_module();
        m.set_activity(busy());
        assert!(
            (m.pvt_predicted_power().value() - m.module_power().value()).abs() < 1e-12,
            "no override: prediction is the actual draw"
        );
        let mut hot = ModuleVariation::nominal(0, 12);
        hot.dynamic = 1.10;
        hot.leakage = 1.3;
        m.set_workload_variation(Some(hot));
        let residual = m.module_power().value() - m.pvt_predicted_power().value();
        assert!(residual > 1.0, "hungrier workload fingerprint must overshoot PVT prediction by watts, got {residual}");
    }

    #[test]
    fn drift_skew_diverges_actual_from_pvt_prediction() {
        let mut m = nominal_module();
        m.set_activity(busy());
        let pristine = m.module_power();
        // identity drift is bitwise a no-op
        m.set_drift_skew(DriftSkew::IDENTITY);
        assert_eq!(m.module_power().value().to_bits(), pristine.value().to_bits());
        // an aging/thermal step makes the module hungrier than its stale
        // calibration predicts: the exact residual the drift detector eats
        m.apply_drift(&DriftSkew { dynamic: 1.06, leakage: 1.25, dram: 1.0 });
        let residual = m.module_power().value() - m.pvt_predicted_power().value();
        assert!(residual > 1.0, "drifted module must overshoot the PVT prediction, got {residual}");
        assert!(!m.drift_skew().is_identity());
    }

    #[test]
    fn drift_composes_on_top_of_workload_override() {
        let mut m = nominal_module();
        m.set_activity(busy());
        let mut hot = ModuleVariation::nominal(0, 12);
        hot.dynamic = 1.05;
        m.set_workload_variation(Some(hot));
        let with_override = m.module_power();
        m.apply_drift(&DriftSkew { dynamic: 1.04, leakage: 1.1, dram: 1.0 });
        assert!(m.module_power() > with_override, "drift must stack on the override");
        // clearing the override keeps the drift (it belongs to the silicon)
        m.set_workload_variation(None);
        let base_drifted = m.module_power();
        m.set_drift_skew(DriftSkew::IDENTITY);
        assert!(base_drifted > m.module_power());
    }

    #[test]
    fn replace_silicon_resets_drift_and_counters_but_keeps_slot_settings() {
        let mut m = nominal_module();
        m.set_activity(busy());
        m.set_cap(RaplLimit::with_default_window(Watts(68.25)));
        m.apply_drift(&DriftSkew { dynamic: 1.1, leakage: 1.3, dram: 1.05 });
        m.step(Seconds::from_millis(50.0));
        assert!(m.pkg_energy() > Joules::ZERO);
        let fresh = ModuleVariation::nominal(0, 12);
        m.replace_silicon(fresh.clone());
        assert_eq!(m.base_variation(), &fresh);
        assert!(m.drift_skew().is_identity());
        assert!(m.workload_variation().is_none());
        assert_eq!(m.pkg_energy(), Joules::ZERO);
        assert_eq!(m.dram_energy(), Joules::ZERO);
        assert!(m.cap().is_some(), "the slot keeps its programmed cap");
        assert_eq!(m.activity(), busy());
        let residual = (m.module_power().value() - m.pvt_predicted_power().value()).abs();
        assert!(residual < 1e-12, "fresh silicon matches its own calibration");
    }

    #[test]
    fn perf_multiplier_feeds_effective_rate() {
        let mut v = ModuleVariation::nominal(0, 4);
        v.perf = 0.9;
        let mut m = module_with(v);
        m.set_activity(busy());
        let b = Boundedness::cpu_bound(GigaHertz(2.7));
        assert!((m.effective_rate(&b) - 0.9).abs() < 1e-9);
    }
}
