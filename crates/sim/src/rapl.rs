//! Running Average Power Limit (RAPL) enforcement.
//!
//! RAPL lets software specify "a power bound and a time window, and the
//! hardware ensures that the average power over the time window does not
//! exceed the specified bound" (§3.1.1), internally by dynamic voltage and
//! frequency scaling. Two consequences drive the whole paper:
//!
//! 1. Under a uniform cap, each module settles at the highest frequency
//!    *its own* power curve affords — manufacturing variability in power
//!    becomes frequency variation (Fig. 2(ii)).
//! 2. When the cap is below the power of even the lowest P-state, the
//!    hardware falls back to **duty-cycle clock modulation**, whose
//!    performance cliff is much steeper than DVFS. This is the regime a
//!    variation-unaware scheme pushes unlucky modules into at tight budgets
//!    and the origin of the paper's largest speedups (5.4× at 96 kW).
//!
//! [`steady_state`] solves the converged operating point analytically (what
//! the average over many 1 ms windows looks like); [`RaplController`] is the
//! step-by-step feedback loop, used to validate that the dynamics actually
//! converge to the analytic answer.

use serde::{Deserialize, Serialize};
use vap_model::power::CpuPowerModel;
use vap_model::pstate::PStateTable;
use vap_model::units::{GigaHertz, Seconds, Watts};
use vap_model::variability::ModuleVariation;

/// Hardware floor for duty-cycle modulation (Intel clock modulation stops
/// at 1/16 duty); below this the cap can no longer be honored.
pub const MIN_DUTY: f64 = 1.0 / 16.0;

/// A programmed RAPL limit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RaplLimit {
    /// Package power cap.
    pub cap: Watts,
    /// Averaging window (1 ms in all the paper's experiments).
    pub window: Seconds,
}

impl RaplLimit {
    /// A limit with the paper's default 1 ms window.
    pub fn with_default_window(cap: Watts) -> Self {
        RaplLimit { cap, window: Seconds::from_millis(1.0) }
    }
}

/// The converged operating point of a module under a RAPL cap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RaplSteadyState {
    /// The cap does not bind: the module runs at its uncapped frequency
    /// (turbo where available).
    Unconstrained {
        /// Operating frequency.
        freq: GigaHertz,
    },
    /// The cap binds within the DVFS range: the module averages this
    /// (continuous) frequency across RAPL windows.
    Dvfs {
        /// Window-averaged operating frequency.
        freq: GigaHertz,
    },
    /// The cap is below P(f_min): the module runs at `f_min` for `duty`
    /// fraction of each window and clock-gates for the rest.
    ClockModulated {
        /// Run fraction in `[MIN_DUTY, 1)`.
        duty: f64,
        /// `true` when the required duty fell below the hardware floor and
        /// the cap is (slightly) violated at `MIN_DUTY`.
        floored: bool,
    },
}

impl RaplSteadyState {
    /// The effective frequency for performance purposes: actual frequency
    /// in DVFS regimes, `duty × f_min` worth of cycles under modulation.
    pub fn effective_frequency(&self, pstates: &PStateTable) -> GigaHertz {
        match *self {
            RaplSteadyState::Unconstrained { freq } | RaplSteadyState::Dvfs { freq } => freq,
            RaplSteadyState::ClockModulated { duty, .. } => pstates.f_min() * duty,
        }
    }

    /// Run duty (1.0 except under clock modulation).
    pub fn duty(&self) -> f64 {
        match *self {
            RaplSteadyState::ClockModulated { duty, .. } => duty,
            _ => 1.0,
        }
    }

    /// Nominal frequency the clock runs at while not gated.
    pub fn clock_frequency(&self, pstates: &PStateTable) -> GigaHertz {
        match *self {
            RaplSteadyState::Unconstrained { freq } | RaplSteadyState::Dvfs { freq } => freq,
            RaplSteadyState::ClockModulated { .. } => pstates.f_min(),
        }
    }
}

/// Throughput efficiency of RAPL's *dynamic* cap enforcement in the DVFS
/// region. §5.3 of the paper: "RAPL attempts to dynamically optimize the
/// CPU frequency when a power cap is enforced, leading to CPU frequency
/// throttling. This dynamic behavior does not guarantee consistent
/// performance" — the controller dithers between neighboring P-states to
/// hold the window average, costing a few percent versus a statically
/// pinned frequency (the advantage the FS implementation exploits).
pub const DVFS_DITHER_EFFICIENCY: f64 = 0.95;

/// Relative throughput efficiency of duty-cycle modulation: stopping and
/// restarting the clock drains and refills pipelines and reorders traffic,
/// so a module running `duty` of the time delivers *less* than `duty` of
/// its work. Modeled as `1 / (1 + c·(1/duty − 1))` with `c` the per-gap
/// overhead fraction.
pub fn modulation_efficiency(duty: f64) -> f64 {
    const OVERHEAD: f64 = 0.10;
    // A fully gated clock delivers nothing — it must not score as
    // lossless. Only an unmodulated clock (duty >= 1) is overhead-free.
    if duty <= 0.0 {
        return 0.0;
    }
    if duty >= 1.0 {
        return 1.0;
    }
    1.0 / (1.0 + OVERHEAD * (1.0 / duty - 1.0))
}

/// Solve the converged operating point under `cap` for a module with the
/// given power model, workload activity, manufacturing fingerprint and
/// thermal factor.
pub fn steady_state(
    cap: Watts,
    model: &CpuPowerModel,
    activity: f64,
    variation: &ModuleVariation,
    thermal: f64,
    pstates: &PStateTable,
) -> RaplSteadyState {
    let f_top = pstates.uncapped();
    let f_min = pstates.f_min();
    if model.power(f_top, activity, variation, thermal) <= cap {
        return RaplSteadyState::Unconstrained { freq: f_top };
    }
    if let Some(freq) = model.max_frequency_within(cap, activity, variation, thermal, f_min, f_top) {
        return RaplSteadyState::Dvfs { freq };
    }
    // Below P(f_min): duty-cycle between running at f_min and clock-gated.
    // The hardware cannot power the package off, so when even the gated
    // power exceeds the cap it clamps at the deepest throttle and the cap
    // is simply violated — `floored` reports that.
    let p_run = model.power(f_min, activity, variation, thermal);
    let p_gated = model.gated_power(variation, thermal);
    let duty = if cap <= p_gated { 0.0 } else { (cap - p_gated) / (p_run - p_gated) };
    vap_obs::incr("rapl.clock_modulated");
    if duty < MIN_DUTY {
        vap_obs::incr("rapl.cap_clamped");
        RaplSteadyState::ClockModulated { duty: MIN_DUTY, floored: true }
    } else {
        RaplSteadyState::ClockModulated { duty: duty.min(1.0), floored: false }
    }
}

/// Average package power drawn in steady state `s` (duty-weighted under
/// modulation).
pub fn steady_state_power(
    s: &RaplSteadyState,
    model: &CpuPowerModel,
    activity: f64,
    variation: &ModuleVariation,
    thermal: f64,
    pstates: &PStateTable,
) -> Watts {
    match *s {
        RaplSteadyState::Unconstrained { freq } | RaplSteadyState::Dvfs { freq } => {
            model.power(freq, activity, variation, thermal)
        }
        RaplSteadyState::ClockModulated { duty, .. } => {
            let p_run = model.power(pstates.f_min(), activity, variation, thermal);
            let p_gated = model.gated_power(variation, thermal);
            p_run * duty + p_gated * (1.0 - duty)
        }
    }
}

/// The feedback control decision taken once per control interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaplDecision {
    /// Move one P-state down (or shrink duty under modulation).
    Throttle,
    /// Move one P-state up (or grow duty).
    Unthrottle,
    /// Stay at the current operating point.
    Hold,
}

/// The dynamic RAPL feedback loop: tracks a running average of package
/// power over the programmed window and nudges the operating point each
/// control interval. Converges to (a discretized neighborhood of) the
/// analytic [`steady_state`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RaplController {
    limit: RaplLimit,
    avg_power: Watts,
    primed: bool,
    /// Hysteresis band as a fraction of the cap; prevents P-state flapping.
    hysteresis: f64,
}

impl RaplController {
    /// Create a controller for `limit`.
    pub fn new(limit: RaplLimit) -> Self {
        RaplController { limit, avg_power: Watts::ZERO, primed: false, hysteresis: 0.02 }
    }

    /// The programmed limit.
    pub fn limit(&self) -> RaplLimit {
        self.limit
    }

    /// Current running-average power estimate.
    pub fn average_power(&self) -> Watts {
        self.avg_power
    }

    /// Feed one interval's measured power; `dt` is the control interval.
    /// Uses an exponential moving average with time constant equal to the
    /// programmed window.
    pub fn observe(&mut self, power: Watts, dt: Seconds) {
        if !self.primed {
            self.avg_power = power;
            self.primed = true;
            return;
        }
        let k = (dt.value() / self.limit.window.value()).clamp(0.0, 1.0);
        self.avg_power = self.avg_power * (1.0 - k) + power * k;
    }

    /// Decide the next move given the current average.
    pub fn decide(&self) -> RaplDecision {
        if !self.primed {
            return RaplDecision::Hold;
        }
        let hi = self.limit.cap;
        let lo = self.limit.cap * (1.0 - self.hysteresis);
        if self.avg_power > hi {
            RaplDecision::Throttle
        } else if self.avg_power < lo {
            RaplDecision::Unthrottle
        } else {
            RaplDecision::Hold
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vap_model::power::VoltageCurve;

    fn model() -> CpuPowerModel {
        CpuPowerModel {
            voltage: VoltageCurve { v0: 0.60, v1: 0.10 },
            dynamic_scale: Watts(36.7),
            leakage: Watts(18.0),
            idle: Watts(8.0),
            gated_leakage_fraction: 0.5,
        }
    }

    fn pstates() -> PStateTable {
        PStateTable::evenly_spaced(GigaHertz(1.2), GigaHertz(2.7), GigaHertz(0.1))
    }

    fn nominal() -> ModuleVariation {
        ModuleVariation::nominal(0, 12)
    }

    #[test]
    fn generous_cap_is_unconstrained() {
        let s = steady_state(Watts(500.0), &model(), 1.0, &nominal(), 1.0, &pstates());
        assert_eq!(s, RaplSteadyState::Unconstrained { freq: GigaHertz(2.7) });
        assert_eq!(s.duty(), 1.0);
    }

    #[test]
    fn binding_cap_lands_in_dvfs_range_at_cap_power() {
        let m = model();
        let ps = pstates();
        let v = nominal();
        let cap = Watts(77.3); // the paper's Ccpu at Cm = 90 W
        let s = steady_state(cap, &m, 1.0, &v, 1.0, &ps);
        match s {
            RaplSteadyState::Dvfs { freq } => {
                assert!(freq > ps.f_min() && freq < ps.f_max());
                let p = steady_state_power(&s, &m, 1.0, &v, 1.0, &ps);
                assert!((p.value() - cap.value()).abs() < 0.01, "p = {p}");
            }
            other => panic!("expected Dvfs, got {other:?}"),
        }
    }

    #[test]
    fn sub_fmin_cap_duty_cycles() {
        let m = model();
        let ps = pstates();
        let v = nominal();
        let p_fmin = m.power(ps.f_min(), 1.0, &v, 1.0);
        let cap = p_fmin * 0.7;
        let s = steady_state(cap, &m, 1.0, &v, 1.0, &ps);
        match s {
            RaplSteadyState::ClockModulated { duty, floored } => {
                assert!(!floored);
                assert!((MIN_DUTY..1.0).contains(&duty));
                let p = steady_state_power(&s, &m, 1.0, &v, 1.0, &ps);
                assert!((p.value() - cap.value()).abs() < 0.01);
                // performance cliff: effective frequency below f_min
                assert!(s.effective_frequency(&ps) < ps.f_min());
            }
            other => panic!("expected ClockModulated, got {other:?}"),
        }
    }

    #[test]
    fn duty_floor_is_respected_and_flagged() {
        let m = model();
        let ps = pstates();
        let v = nominal();
        let p_gated = m.gated_power(&v, 1.0);
        let cap = p_gated + Watts(0.1); // just feasible, needs tiny duty
        let s = steady_state(cap, &m, 1.0, &v, 1.0, &ps);
        match s {
            RaplSteadyState::ClockModulated { duty, floored } => {
                assert_eq!(duty, MIN_DUTY);
                assert!(floored);
            }
            other => panic!("expected floored modulation, got {other:?}"),
        }
    }

    #[test]
    fn starvation_cap_clamps_at_floor_and_violates() {
        // A cap below even the gated power cannot be honored: the hardware
        // sits at the deepest throttle and the cap is violated.
        let m = model();
        let ps = pstates();
        let v = nominal();
        let s = steady_state(Watts(5.0), &m, 1.0, &v, 1.0, &ps);
        assert_eq!(s, RaplSteadyState::ClockModulated { duty: MIN_DUTY, floored: true });
        let p = steady_state_power(&s, &m, 1.0, &v, 1.0, &ps);
        assert!(p > Watts(5.0), "cap must be violated at the floor");
    }

    #[test]
    fn modulation_efficiency_penalizes_deep_throttle() {
        assert_eq!(modulation_efficiency(1.0), 1.0);
        assert!(modulation_efficiency(0.5) < 1.0);
        assert!(modulation_efficiency(0.1) < modulation_efficiency(0.5));
        // monotone in duty
        let mut last = 0.0;
        for d in [0.0625, 0.125, 0.25, 0.5, 0.75, 1.0] {
            let e = modulation_efficiency(d);
            assert!(e >= last);
            last = e;
        }
    }

    #[test]
    fn modulation_efficiency_zero_for_gated_clock() {
        // Regression: a non-positive duty used to short-circuit to 1.0,
        // modeling a fully gated clock as lossless.
        assert_eq!(modulation_efficiency(0.0), 0.0);
        assert_eq!(modulation_efficiency(-0.25), 0.0);
        assert_eq!(modulation_efficiency(1.0), 1.0);
        assert_eq!(modulation_efficiency(1.5), 1.0);
        // strictly monotone over (0, 1]: more run time, more throughput
        let mut last = 0.0;
        let steps = 64;
        for i in 1..=steps {
            let duty = f64::from(i) / f64::from(steps);
            let e = modulation_efficiency(duty);
            assert!(
                e > last,
                "efficiency not strictly increasing at duty {duty}: {e} <= {last}"
            );
            assert!(e > 0.0 && e <= 1.0);
            last = e;
        }
        assert_eq!(last, 1.0);
    }

    #[test]
    fn power_hungry_module_gets_lower_frequency() {
        // The paper's core observation: same cap, different silicon →
        // different frequency.
        let m = model();
        let ps = pstates();
        let cap = Watts(77.3);
        let mut hungry = nominal();
        hungry.dynamic = 1.1;
        hungry.leakage = 1.4;
        let f_nom = steady_state(cap, &m, 1.0, &nominal(), 1.0, &ps).effective_frequency(&ps);
        let f_hun = steady_state(cap, &m, 1.0, &hungry, 1.0, &ps).effective_frequency(&ps);
        assert!(f_hun < f_nom, "hungry {f_hun:?} !< nominal {f_nom:?}");
    }

    #[test]
    fn tighter_caps_monotonically_reduce_effective_frequency() {
        let m = model();
        let ps = pstates();
        let v = nominal();
        let mut last = f64::INFINITY;
        for cap_w in [110.0, 97.4, 88.1, 78.8, 69.5, 60.1, 50.0, 40.0, 30.0] {
            let s = steady_state(Watts(cap_w), &m, 1.0, &v, 1.0, &ps);
            let f = s.effective_frequency(&ps).value();
            assert!(f <= last + 1e-12, "cap {cap_w}: {f} > {last}");
            last = f;
        }
    }

    #[test]
    fn controller_converges_toward_cap() {
        let m = model();
        let ps = pstates();
        let v = nominal();
        let cap = Watts(70.0);
        let mut ctl = RaplController::new(RaplLimit::with_default_window(cap));
        let dt = Seconds::from_millis(1.0);
        let mut freq = ps.f_max();
        for _ in 0..200 {
            let p = m.power(freq, 1.0, &v, 1.0);
            ctl.observe(p, dt);
            match ctl.decide() {
                RaplDecision::Throttle => {
                    if let Some(f) = ps.step_down(freq) {
                        freq = f;
                    }
                }
                RaplDecision::Unthrottle => {
                    // don't exceed the cap when stepping up
                    if let Some(f) = ps.step_up(freq) {
                        if m.power(f, 1.0, &v, 1.0) <= cap {
                            freq = f;
                        }
                    }
                }
                RaplDecision::Hold => {}
            }
        }
        // Converged frequency should match the analytic steady state to
        // within one P-state step.
        let analytic = steady_state(cap, &m, 1.0, &v, 1.0, &ps).effective_frequency(&ps);
        assert!(
            (freq.value() - analytic.value()).abs() <= 0.1 + 1e-9,
            "dynamic {freq:?} vs analytic {analytic:?}"
        );
        // And the achieved power respects the cap.
        assert!(m.power(freq, 1.0, &v, 1.0) <= cap + Watts(1e-9));
    }

    #[test]
    fn ewma_priming_and_window() {
        let mut ctl = RaplController::new(RaplLimit {
            cap: Watts(50.0),
            window: Seconds::from_millis(10.0),
        });
        assert_eq!(ctl.decide(), RaplDecision::Hold);
        ctl.observe(Watts(100.0), Seconds::from_millis(1.0));
        assert_eq!(ctl.average_power(), Watts(100.0)); // primed directly
        ctl.observe(Watts(0.0), Seconds::from_millis(1.0));
        assert!((ctl.average_power().value() - 90.0).abs() < 1e-9);
        assert_eq!(ctl.decide(), RaplDecision::Throttle);
    }
}
