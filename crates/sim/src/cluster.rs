//! A simulated fleet of modules built from a system specification.
//!
//! [`Cluster::new`] "manufactures" the fleet: it samples each module's
//! variability fingerprint from the system's distributions, which is the
//! moment the die-to-die lottery of §2.1 happens. Everything downstream —
//! the variability studies of §4 and the budgeting evaluation of §6 — runs
//! against this fleet.

use crate::cpufreq::Governor;
use crate::module::SimModule;
use crate::rapl::RaplLimit;
use std::fmt;
use std::sync::Arc;
use vap_model::power::PowerActivity;
use vap_model::systems::SystemSpec;
use vap_model::thermal::{RackGradient, ThermalEnv};
use vap_model::units::{GigaHertz, Seconds, Watts};

/// Fleet-level operations that can fail on malformed input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterError {
    /// A per-module vector did not have one entry per module.
    LengthMismatch {
        /// Fleet size (entries required).
        expected: usize,
        /// Entries supplied.
        got: usize,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::LengthMismatch { expected, got } => {
                write!(f, "expected one entry per module ({expected}), got {got}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// A fleet of simulated modules.
#[derive(Debug, Clone)]
pub struct Cluster {
    spec: SystemSpec,
    modules: Vec<SimModule>,
}

impl Cluster {
    /// Build the fleet the paper studied on this system
    /// (`spec.modules_studied` modules), deterministically in `seed`.
    pub fn new(spec: SystemSpec, seed: u64) -> Self {
        let n = spec.modules_studied;
        Self::with_size(spec, n, seed)
    }

    /// Build a fleet of `n` modules (reduced-scale experiments, tests).
    pub fn with_size(spec: SystemSpec, n: usize, seed: u64) -> Self {
        Self::with_thermal(spec, n, seed, None)
    }

    /// Build a fleet with an optional rack thermal gradient (extension
    /// experiments; `None` puts every module at reference temperature like
    /// the paper's study).
    pub fn with_thermal(spec: SystemSpec, n: usize, seed: u64, gradient: Option<RackGradient>) -> Self {
        let fleet = spec.variability.sample_fleet(n, spec.cores_per_proc, seed);
        // One P-state table for the whole fleet: hoisted out of the
        // per-module loop so construction does n small clones fewer and
        // every module shares one allocation (see tests/alloc_regression
        // in vap-bench for the zero-realloc guarantee).
        let pstates = Arc::new(spec.pstates.clone());
        let modules = fleet
            .into_iter()
            .enumerate()
            .map(|(i, v)| {
                let thermal = match gradient {
                    Some(g) => g.env_for(i, n),
                    None => ThermalEnv::reference(),
                };
                SimModule::with_shared_pstates(i, v, spec.power_model, Arc::clone(&pstates), thermal)
            })
            .collect();
        Cluster { spec, modules }
    }

    /// The system this fleet instantiates.
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// Number of modules.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// All modules.
    pub fn modules(&self) -> &[SimModule] {
        &self.modules
    }

    /// All modules, mutably.
    pub fn modules_mut(&mut self) -> &mut [SimModule] {
        &mut self.modules
    }

    /// One module by id.
    ///
    /// # Panics
    /// Panics if `id` is out of range; use [`Cluster::get`] for ids that
    /// originate outside the fleet (user options, job requests).
    pub fn module(&self, id: usize) -> &SimModule {
        &self.modules[id]
    }

    /// One module by id, mutably.
    ///
    /// # Panics
    /// Panics if `id` is out of range; use [`Cluster::get_mut`] for ids
    /// that originate outside the fleet (user options, job requests).
    pub fn module_mut(&mut self, id: usize) -> &mut SimModule {
        &mut self.modules[id]
    }

    /// One module by id, or `None` if `id` is not in the fleet.
    pub fn get(&self, id: usize) -> Option<&SimModule> {
        self.modules.get(id)
    }

    /// One module by id, mutably, or `None` if `id` is not in the fleet.
    pub fn get_mut(&mut self, id: usize) -> Option<&mut SimModule> {
        self.modules.get_mut(id)
    }

    /// Put the same workload activity on every module (an SPMD job).
    pub fn set_activity_all(&mut self, activity: PowerActivity) {
        for m in &mut self.modules {
            m.set_activity(activity);
        }
    }

    /// Program the same RAPL cap on every module (the Naive / Pc schemes).
    pub fn set_uniform_cap(&mut self, limit: RaplLimit) {
        for m in &mut self.modules {
            m.set_cap(limit);
        }
    }

    /// Program per-module RAPL caps (the VaPc scheme). `caps` must have one
    /// entry per module; a mismatched vector programs nothing.
    pub fn set_caps(&mut self, caps: &[Watts]) -> Result<(), ClusterError> {
        if caps.len() != self.modules.len() {
            return Err(ClusterError::LengthMismatch {
                expected: self.modules.len(),
                got: caps.len(),
            });
        }
        for (m, &c) in self.modules.iter_mut().zip(caps) {
            m.set_cap(RaplLimit::with_default_window(c));
        }
        Ok(())
    }

    /// Pin per-module frequencies through the userspace governor (the VaFs
    /// scheme). `freqs` must have one entry per module; a mismatched vector
    /// programs nothing.
    pub fn set_frequencies(&mut self, freqs: &[GigaHertz]) -> Result<(), ClusterError> {
        if freqs.len() != self.modules.len() {
            return Err(ClusterError::LengthMismatch {
                expected: self.modules.len(),
                got: freqs.len(),
            });
        }
        for (m, &f) in self.modules.iter_mut().zip(freqs) {
            m.set_governor(Governor::Userspace(f));
        }
        Ok(())
    }

    /// Remove all caps and restore the performance governor.
    pub fn uncap_all(&mut self) {
        for m in &mut self.modules {
            m.clear_cap();
            m.set_governor(Governor::Performance);
        }
    }

    /// Set the accumulated in-field drift on module `i` (absolute skew);
    /// see [`SimModule::set_drift_skew`].
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn set_drift_skew(&mut self, i: usize, skew: vap_model::variability::DriftSkew) {
        self.modules[i].set_drift_skew(skew);
    }

    /// Compose one more drift step onto module `i`'s accumulated skew.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn apply_drift(&mut self, i: usize, step: &vap_model::variability::DriftSkew) {
        self.modules[i].apply_drift(step);
    }

    /// Swap fresh silicon into slot `i` (module replacement churn); see
    /// [`SimModule::replace_silicon`].
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn replace_silicon(&mut self, i: usize, variation: vap_model::variability::ModuleVariation) {
        self.modules[i].replace_silicon(variation);
    }

    /// Ground-truth per-module CPU power (experiment oracle; real
    /// campaigns go through [`crate::measurement`]).
    pub fn cpu_powers(&self) -> Vec<Watts> {
        self.modules.iter().map(|m| m.cpu_power()).collect()
    }

    /// Ground-truth per-module DRAM power.
    pub fn dram_powers(&self) -> Vec<Watts> {
        self.modules.iter().map(|m| m.dram_power()).collect()
    }

    /// Ground-truth per-module module (CPU+DRAM) power.
    pub fn module_powers(&self) -> Vec<Watts> {
        self.modules.iter().map(|m| m.module_power()).collect()
    }

    /// Current operating frequencies (duty-weighted effective frequency).
    pub fn effective_frequencies(&self) -> Vec<GigaHertz> {
        self.modules.iter().map(|m| m.operating_point().effective_frequency()).collect()
    }

    /// Total fleet power right now.
    pub fn total_power(&self) -> Watts {
        self.modules.iter().map(|m| m.module_power()).sum()
    }

    /// Per-module telemetry in module-id order — the sensor view the
    /// live service plane (`vap-daemon`) publishes each tick.
    pub fn telemetry(&self) -> Vec<vap_obs::ModuleSample> {
        self.modules.iter().map(SimModule::telemetry).collect()
    }

    /// Advance every module by `dt` (energy accounting).
    pub fn step_all(&mut self, dt: Seconds) {
        for m in &mut self.modules {
            m.step(dt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vap_model::systems::SystemSpec;
    use vap_stats::{worst_case_variation, Summary};

    fn small_ha8k(n: usize, seed: u64) -> Cluster {
        let mut c = Cluster::with_size(SystemSpec::ha8k(), n, seed);
        c.set_activity_all(PowerActivity { cpu: 1.0, dram: 0.25 });
        c
    }

    #[test]
    fn fleet_size_defaults_to_study_size() {
        let c = Cluster::new(SystemSpec::teller(), 1);
        assert_eq!(c.len(), 64);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = small_ha8k(16, 3);
        let b = small_ha8k(16, 3);
        for (ma, mb) in a.modules().iter().zip(b.modules()) {
            assert_eq!(ma.variation(), mb.variation());
        }
    }

    #[test]
    fn uncapped_fleet_shows_power_variation_but_no_frequency_variation() {
        // Fig. 2(i) in miniature: identical code, identical frequency,
        // visibly different power.
        let c = small_ha8k(256, 42);
        let freqs: Vec<f64> = c.effective_frequencies().iter().map(|f| f.value()).collect();
        assert_eq!(worst_case_variation(&freqs), Some(1.0));
        let powers: Vec<f64> = c.module_powers().iter().map(|p| p.value()).collect();
        let vp = worst_case_variation(&powers).unwrap();
        assert!(vp > 1.1, "expected visible power variation, Vp = {vp}");
    }

    #[test]
    fn uniform_cap_converts_power_variation_into_frequency_variation() {
        // Fig. 2(ii) in miniature.
        let mut c = small_ha8k(256, 42);
        c.set_uniform_cap(RaplLimit::with_default_window(Watts(68.25)));
        let freqs: Vec<f64> = c.effective_frequencies().iter().map(|f| f.value()).collect();
        let vf = worst_case_variation(&freqs).unwrap();
        assert!(vf > 1.05, "expected frequency variation under cap, Vf = {vf}");
        // and the power spread collapses toward the cap
        let powers: Vec<f64> = c.cpu_powers().iter().map(|p| p.value()).collect();
        let s = Summary::of(&powers).unwrap();
        assert!(s.max <= 68.25 + 0.01);
    }

    #[test]
    fn per_module_caps_and_frequencies_apply() {
        let mut c = small_ha8k(4, 7);
        c.set_caps(&[Watts(50.0), Watts(60.0), Watts(70.0), Watts(80.0)]).unwrap();
        for (i, m) in c.modules().iter().enumerate() {
            let expected = 50.0 + 10.0 * i as f64;
            assert!((m.cap().unwrap().cap.value() - expected).abs() < 0.1);
        }
        c.uncap_all();
        c.set_frequencies(&[GigaHertz(1.5); 4]).unwrap();
        for m in c.modules() {
            assert_eq!(m.operating_point().clock, GigaHertz(1.5));
        }
    }

    #[test]
    fn uncap_restores_nominal_operation() {
        let mut c = small_ha8k(8, 9);
        c.set_uniform_cap(RaplLimit::with_default_window(Watts(50.0)));
        c.uncap_all();
        for m in c.modules() {
            assert!(m.cap().is_none());
            assert_eq!(m.operating_point().clock, GigaHertz(2.7));
        }
    }

    #[test]
    fn total_power_sums_modules() {
        let mut c = small_ha8k(10, 11);
        let total = c.total_power();
        let sum: Watts = c.module_powers().into_iter().sum();
        assert!((total.value() - sum.value()).abs() < 1e-9);
        c.step_all(Seconds(1.0));
        let e: f64 = c.modules().iter().map(|m| (m.pkg_energy() + m.dram_energy()).value()).sum();
        assert!((e - total.value()).abs() < 1e-6);
    }

    #[test]
    fn mismatched_vectors_are_rejected_and_program_nothing() {
        let mut c = small_ha8k(4, 1);
        assert_eq!(
            c.set_caps(&[Watts(50.0); 3]),
            Err(ClusterError::LengthMismatch { expected: 4, got: 3 })
        );
        assert!(c.modules().iter().all(|m| m.cap().is_none()), "nothing programmed");
        assert_eq!(
            c.set_frequencies(&[GigaHertz(1.5); 5]),
            Err(ClusterError::LengthMismatch { expected: 4, got: 5 })
        );
        for m in c.modules() {
            assert_eq!(m.operating_point().clock, GigaHertz(2.7));
        }
        let msg = ClusterError::LengthMismatch { expected: 4, got: 3 }.to_string();
        assert!(msg.contains('4') && msg.contains('3'));
    }

    #[test]
    fn checked_accessors_cover_the_fleet_and_nothing_else() {
        let mut c = small_ha8k(4, 2);
        assert!(c.get(3).is_some());
        assert!(c.get(4).is_none());
        assert!(c.get_mut(0).is_some());
        assert!(c.get_mut(usize::MAX).is_none());
        assert_eq!(c.get(2).map(|m| m.id), Some(2));
    }

    #[test]
    fn thermal_gradient_raises_hot_end_power() {
        let spec = SystemSpec::ha8k();
        let mut no_var_spec = spec.clone();
        no_var_spec.variability = vap_model::VariabilityModel::none();
        let mut c = Cluster::with_thermal(
            no_var_spec,
            32,
            0,
            Some(RackGradient { cold_c: 20.0, hot_c: 40.0 }),
        );
        c.set_activity_all(PowerActivity { cpu: 1.0, dram: 0.25 });
        let p = c.cpu_powers();
        assert!(p.last().unwrap() > p.first().unwrap());
    }
}
