cd /root/repo/.scratch-typecheck/stubs && mkdir -p serde/src serde_derive/src serde_json/src rand/src rand_distr/src crossbeam/src parking_lot/src proptest/src criterion/src

cat > serde/Cargo.toml <<'EOF'
[package]
name = "serde"
version = "1.0.0"
edition = "2021"
[features]
default = []
derive = []
[dependencies]
serde_derive = { path = "../serde_derive" }
EOF

cat > serde/src/lib.rs <<'EOF'
//! Typecheck-only stub of serde: blanket-implemented marker traits plus
//! the derive re-exports. Runtime behavior lives in serde_json's stub.
pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

pub mod de {
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}
    impl<T> DeserializeOwned for T {}
}
pub mod ser {
    pub use super::Serialize;
}
EOF

cat > serde_derive/Cargo.toml <<'EOF'
[package]
name = "serde_derive"
version = "1.0.0"
edition = "2021"
[lib]
proc-macro = true
EOF

cat > serde_derive/src/lib.rs <<'EOF'
//! No-op derive macros; the stub serde traits are blanket-implemented.
use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
EOF

cat > serde_json/Cargo.toml <<'EOF'
[package]
name = "serde_json"
version = "1.0.0"
edition = "2021"
[features]
default = []
float_roundtrip = []
[dependencies]
serde = { path = "../serde" }
EOF

cat > serde_json/src/lib.rs <<'EOF'
//! Typecheck-only stub of serde_json: signatures match, bodies panic.
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
}

#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serde_json stub")
    }
}
impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: ?Sized + Serialize>(_value: &T) -> Result<String> {
    unimplemented!("serde_json stub")
}

pub fn to_string_pretty<T: ?Sized + Serialize>(_value: &T) -> Result<String> {
    unimplemented!("serde_json stub")
}

pub fn from_str<'a, T: Deserialize<'a>>(_s: &'a str) -> Result<T> {
    unimplemented!("serde_json stub")
}

pub fn from_value<T: for<'de> Deserialize<'de>>(_v: Value) -> Result<T> {
    unimplemented!("serde_json stub")
}

#[macro_export]
macro_rules! json {
    ($($tt:tt)*) => {
        $crate::Value::Null
    };
}
EOF
echo done

### NEXT ###

cd /root/repo/.scratch-typecheck/stubs

cat > rand/Cargo.toml <<'EOF'
[package]
name = "rand"
version = "0.9.0"
edition = "2021"
EOF

cat > rand/src/lib.rs <<'EOF'
//! Typecheck-only stub of rand 0.9's used surface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait Rng: RngCore {
    fn random<T>(&mut self) -> T {
        unimplemented!("rand stub")
    }
    fn random_range<T, R>(&mut self, _range: R) -> T {
        unimplemented!("rand stub")
    }
    fn sample<T, D: distr::Distribution<T>>(&mut self, _distr: D) -> T {
        unimplemented!("rand stub")
    }
}
impl<R: RngCore + ?Sized> Rng for R {}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    pub struct StdRng;
    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            unimplemented!("rand stub")
        }
    }
    impl super::SeedableRng for StdRng {
        fn seed_from_u64(_state: u64) -> Self {
            unimplemented!("rand stub")
        }
    }
}

pub mod distr {
    pub trait Distribution<T> {
        fn sample<R: crate::RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }
}

pub mod seq {
    pub trait SliceRandom {
        fn shuffle<R: crate::RngCore + ?Sized>(&mut self, rng: &mut R);
    }
    impl<T> SliceRandom for [T] {
        fn shuffle<R: crate::RngCore + ?Sized>(&mut self, _rng: &mut R) {
            unimplemented!("rand stub")
        }
    }
}

pub fn rng() -> rngs::StdRng {
    unimplemented!("rand stub")
}
EOF

cat > rand_distr/Cargo.toml <<'EOF'
[package]
name = "rand_distr"
version = "0.5.0"
edition = "2021"
[dependencies]
rand = { path = "../rand" }
EOF

cat > rand_distr/src/lib.rs <<'EOF'
//! Typecheck-only stub of rand_distr's used surface.
pub use rand::distr::Distribution;

#[derive(Debug, Clone, Copy)]
pub struct Normal;
#[derive(Debug, Clone, Copy)]
pub struct LogNormal;
#[derive(Debug, Clone, Copy)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("rand_distr stub")
    }
}
impl std::error::Error for NormalError {}

impl Normal {
    pub fn new(_mean: f64, _std_dev: f64) -> Result<Self, NormalError> {
        unimplemented!("rand_distr stub")
    }
}
impl LogNormal {
    pub fn new(_mu: f64, _sigma: f64) -> Result<Self, NormalError> {
        unimplemented!("rand_distr stub")
    }
}
impl Distribution<f64> for Normal {
    fn sample<R: rand::RngCore + ?Sized>(&self, _rng: &mut R) -> f64 {
        unimplemented!("rand_distr stub")
    }
}
impl Distribution<f64> for LogNormal {
    fn sample<R: rand::RngCore + ?Sized>(&self, _rng: &mut R) -> f64 {
        unimplemented!("rand_distr stub")
    }
}
EOF

cat > crossbeam/Cargo.toml <<'EOF'
[package]
name = "crossbeam"
version = "0.8.0"
edition = "2021"
EOF

cat > crossbeam/src/lib.rs <<'EOF'
//! Typecheck-only stub of crossbeam's scoped threads, backed by
//! std::thread::scope so the kernels actually run in the harness.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}
EOF

cat > parking_lot/Cargo.toml <<'EOF'
[package]
name = "parking_lot"
version = "0.12.0"
edition = "2021"
EOF

cat > parking_lot/src/lib.rs <<'EOF'
//! Typecheck-only stub (the workspace declares but does not use it).
EOF
echo done

### NEXT ###

cd /root/repo/.scratch-typecheck/stubs

cat > proptest/Cargo.toml <<'EOF'
[package]
name = "proptest"
version = "1.0.0"
edition = "2021"
EOF

cat > proptest/src/lib.rs <<'EOF'
//! Typecheck-only stub of proptest: the `proptest!` macro swallows its
//! body (property bodies are not typechecked in the harness).
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    pub trait Strategy: Sized {
        type Value;
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, _f: F) -> Mapped<O> {
            Mapped(std::marker::PhantomData)
        }
    }

    pub struct Any<T>(std::marker::PhantomData<T>);
    impl<T> Strategy for Any<T> {
        type Value = T;
    }
    pub struct Mapped<T>(std::marker::PhantomData<T>);
    impl<T> Strategy for Mapped<T> {
        type Value = T;
    }

    pub fn any<T>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    pub mod prop {
        pub mod collection {
            pub use crate::collection::*;
        }
    }
}

pub mod collection {
    use crate::prelude::{Mapped, Strategy};
    pub fn vec<S: Strategy>(_element: S, _size: std::ops::Range<usize>) -> Mapped<Vec<S::Value>> {
        Mapped(std::marker::PhantomData)
    }
}

#[macro_export]
macro_rules! proptest {
    ($($tt:tt)*) => {};
}
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => {};
}
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => {};
}
#[macro_export]
macro_rules! prop_assume {
    ($($tt:tt)*) => {};
}
EOF

cat > criterion/Cargo.toml <<'EOF'
[package]
name = "criterion"
version = "0.5.0"
edition = "2021"
EOF

cat > criterion/src/lib.rs <<'EOF'
//! Typecheck-only stub of criterion's used surface; bodies panic.
pub struct Criterion;
pub struct Bencher;
pub struct BenchmarkGroup;
pub struct BenchmarkId;
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, _id: &str, _f: F) -> &mut Self {
        unimplemented!("criterion stub")
    }
    pub fn benchmark_group(&mut self, _name: &str) -> BenchmarkGroup {
        unimplemented!("criterion stub")
    }
}

impl BenchmarkGroup {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, _id: impl Into<String>, _f: F) -> &mut Self {
        unimplemented!("criterion stub")
    }
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        _id: BenchmarkId,
        _input: &I,
        _f: F,
    ) -> &mut Self {
        unimplemented!("criterion stub")
    }
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        unimplemented!("criterion stub")
    }
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        unimplemented!("criterion stub")
    }
    pub fn finish(self) {}
}

impl BenchmarkId {
    pub fn new(_name: impl Into<String>, _param: impl std::fmt::Display) -> Self {
        BenchmarkId
    }
    pub fn from_parameter(_param: impl std::fmt::Display) -> Self {
        BenchmarkId
    }
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, _routine: F) {
        unimplemented!("criterion stub")
    }
    pub fn iter_with_setup<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        _setup: S,
        _routine: F,
    ) {
        unimplemented!("criterion stub")
    }
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($($tt:tt)*) => {};
}
#[macro_export]
macro_rules! criterion_main {
    ($($tt:tt)*) => {
        fn main() {}
    };
}
EOF
echo done

### NEXT ###

cd /root/repo/.scratch-typecheck && python3 - <<'EOF'
import re
t = open('Cargo.toml').read()
t = t.replace('members = ["crates/*"]', 'members = ["crates/*", "stubs/*"]')
repl = {
 'rand = "0.9"': 'rand = { path = "stubs/rand" }',
 'rand_distr = "0.5"': 'rand_distr = { path = "stubs/rand_distr" }',
 'proptest = "1"': 'proptest = { path = "stubs/proptest" }',
 'criterion = "0.5"': 'criterion = { path = "stubs/criterion" }',
 'crossbeam = "0.8"': 'crossbeam = { path = "stubs/crossbeam" }',
 'parking_lot = "0.12"': 'parking_lot = { path = "stubs/parking_lot" }',
 'serde = { version = "1", features = ["derive"] }': 'serde = { path = "stubs/serde", features = ["derive"] }',
 'serde_json = { version = "1", features = ["float_roundtrip"] }': 'serde_json = { path = "stubs/serde_json", features = ["float_roundtrip"] }',
}
for k, v in repl.items():
    assert k in t, k
    t = t.replace(k, v)
open('Cargo.toml','w').write(t)
print("rewritten")
EOF
CARGO_NET_OFFLINE=1 cargo check --workspace --all-targets 2>&1 | tail -40

### NEXT ###

sed -i 's/    pub struct StdRng;/    #[derive(Debug, Clone)]\n    pub struct StdRng;/' stubs/rand/src/lib.rs && CARGO_NET_OFFLINE=1 cargo check --workspace --all-targets 2>&1 | grep -E "^(error|warning: unused|    Checking|   Compiling)" | head -40

### NEXT ###

sed -i 's/pub struct Any<T>(std::marker::PhantomData<T>);/pub struct Any<T>(pub std::marker::PhantomData<T>);/; s/pub struct Mapped<T>(std::marker::PhantomData<T>);/pub struct Mapped<T>(pub std::marker::PhantomData<T>);/' stubs/proptest/src/lib.rs && CARGO_NET_OFFLINE=1 cargo check --workspace --all-targets 2>&1 | grep -vE "^(    Checking|   Compiling|    Finished)" | head -60

### NEXT ###

python3 - <<'EOF'
p = 'stubs/proptest/src/lib.rs'
t = open(p).read()
add = '''
    impl<T> Strategy for std::ops::Range<T> {
        type Value = T;
    }
    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
    }
    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
    }
    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
    }

'''
anchor = "    pub fn any<T>() -> Any<T> {"
assert anchor in t
t = t.replace(anchor, add + anchor)
open(p, 'w').write(t)
EOF
CARGO_NET_OFFLINE=1 cargo check --workspace --all-targets 2>&1 | grep -E "^error|Finished" | head

### NEXT ###

cd /root/repo/.scratch-typecheck/stubs && cat > rand/src/lib.rs <<'EOF'
//! Functional stand-in for rand 0.9's used surface: a real (SplitMix64)
//! generator so simulation code runs, though streams differ from the
//! real StdRng (ChaCha12). Determinism properties (same seed -> same
//! bytes, thread-count invariance) are unaffected.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait FromRng {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

pub trait Rng: RngCore {
    fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }
    fn sample<T, D: distr::Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}
impl<R: RngCore + ?Sized> Rng for R {}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }
    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
    impl super::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

pub mod distr {
    pub trait Distribution<T> {
        fn sample<R: crate::RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }
}

pub mod seq {
    use crate::Rng;
    pub trait SliceRandom {
        fn shuffle<R: crate::RngCore + ?Sized>(&mut self, rng: &mut R);
    }
    impl<T> SliceRandom for [T] {
        fn shuffle<R: crate::RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher-Yates; modulo bias is irrelevant for a test stand-in
            for i in (1..self.len()).rev() {
                let j = (rng.random::<u64>() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

pub fn rng() -> rngs::StdRng {
    unimplemented!("unseeded entropy is forbidden in this workspace (determinism lint)")
}
EOF

cat > rand_distr/src/lib.rs <<'EOF'
//! Functional stand-in for rand_distr's used surface (Box-Muller).
pub use rand::distr::Distribution;
use rand::Rng;

#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    norm: Normal,
}
#[derive(Debug, Clone, Copy)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("invalid normal parameters")
    }
}
impl std::error::Error for NormalError {}

impl Normal {
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if std_dev.is_finite() && std_dev >= 0.0 && mean.is_finite() {
            Ok(Normal { mean, std_dev })
        } else {
            Err(NormalError)
        }
    }
}
impl LogNormal {
    pub fn new(mu: f64, sigma: f64) -> Result<Self, NormalError> {
        Ok(LogNormal { norm: Normal::new(mu, sigma)? })
    }
}
impl Distribution<f64> for Normal {
    fn sample<R: rand::RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box-Muller; u clamped away from 0 so ln() stays finite
        let u: f64 = rng.random::<f64>().max(1e-300);
        let v: f64 = rng.random();
        let z = (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos();
        self.mean + self.std_dev * z
    }
}
impl Distribution<f64> for LogNormal {
    fn sample<R: rand::RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}
EOF
echo done

### NEXT ###

cd /root/repo && mkdir -p .scratch-baseline && git archive HEAD | tar -x -C .scratch-baseline && cp -r .scratch-typecheck/stubs .scratch-baseline/ && cd .scratch-baseline && python3 - <<'EOF'
t = open('Cargo.toml').read()
t = t.replace('members = ["crates/*"]', 'members = ["crates/*", "stubs/*"]')
repl = {
 'rand = "0.9"': 'rand = { path = "stubs/rand" }',
 'rand_distr = "0.5"': 'rand_distr = { path = "stubs/rand_distr" }',
 'proptest = "1"': 'proptest = { path = "stubs/proptest" }',
 'criterion = "0.5"': 'criterion = { path = "stubs/criterion" }',
 'crossbeam = "0.8"': 'crossbeam = { path = "stubs/crossbeam" }',
 'parking_lot = "0.12"': 'parking_lot = { path = "stubs/parking_lot" }',
 'serde = { version = "1", features = ["derive"] }': 'serde = { path = "stubs/serde", features = ["derive"] }',
 'serde_json = { version = "1", features = ["float_roundtrip"] }': 'serde_json = { path = "stubs/serde_json", features = ["float_roundtrip"] }',
}
for k, v in repl.items():
    if k in t:
        t = t.replace(k, v)
    else:
        print("MISSING:", k)
# drop vap-obs if absent at HEAD
open('Cargo.toml','w').write(t)
print("ok")
EOF
grep -n "vap-obs" Cargo.toml | head -3