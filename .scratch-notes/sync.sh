#!/bin/sh
# refresh the scratch harness copy of first-party sources
cd /root/repo
cp -r Cargo.toml lint-baseline.toml .scratch-typecheck/ 2>/dev/null
rm -rf .scratch-typecheck/crates .scratch-typecheck/src .scratch-typecheck/tests .scratch-typecheck/examples
cp -r crates src tests examples .scratch-typecheck/
cd .scratch-typecheck && python3 - <<'PYEOF'
t = open('Cargo.toml').read()
t = t.replace('members = ["crates/*"]', 'members = ["crates/*", "stubs/*"]')
repl = {
 'rand = "0.9"': 'rand = { path = "stubs/rand" }',
 'rand_distr = "0.5"': 'rand_distr = { path = "stubs/rand_distr" }',
 'proptest = "1"': 'proptest = { path = "stubs/proptest" }',
 'criterion = "0.5"': 'criterion = { path = "stubs/criterion" }',
 'crossbeam = "0.8"': 'crossbeam = { path = "stubs/crossbeam" }',
 'parking_lot = "0.12"': 'parking_lot = { path = "stubs/parking_lot" }',
 'serde = { version = "1", features = ["derive"] }': 'serde = { path = "stubs/serde", features = ["derive"] }',
 'serde_json = { version = "1", features = ["float_roundtrip"] }': 'serde_json = { path = "stubs/serde_json", features = ["float_roundtrip"] }',
}
for k, v in repl.items():
    if k in t:
        t = t.replace(k, v)
open('Cargo.toml','w').write(t)
PYEOF
