//! Differential equivalence: the struct-of-arrays fleet path must be an
//! *indistinguishable* drop-in for the original per-module object path.
//!
//! The SoA [`vap_sim::fleet::FleetState`] and the [`Cluster`] facade share
//! the same scalar kernels (`rapl::steady_state`, the power models, the
//! RAPL register round-trip), so everything downstream — PVTs, campaign
//! CSVs, observability journals — must be **byte-identical**, not merely
//! close, across layouts, seeds, and thread counts. These tests hold that
//! line; `--pvt-engine reference` keeps the old path alive as the baseline.

use vap::prelude::*;
use vap_core::pvt::PvtEngine;
use vap_sim::fleet::FleetState;
use vap_workloads::spec::VariationResponse;

const SEEDS: [u64; 3] = [1, 42, 0xdead];
const THREADS: [usize; 2] = [1, 4];

fn ha8k(n: usize, seed: u64) -> Cluster {
    Cluster::with_size(SystemSpec::ha8k(), n, seed)
}

/// Bitwise comparison of a cluster and a fleet claiming to mirror it.
fn assert_fleet_mirrors_cluster(cluster: &Cluster, fleet: &FleetState) {
    assert_eq!(cluster.len(), fleet.len());
    for (i, m) in cluster.modules().iter().enumerate() {
        let (mop, fop) = (m.operating_point(), fleet.operating_point(i));
        assert_eq!(mop.clock.value().to_bits(), fop.clock.value().to_bits(), "clock[{i}]");
        assert_eq!(mop.duty.to_bits(), fop.duty.to_bits(), "duty[{i}]");
        assert_eq!(m.cap().map(|c| c.cap.value().to_bits()), fleet.cap(i).map(|c| c.cap.value().to_bits()), "cap[{i}]");
        assert_eq!(m.rapl_throttled(), fleet.rapl_throttled(i), "throttle[{i}]");
        assert_eq!(m.cpu_power().value().to_bits(), fleet.cpu_power(i).value().to_bits(), "cpu_power[{i}]");
        assert_eq!(m.dram_power().value().to_bits(), fleet.dram_power(i).value().to_bits(), "dram_power[{i}]");
        assert_eq!(m.pkg_energy().value().to_bits(), fleet.pkg_energy(i).value().to_bits(), "pkg_energy[{i}]");
        assert_eq!(m.dram_energy().value().to_bits(), fleet.dram_energy(i).value().to_bits(), "dram_energy[{i}]");
    }
}

#[test]
fn pvt_is_layout_invariant_across_seeds_and_threads() {
    // The tentpole contract: both sweep engines produce bit-identical
    // PVTs at every (seed, thread count) combination.
    let micro = catalog::get(WorkloadId::Stream);
    for seed in SEEDS {
        for threads in THREADS {
            let mut a = ha8k(48, seed);
            let soa = PowerVariationTable::generate_with_engine(
                &mut a,
                &micro,
                seed,
                threads,
                PvtEngine::Soa,
            );
            let mut b = ha8k(48, seed);
            let reference = PowerVariationTable::generate_with_engine(
                &mut b,
                &micro,
                seed,
                threads,
                PvtEngine::Reference,
            );
            assert_eq!(soa, reference, "PVT diverged at seed {seed}, threads {threads}");
            for (x, y) in soa.entries().iter().zip(reference.entries()) {
                assert_eq!(x.cpu_max.to_bits(), y.cpu_max.to_bits(), "seed {seed}");
                assert_eq!(x.cpu_min.to_bits(), y.cpu_min.to_bits(), "seed {seed}");
                assert_eq!(x.dram_max.to_bits(), y.dram_max.to_bits(), "seed {seed}");
                assert_eq!(x.dram_min.to_bits(), y.dram_min.to_bits(), "seed {seed}");
            }
        }
    }
}

#[test]
fn pvt_journals_are_layout_invariant() {
    // Not just the numbers: the observability journal each engine emits
    // must be byte-identical too (same grid kind, same item brackets),
    // at one thread and at four.
    let micro = catalog::get(WorkloadId::Stream);
    let observed = |engine: PvtEngine, threads: usize| {
        let session = vap_obs::Session::install();
        let mut cluster = ha8k(32, 42);
        let pvt =
            PowerVariationTable::generate_with_engine(&mut cluster, &micro, 42, threads, engine);
        (pvt, session.finish())
    };
    for threads in THREADS {
        let (pvt_soa, rep_soa) = observed(PvtEngine::Soa, threads);
        let (pvt_ref, rep_ref) = observed(PvtEngine::Reference, threads);
        assert_eq!(pvt_soa, pvt_ref);
        assert_eq!(
            rep_soa.journal_jsonl, rep_ref.journal_jsonl,
            "journal diverged across engines at threads {threads}"
        );
        assert_eq!(rep_soa.metrics_csv, rep_ref.metrics_csv);
        assert!(rep_soa.journal_jsonl.contains("\"kind\":\"module\""));
    }
}

#[test]
fn fig7_csv_is_layout_invariant() {
    // A full campaign driven through each engine emits bit-identical CSV.
    use vap_report::experiments::fig7;
    use vap_report::{csv, RunOptions};
    let at = |engine: PvtEngine| RunOptions {
        modules: Some(32),
        seed: 2015,
        scale: 0.02,
        threads: Some(2),
        pvt_engine: engine,
        ..RunOptions::default()
    };
    let soa = csv::fig7(&fig7::run(&at(PvtEngine::Soa)));
    let reference = csv::fig7(&fig7::run(&at(PvtEngine::Reference)));
    assert_eq!(soa, reference, "fig7 CSV must not depend on --pvt-engine");
}

#[test]
fn sched_study_is_layout_invariant() {
    // The scheduling study (PVT install + discrete-event replay + the
    // incremental budgeter's re-partitions) is byte-identical across
    // engines, CSV and simulated timeline both.
    use vap_report::experiments::sched_study;
    use vap_report::RunOptions;
    let at = |engine: PvtEngine| RunOptions {
        modules: Some(48),
        seed: 2015,
        scale: 0.05,
        threads: Some(2),
        pvt_engine: engine,
        ..RunOptions::default()
    };
    let soa = sched_study::run(&at(PvtEngine::Soa));
    let reference = sched_study::run(&at(PvtEngine::Reference));
    assert_eq!(
        sched_study::to_csv(&soa),
        sched_study::to_csv(&reference),
        "schedstudy CSV must not depend on --pvt-engine"
    );
    assert_eq!(soa.timeline_json, reference.timeline_json);
}

#[test]
fn fleet_construction_matches_cluster_construction() {
    // FleetState::new and FleetState::from_cluster(Cluster::with_size)
    // describe the same fleet, bit for bit, at every seed.
    for seed in SEEDS {
        let cluster = ha8k(64, seed);
        let direct = FleetState::new(SystemSpec::ha8k(), 64, seed);
        let adopted = FleetState::from_cluster(&cluster);
        assert_fleet_mirrors_cluster(&cluster, &direct);
        assert_fleet_mirrors_cluster(&cluster, &adopted);
    }
}

#[test]
fn mirrored_operation_sequences_stay_bitwise_equal() {
    // Drive the AoS cluster and the SoA fleet through the same RAPL /
    // governor / workload / step sequence and compare after every phase.
    for seed in SEEDS {
        let mut cluster = ha8k(24, seed);
        let mut fleet = FleetState::from_cluster(&cluster);
        let spec = catalog::get(WorkloadId::Dgemm);

        // workload occupancy (with variation response)
        spec.apply_to_modules(&mut cluster, &(0..24).collect::<Vec<_>>(), seed);
        spec.apply_to_fleet(&mut fleet, seed);
        assert_fleet_mirrors_cluster(&cluster, &fleet);

        // heterogeneous caps
        let caps: Vec<Watts> = (0..24).map(|i| Watts(60.0 + i as f64)).collect();
        cluster.set_caps(&caps).unwrap();
        fleet.set_caps(&caps).unwrap();
        assert_fleet_mirrors_cluster(&cluster, &fleet);

        // frequency pinning
        let freqs: Vec<GigaHertz> = (0..24).map(|i| GigaHertz(1.2 + 0.05 * i as f64)).collect();
        cluster.set_frequencies(&freqs).unwrap();
        fleet.set_frequencies(&freqs).unwrap();
        assert_fleet_mirrors_cluster(&cluster, &fleet);

        // time: energy accounting must agree through the MSR quantization
        for _ in 0..5 {
            cluster.step_all(Seconds(0.01));
            fleet.step_all(Seconds(0.01));
        }
        assert_fleet_mirrors_cluster(&cluster, &fleet);
        assert_eq!(
            cluster.total_power().value().to_bits(),
            fleet.total_power().value().to_bits()
        );

        // release
        cluster.uncap_all();
        fleet.uncap_all();
        assert_fleet_mirrors_cluster(&cluster, &fleet);
    }
}

#[test]
fn workload_application_is_layout_invariant_for_faithful_response() {
    // The faithful response keeps the base variation (no override); both
    // layouts must agree on that too.
    let mut cluster = ha8k(12, 7);
    let mut fleet = FleetState::from_cluster(&cluster);
    let mut spec = catalog::get(WorkloadId::Stream);
    spec.response = VariationResponse::faithful();
    spec.apply_to_modules(&mut cluster, &(0..12).collect::<Vec<_>>(), 7);
    spec.apply_to_fleet(&mut fleet, 7);
    for (i, m) in cluster.modules().iter().enumerate() {
        assert_eq!(m.variation().dynamic.to_bits(), fleet.variation(i).dynamic.to_bits());
        assert_eq!(m.variation().leakage.to_bits(), fleet.variation(i).leakage.to_bits());
    }
    assert_fleet_mirrors_cluster(&cluster, &fleet);
}
