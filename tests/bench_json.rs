//! Guard the committed bench records against placeholder rot.
//!
//! `BENCH_campaign.json` once carried prose ("measure on a >=4-core
//! host") where the `threads_4` medians belonged, which let the scaling
//! story go unmeasured for several PRs. These tests fail the build if
//! any recorded median or speedup field is not a finite number, and hold
//! the daemon soak record (`BENCH_daemon.json`) to non-trivial, error-free
//! throughput. Field extraction is a deliberate string scan, not a JSON
//! parser: the files are committed artifacts with a fixed shape, and the
//! scan keeps this test dependency-free.

fn read(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// Extract `"key": <number>` from `doc` starting at `from`, failing the
/// test with a pointed message if the value is not a finite number.
fn numeric_field(doc: &str, from: usize, key: &str) -> f64 {
    let needle = format!("\"{key}\":");
    let section = &doc[from..];
    let at = section
        .find(&needle)
        .unwrap_or_else(|| panic!("field \"{key}\" missing after offset {from}"));
    let rest = section[at + needle.len()..].trim_start();
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    let raw = rest[..end].trim();
    let value: f64 = raw.parse().unwrap_or_else(|_| {
        panic!("field \"{key}\" holds {raw:?} — a placeholder string, not a measured number")
    });
    assert!(value.is_finite(), "field \"{key}\" is not finite: {value}");
    value
}

#[test]
fn campaign_medians_and_speedups_are_measured_numbers() {
    let doc = read("BENCH_campaign.json");
    for case in ["campaign_fig7_48", "campaign_table4_96"] {
        let from = doc
            .find(&format!("\"{case}\""))
            .unwrap_or_else(|| panic!("case {case} missing from BENCH_campaign.json"));
        for key in ["threads_1_median_s", "threads_2_median_s", "threads_4_median_s"] {
            let median = numeric_field(&doc, from, key);
            assert!(median > 0.0, "{case}/{key} must be a positive duration, got {median}");
        }
        let speedup = numeric_field(&doc, from, "speedup_threads_4");
        assert!(speedup > 0.0, "{case}/speedup_threads_4 must be positive, got {speedup}");
    }
}

#[test]
fn daemon_soak_recorded_nontrivial_errorfree_throughput() {
    let doc = read("BENCH_daemon.json");
    let results = doc.find("\"results\"").expect("results section in BENCH_daemon.json");
    assert!(numeric_field(&doc, results, "wall_s") > 1.0, "soak must run for wall-clock seconds");
    assert!(numeric_field(&doc, results, "prom_scrapes") > 0.0);
    assert!(numeric_field(&doc, results, "prom_scrapes_per_s") > 0.0);
    assert!(numeric_field(&doc, results, "json_lines") > 0.0);
    assert_eq!(numeric_field(&doc, results, "errors"), 0.0, "soak recorded protocol errors");
}
