//! Guard the committed bench records against placeholder rot.
//!
//! `BENCH_campaign.json` once carried prose ("measure on a >=4-core
//! host") where the `threads_4` medians belonged, which let the scaling
//! story go unmeasured for several PRs. These tests fail the build if
//! any recorded median or speedup field is not a finite number, and hold
//! the daemon soak record (`BENCH_daemon.json`) to non-trivial, error-free
//! throughput. Field extraction is a deliberate string scan, not a JSON
//! parser: the files are committed artifacts with a fixed shape, and the
//! scan keeps this test dependency-free.

fn read(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// Extract `"key": <number>` from `doc` starting at `from`, failing the
/// test with a pointed message if the value is not a finite number.
fn numeric_field(doc: &str, from: usize, key: &str) -> f64 {
    let needle = format!("\"{key}\":");
    let section = &doc[from..];
    let at = section
        .find(&needle)
        .unwrap_or_else(|| panic!("field \"{key}\" missing after offset {from}"));
    let rest = section[at + needle.len()..].trim_start();
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    let raw = rest[..end].trim();
    let value: f64 = raw.parse().unwrap_or_else(|_| {
        panic!("field \"{key}\" holds {raw:?} — a placeholder string, not a measured number")
    });
    assert!(value.is_finite(), "field \"{key}\" is not finite: {value}");
    value
}

#[test]
fn campaign_medians_and_speedups_are_measured_numbers() {
    let doc = read("BENCH_campaign.json");
    for case in ["campaign_fig7_48", "campaign_table4_96"] {
        let from = doc
            .find(&format!("\"{case}\""))
            .unwrap_or_else(|| panic!("case {case} missing from BENCH_campaign.json"));
        for key in ["threads_1_median_s", "threads_2_median_s", "threads_4_median_s"] {
            let median = numeric_field(&doc, from, key);
            assert!(median > 0.0, "{case}/{key} must be a positive duration, got {median}");
        }
        let speedup = numeric_field(&doc, from, "speedup_threads_4");
        assert!(speedup > 0.0, "{case}/speedup_threads_4 must be positive, got {speedup}");
    }
}

#[test]
fn fleet_scaling_record_holds_measured_numbers_and_targets() {
    // The fleet-scale story (struct-of-arrays cluster + incremental
    // budgeter) is only real if the committed record carries measured
    // timings — and those timings hit the headline targets: a
    // fig7-equivalent campaign at 100k modules in single-digit seconds,
    // and the scheduler replay above a million events per second.
    let doc = read("BENCH_fleet.json");
    let results = doc.find("\"results\"").expect("results section in BENCH_fleet.json");
    for key in [
        "construct_10k_s",
        "construct_100k_s",
        "construct_1m_s",
        "pvt_sweep_10k_s",
        "pvt_sweep_100k_s",
        "pvt_sweep_1m_s",
        "campaign_100k_s",
        "sched_events_per_s",
    ] {
        assert!(numeric_field(&doc, results, key) > 0.0, "{key} must be a measured positive number");
    }
    assert!(
        numeric_field(&doc, results, "campaign_100k_s") < 10.0,
        "fig7-equivalent at 100k modules must finish in single-digit seconds"
    );
    assert!(
        numeric_field(&doc, results, "sched_events_per_s") >= 1e6,
        "scheduler replay must sustain at least 1M events/s"
    );
    // scaling sanity: 1M-module construction must not be catastrophically
    // superlinear vs 100k (columns are flat vecs; 10x modules ≈ 10x time)
    let c100k = numeric_field(&doc, results, "construct_100k_s");
    let c1m = numeric_field(&doc, results, "construct_1m_s");
    assert!(c1m < c100k * 100.0, "1M construction is superlinear: {c1m}s vs {c100k}s at 100k");
}

#[test]
fn scenario_record_holds_measured_numbers_and_floors() {
    // The non-stationary story is only real if the committed record
    // carries measured timings — and those timings hit the floors the
    // subsystem promises: the full driftstudy grid inside a
    // CI-tolerable window, sub-second schedule generation at 10k
    // modules, and perturbation application fast enough that the
    // scenario layer is never the bottleneck of a campaign.
    let doc = read("BENCH_scenario.json");
    let results = doc.find("\"results\"").expect("results section in BENCH_scenario.json");
    for key in [
        "driftstudy_96_s",
        "gen_mixed_10k_s",
        "aging_apply_96_events_per_s",
        "aging_apply_10k_events_per_s",
    ] {
        assert!(numeric_field(&doc, results, key) > 0.0, "{key} must be a measured positive number");
    }
    assert!(
        numeric_field(&doc, results, "driftstudy_96_s") < 120.0,
        "the 48-cell driftstudy grid at 96 modules must stay inside a CI-tolerable window"
    );
    assert!(
        numeric_field(&doc, results, "gen_mixed_10k_s") < 1.0,
        "mixed-schedule generation at 10k modules must be sub-second"
    );
    for key in ["aging_apply_96_events_per_s", "aging_apply_10k_events_per_s"] {
        assert!(
            numeric_field(&doc, results, key) >= 1e4,
            "{key}: perturbation application must sustain at least 10k events/s"
        );
    }
}

#[test]
fn daemon_soak_recorded_nontrivial_errorfree_throughput() {
    let doc = read("BENCH_daemon.json");
    let results = doc.find("\"results\"").expect("results section in BENCH_daemon.json");
    assert!(numeric_field(&doc, results, "wall_s") > 1.0, "soak must run for wall-clock seconds");
    assert!(numeric_field(&doc, results, "prom_scrapes") > 0.0);
    assert!(numeric_field(&doc, results, "prom_scrapes_per_s") > 0.0);
    assert!(numeric_field(&doc, results, "json_lines") > 0.0);
    assert_eq!(numeric_field(&doc, results, "errors"), 0.0, "soak recorded protocol errors");
    // scrape latency percentiles: measured, positive, and ordered
    let p50 = numeric_field(&doc, results, "prom_scrape_p50_ms");
    let p95 = numeric_field(&doc, results, "prom_scrape_p95_ms");
    let p99 = numeric_field(&doc, results, "prom_scrape_p99_ms");
    assert!(p50 > 0.0, "p50 must be a measured positive latency, got {p50}");
    assert!(p50 <= p95 && p95 <= p99, "percentiles out of order: {p50}/{p95}/{p99}");
}

#[test]
fn ledger_overhead_record_holds_measured_numbers() {
    // The watt-provenance ledger's cost story is only real with measured
    // medians on both sides of the flag — and a disabled-path overhead
    // that stays genuinely small (the off path is one relaxed atomic
    // load per site; the on path amortizes into the campaign itself).
    let doc = read("BENCH_obs.json");
    let results = doc.find("\"results\"").expect("results section in BENCH_obs.json");
    let off = numeric_field(&doc, results, "ledger_off_median_s");
    let on = numeric_field(&doc, results, "ledger_on_median_s");
    let overhead = numeric_field(&doc, results, "overhead_pct");
    assert!(off > 0.0 && on > 0.0, "medians must be measured positive durations");
    assert!(overhead < 25.0, "armed-ledger overhead regressed to {overhead}%");
    assert!(numeric_field(&doc, results, "reps") >= 3.0, "need at least 3 reps for a median");
}
