//! Reproducibility: identical seeds must reproduce identical campaigns,
//! and different seeds must actually differ. Long simulation studies are
//! only debuggable if every layer is deterministic.

use vap::prelude::*;

fn campaign(seed: u64) -> (Vec<f64>, Vec<f64>, f64) {
    let n = 48;
    let mut cluster = Cluster::with_size(SystemSpec::ha8k(), n, seed);
    let budgeter = Budgeter::install(&mut cluster, seed);
    let bt = catalog::get(WorkloadId::Bt);
    let ids: Vec<usize> = (0..n).collect();
    let plan = budgeter
        .plan(&mut cluster, SchemeId::VaPc, &bt, Watts(75.0 * n as f64), &ids)
        .expect("75 W/module is feasible");
    let caps: Vec<f64> = plan.allocations.iter().map(|a| a.p_cpu.value()).collect();
    let report = run_region(
        &mut cluster,
        &plan,
        &bt,
        &bt.program(0.02),
        &ids,
        &CommParams::infiniband_fdr(),
        seed,
    );
    let powers: Vec<f64> = report.module_power.iter().map(|p| p.value()).collect();
    (caps, powers, report.makespan().value())
}

#[test]
fn same_seed_reproduces_bit_for_bit() {
    let a = campaign(11);
    let b = campaign(11);
    assert_eq!(a.0, b.0, "plans must be deterministic");
    assert_eq!(a.1, b.1, "measured powers must be deterministic");
    assert_eq!(a.2, b.2, "makespans must be deterministic");
}

#[test]
fn different_seeds_give_different_fleets() {
    let a = campaign(11);
    let b = campaign(12);
    assert_ne!(a.0, b.0, "different silicon lotteries must differ");
}

#[test]
fn pvt_json_round_trip_preserves_plans() {
    let n = 24;
    let seed = 5;
    let mut cluster = Cluster::with_size(SystemSpec::ha8k(), n, seed);
    let budgeter = Budgeter::install(&mut cluster, seed);
    let json = budgeter.pvt().to_json();
    let revived = Budgeter::with_pvt(PowerVariationTable::from_json(&json).unwrap(), seed);

    let mhd = catalog::get(WorkloadId::Mhd);
    let ids: Vec<usize> = (0..n).collect();
    let budget = Watts(80.0 * n as f64);
    let p1 = budgeter.plan(&mut cluster, SchemeId::VaFs, &mhd, budget, &ids).unwrap();
    let p2 = revived.plan(&mut cluster, SchemeId::VaFs, &mhd, budget, &ids).unwrap();
    // Consecutive test runs re-read the MSR energy counters, whose 15.26 µJ
    // quantization residue differs between runs, so the plans agree to the
    // measurement quantum rather than bit-for-bit.
    assert!((p1.alpha.value() - p2.alpha.value()).abs() < 1e-4);
    for (a, b) in p1.allocations.iter().zip(&p2.allocations) {
        assert!((a.p_cpu - b.p_cpu).abs() < Watts(0.01));
        assert!((a.frequency.value() - b.frequency.value()).abs() < 1e-4);
    }
}

#[test]
fn experiment_drivers_are_deterministic() {
    use vap_report::experiments::fig6;
    use vap_report::RunOptions;
    let opts = RunOptions { modules: Some(32), seed: 77, scale: 1.0, ..RunOptions::default() };
    let a = fig6::run(&opts);
    let b = fig6::run(&opts);
    for (x, y) in a.rows.iter().zip(&b.rows) {
        assert_eq!(x.workload, y.workload);
        assert_eq!(x.error_pct, y.error_pct);
    }
}

#[test]
fn campaigns_are_thread_count_invariant() {
    // The contract of the vap-exec layer: a 1-thread and a 4-thread run
    // of the same campaign must emit byte-identical CSV.
    use vap_report::experiments::{fig7, table4};
    use vap_report::{csv, RunOptions};
    let at = |threads: usize| RunOptions {
        modules: Some(48),
        seed: 2015,
        scale: 0.02,
        threads: Some(threads),
        ..RunOptions::default()
    };
    let serial = csv::fig7(&fig7::run(&at(1)));
    let parallel = csv::fig7(&fig7::run(&at(4)));
    assert_eq!(serial, parallel, "fig7 CSV must not depend on --threads");

    let serial = csv::table4(&table4::run(&at(1)));
    let parallel = csv::table4(&table4::run(&at(4)));
    assert_eq!(serial, parallel, "table4 CSV must not depend on --threads");
}

#[test]
fn sched_study_is_seed_and_thread_count_invariant() {
    // The scheduling study replays a discrete-event trace on every grid
    // cell; its CSV (and the simulated Perfetto timeline riding along)
    // must be byte-identical across thread counts and same-seed reruns.
    use vap_report::experiments::sched_study;
    use vap_report::RunOptions;
    let at = |threads: usize| RunOptions {
        modules: Some(48),
        seed: 2015,
        scale: 0.05,
        threads: Some(threads),
        ..RunOptions::default()
    };
    let serial = sched_study::run(&at(1));
    let parallel = sched_study::run(&at(4));
    assert_eq!(
        sched_study::to_csv(&serial),
        sched_study::to_csv(&parallel),
        "schedstudy CSV must not depend on --threads"
    );
    assert_eq!(
        serial.timeline_json, parallel.timeline_json,
        "simulated timeline must not depend on --threads"
    );
    let again = sched_study::run(&at(1));
    assert_eq!(sched_study::to_csv(&serial), sched_study::to_csv(&again));
}

#[test]
fn drift_study_is_seed_and_thread_count_invariant() {
    // The drift study fans (scenario × recal policy × cap) cells over
    // threads; scenario event streams, faulted sensor readings, and
    // re-calibration sweeps are all seeded, so the CSV must be
    // byte-identical across thread counts and same-seed reruns.
    use vap_report::experiments::drift_study;
    use vap_report::RunOptions;
    let at = |threads: usize| RunOptions {
        modules: Some(16),
        seed: 2015,
        threads: Some(threads),
        ..RunOptions::default()
    };
    let serial = drift_study::run(&at(1));
    let parallel = drift_study::run(&at(4));
    assert_eq!(
        drift_study::to_csv(&serial),
        drift_study::to_csv(&parallel),
        "driftstudy CSV must not depend on --threads"
    );
    let again = drift_study::run(&at(1));
    assert_eq!(drift_study::to_csv(&serial), drift_study::to_csv(&again));
}

#[test]
fn fleet_scale_construction_and_sweep_are_deterministic() {
    // Fleet scale: the SoA layout must stay bit-for-bit reproducible at
    // 10k modules — same-seed fleets identical, different-seed fleets
    // different, and the fleet-native PVT sweep thread-count invariant.
    use vap::core::pvt::PowerVariationTable;
    use vap::sim::fleet::FleetState;
    let n = 10_000;
    let a = FleetState::new(SystemSpec::ha8k(), n, 2015);
    let b = FleetState::new(SystemSpec::ha8k(), n, 2015);
    assert_eq!(a.len(), n);
    assert_eq!(
        a.total_power().value().to_bits(),
        b.total_power().value().to_bits(),
        "same-seed 10k fleets must agree bitwise"
    );
    for i in [0usize, 1, 4_999, n - 1] {
        let (x, y) = (a.operating_point(i), b.operating_point(i));
        assert_eq!(x.clock.value().to_bits(), y.clock.value().to_bits());
        assert_eq!(a.cpu_power(i).value().to_bits(), b.cpu_power(i).value().to_bits());
    }
    let c = FleetState::new(SystemSpec::ha8k(), n, 2016);
    assert_ne!(
        a.total_power().value().to_bits(),
        c.total_power().value().to_bits(),
        "different silicon lotteries must differ"
    );

    let micro = catalog::get(WorkloadId::Stream);
    let sweep = |threads: usize| {
        let mut fleet = FleetState::new(SystemSpec::ha8k(), n, 2015);
        PowerVariationTable::generate_from_fleet(&mut fleet, &micro, 2015, threads)
    };
    let serial = sweep(1);
    let parallel = sweep(4);
    assert_eq!(serial, parallel, "10k-module PVT sweep must not depend on thread count");
    assert_eq!(serial.len(), n);
}

#[test]
fn observability_journal_is_thread_count_invariant() {
    // Recording a campaign must not perturb it, and the journal itself is
    // part of the deterministic surface: byte-identical at any --threads.
    use vap_report::experiments::fig7;
    use vap_report::{csv, RunOptions};
    let observed = |threads: usize| {
        let session = vap_obs::Session::install();
        let run = fig7::run(&RunOptions {
            modules: Some(48),
            seed: 2015,
            scale: 0.02,
            threads: Some(threads),
            ..RunOptions::default()
        });
        (csv::fig7(&run), session.finish())
    };
    let (csv_1, report_1) = observed(1);
    let (csv_4, report_4) = observed(4);
    assert_eq!(csv_1, csv_4, "recording must not perturb results");
    assert_eq!(
        report_1.journal_jsonl, report_4.journal_jsonl,
        "journal must be byte-identical at any thread count"
    );
    assert_eq!(report_1.metrics_csv, report_4.metrics_csv);
    // sanity: the journal actually observed the campaign
    assert!(report_1.journal_jsonl.contains("scheme.plans"));
    assert!(report_1.journal_jsonl.contains("\"kind\":\"cell\""));
}

#[test]
fn watt_provenance_ledger_is_thread_count_invariant() {
    // The attribution plane is part of the deterministic surface too:
    // with the ledger armed over a scheduling campaign, the journal
    // (ledger ticks + decision records included) and ledger.csv must be
    // byte-identical at any --threads, and the ledger must re-validate
    // (per-tick conservation) on the exported bytes.
    use vap_report::experiments::sched_study;
    use vap_report::RunOptions;
    let attributed = |threads: usize| {
        let session = vap_obs::Session::install_with_ledger();
        let run = sched_study::run(&RunOptions {
            modules: Some(48),
            seed: 2015,
            scale: 0.05,
            threads: Some(threads),
            ..RunOptions::default()
        });
        (sched_study::to_csv(&run), session.finish())
    };
    let (csv_1, report_1) = attributed(1);
    let (csv_4, report_4) = attributed(4);
    assert_eq!(csv_1, csv_4, "arming the ledger must not perturb results");
    assert_eq!(
        report_1.journal_jsonl, report_4.journal_jsonl,
        "journal with ledger + decision records must be byte-identical at any thread count"
    );
    assert_eq!(
        report_1.ledger_csv, report_4.ledger_csv,
        "ledger.csv must be byte-identical at any thread count"
    );
    // the campaign actually recorded attribution and decisions
    assert!(report_1.journal_jsonl.contains("\"type\":\"ledger\""));
    assert!(report_1.journal_jsonl.contains("\"type\":\"decision\""));
    let stats = vap_obs::validate_ledger_csv(&report_1.ledger_csv)
        .expect("exported ledger must re-validate");
    assert!(stats.tick_rows > 0 && stats.bin_rows > 0, "ledger must carry real rows");
    vap_obs::validate_journal(&report_1.journal_jsonl).expect("journal must validate");
}
